//! The discrete-event simulation engine.
//!
//! State machine summary (see the crate docs for the couplings):
//!
//! ```text
//! client: Issue ──(admission gate)──▶ Protocol ──▶ ClientMsg ──▶ Reply ─┐
//!    ▲                                   (core)    (core, Stripe aff.)  │
//!    └────────────────────── think time ◀──────────────────────────────┘
//!
//! dirty pool ──▶ cleaner quantum (core, needs bucket) ──▶ CommitUsed msg
//!                      │                                  CommitFrees msg
//!                      └── bucket cache ◀── Refill msg (Range/serial aff.)
//! ```
//!
//! Cores are a counted resource; Waffinity-gated tasks flow through the
//! *real* [`waffinity::Scheduler`], so infrastructure concurrency obeys
//! the same exclusion rules as the real-thread stack.

use crate::config::{CleanerSetting, Era, SimConfig};
use crate::metrics::{CoreUsage, LatencyRecorder, LatencyStats};
use crate::workload::{distinct_mf_blocks, OpShape, Workload};
use alligator::InfraMode;
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use waffinity::{Affinity, AffinityId, ExclusionState, Model, Scheduler, Topology};
use wafl::DynamicTuner;

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimResult {
    /// Measured window (ns).
    pub measured_ns: u64,
    /// Ops completed in the window.
    pub ops_completed: u64,
    /// Blocks written in the window.
    pub blocks_written: u64,
    /// Throughput, ops/s.
    pub throughput_ops: f64,
    /// Throughput per client, ops/s (the paper's y-axis).
    pub throughput_per_client: f64,
    /// Latency distribution.
    pub latency: LatencyStats,
    /// Component core usage.
    pub usage: CoreUsage,
    /// Mean active cleaner threads over the window.
    pub avg_active_cleaners: f64,
    /// GETs that found the bucket cache empty.
    pub bucket_stalls: u64,
    /// Refill rounds executed.
    pub refills: u64,
    /// Cleaner messages executed (for §V-C accounting).
    pub cleaner_messages: u64,
    /// Distinct metafile blocks charged to free commits.
    pub free_mf_blocks: u64,
    /// Tuner activations + deactivations (0 for fixed settings).
    pub tuner_changes: u64,
    /// Ops that hit an injected media fault (error or latency spike).
    pub injected_faults: u64,
    /// Retry round-trips paid by faulted ops.
    pub fault_retries: u64,
    /// Bucket GETs satisfied by the cleaner's home cache shard.
    pub cache_get_fast: u64,
    /// Bucket GETs that work-stole from another shard.
    pub cache_get_steal: u64,
    /// Modeled time cleaners spent on contended shard locks (the extra
    /// bucket-sync cost beyond the uncontended baseline).
    pub cache_lock_waits_ns: u64,
    /// Bucket GETs that found every shard empty (the §IV-D starvation
    /// case; same events as `bucket_stalls`, named for the cache layer).
    pub cache_blocked_gets: u64,
    /// Extra buckets (beyond the first) obtained by batched `get_many`
    /// pops — each one is a GET synchronization the cleaner did not pay.
    pub cache_get_batched: u64,
    /// High-water mark of used-bucket commits outstanding at the
    /// infrastructure — the PUT-side convoy depth (§IV-C: one metafile
    /// commit per bucket; a slow infrastructure backs this queue up).
    pub put_commit_queue_len: u64,
    /// Total infrastructure time spent committing used buckets.
    pub commit_batch_ns: u64,
    /// Bucket-cache inserts that minted a fresh arena node (the recycled
    /// pool was empty, so the modeled arena footprint grew by one node).
    pub arena_fresh_mints: u64,
    /// Bucket-cache inserts served from the recycled node pool — the
    /// steady-state path once the arena reaches its working-set plateau.
    pub arena_reuse_hits: u64,
    /// Fully-freed 64-node chunks retired back out of the modeled arena
    /// (epoch-based reclamation returning memory after a population
    /// shrink, instead of holding the high-water mark forever).
    pub arena_chunks_retired: u64,
    /// Modeled async writes (used-bucket commits submitted to the
    /// infrastructure) still awaiting completion when the run ended —
    /// the DES analog of `blockdev::aio`'s `io_inflight` gauge.
    pub io_inflight: u64,
    /// High-water mark of modeled async writes in flight during the
    /// measured window (the sim's `io_queue_depth` high-water).
    pub io_queue_depth_peak: u64,
    /// Total modeled submit→complete time over the window: queue wait
    /// at the infrastructure plus each commit's service cost, the DES
    /// analog of the aio engine's `io_submit_to_complete_ns` histogram.
    pub io_submit_to_complete_ns: u64,
}

impl SimResult {
    /// Cores used by write allocation (cleaners + infrastructure).
    pub fn write_alloc_cores(&self) -> f64 {
        self.usage.write_alloc_cores(self.measured_ns)
    }

    /// Total cores used.
    pub fn total_cores(&self) -> f64 {
        self.usage.total_cores(self.measured_ns)
    }

    /// Every integer counter of the run by name. This is the single list
    /// the text exporter and the audit test key off, so a counter added
    /// to `SimResult` without a reporting path fails the build's tests
    /// rather than silently vanishing (rates and nested summaries are
    /// reported through `FigureTable` rows instead).
    pub fn named_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("measured_ns", self.measured_ns),
            ("ops_completed", self.ops_completed),
            ("blocks_written", self.blocks_written),
            ("bucket_stalls", self.bucket_stalls),
            ("refills", self.refills),
            ("cleaner_messages", self.cleaner_messages),
            ("free_mf_blocks", self.free_mf_blocks),
            ("tuner_changes", self.tuner_changes),
            ("injected_faults", self.injected_faults),
            ("fault_retries", self.fault_retries),
            ("cache_get_fast", self.cache_get_fast),
            ("cache_get_steal", self.cache_get_steal),
            ("cache_lock_waits_ns", self.cache_lock_waits_ns),
            ("cache_blocked_gets", self.cache_blocked_gets),
            ("cache_get_batched", self.cache_get_batched),
            ("put_commit_queue_len", self.put_commit_queue_len),
            ("commit_batch_ns", self.commit_batch_ns),
            ("arena_fresh_mints", self.arena_fresh_mints),
            ("arena_reuse_hits", self.arena_reuse_hits),
            ("arena_chunks_retired", self.arena_chunks_retired),
            ("io_inflight", self.io_inflight),
            ("io_queue_depth_peak", self.io_queue_depth_peak),
            ("io_submit_to_complete_ns", self.io_submit_to_complete_ns),
        ]
    }

    /// Plain-text metrics snapshot in the unified `obs` registry format:
    /// every named counter plus the latency summary.
    pub fn metrics_text(&self) -> String {
        let reg = obs::Registry::new();
        reg.import_counters(self.named_counters());
        reg.import_counters([
            ("latency_mean_ns", self.latency.mean_ns),
            ("latency_p50_ns", self.latency.p50_ns),
            ("latency_p95_ns", self.latency.p95_ns),
            ("latency_p99_ns", self.latency.p99_ns),
            ("latency_p999_ns", self.latency.p999_ns),
            ("latency_max_ns", self.latency.max_ns),
        ]);
        reg.text_snapshot()
    }
}

#[derive(Debug, Clone, Copy)]
enum InfraKind {
    Refill { take: u64 },
    CommitUsed { vbns: u64 },
    CommitFrees { frees: u64, mf_blocks: u64 },
}

#[derive(Debug, Clone, Copy)]
enum Task {
    Protocol {
        client: u32,
        op: OpShape,
        issued: u64,
    },
    ClientMsg {
        client: u32,
        op: OpShape,
        issued: u64,
        aff: AffinityId,
    },
    Infra {
        kind: InfraKind,
        aff: AffinityId,
    },
    CleanerQuantum {
        cleaner: usize,
        bufs: u64,
        inodes: u64,
        msgs: u64,
        /// Set when the quantum executes as a Waffinity message (pre-2008
        /// eras where cleaning ran in the Serial affinity) rather than on
        /// a dedicated cleaner thread.
        via: Option<AffinityId>,
        /// Set on the first quantum after a bucket GET: only that quantum
        /// pays the GET+PUT synchronization cost. Batched `get_many` pops
        /// hand out several buckets per synchronization, so follow-on
        /// buckets run sync-free quanta.
        synced: bool,
    },
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Issue { client: u32 },
    Done { task: Task },
    Reply { client: u32, issued: u64 },
    TunerTick,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CleanerState {
    Idle,
    Running,
    WaitingBucket,
}

/// The simulator: build with a [`SimConfig`], call [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
}

impl Simulator {
    /// New simulator.
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    /// Run to completion and summarize.
    pub fn run(&self) -> SimResult {
        Engine::new(&self.cfg).run()
    }
}

struct Engine<'c> {
    cfg: &'c SimConfig,
    now: u64,
    seq: u64,
    events: BinaryHeap<Reverse<(u64, u64, usize)>>,
    event_slab: Vec<Event>,
    free_cores: u32,
    ready: VecDeque<Task>,
    /// Cleaner quanta dispatch ahead of client work: cleaner threads are
    /// dedicated threads that bypass Waffinity and "can run at any time"
    /// (§IV), so they are not queued behind client message bursts.
    ready_cleaner: VecDeque<Task>,
    waff: Scheduler<Task>,
    topo: Arc<Topology>,
    workload: Workload,

    // Dirty pool / admission.
    dirty: u64,
    claimed: u64,
    committed_blocks: u64,
    pending_inodes: f64,
    admission_q: VecDeque<(u32, OpShape, u64)>,

    // Buckets / infra.
    bucket_cache: u64,
    /// Per-shard split of `bucket_cache`. Refills land round-robin (one
    /// bucket per drive spreads one per shard when shards track drives);
    /// GETs pop the cleaner's home shard first and steal on a miss —
    /// mirroring the real `BucketCache` topology under virtual time.
    shard_buckets: Vec<u64>,
    /// Round-robin cursor for refill inserts across shards.
    shard_rr: usize,
    /// Resolved cache layout: lock-free CAS hot path (White Alligator
    /// default) or mutex shards (baseline / pre-sharding eras).
    cache_lockfree: bool,
    /// Resolved `get_many` batch bound (1 before White Alligator).
    get_batch: u64,
    /// Per-cleaner flag: the next quantum is the first since a bucket
    /// GET and must pay the synchronization cost.
    sync_pending: Vec<bool>,
    /// Used-bucket commit messages in flight at the infrastructure.
    commit_outstanding: u64,
    /// Buckets committed and awaiting a refill round (Figure 2's cycle).
    free_pool: u64,
    refill_outstanding: u32,
    range_rr: u32,

    // Cleaners.
    cleaners: Vec<CleanerState>,
    active_limit: usize,
    /// VBNs remaining in each cleaner's current bucket (cleaners hold a
    /// bucket across quanta until it is exhausted, as in §IV-A).
    bucket_rem: Vec<u64>,
    /// VBNs consumed from the current bucket (committed in one message at
    /// PUT time, amortizing the metafile update, §IV-C).
    bucket_used: Vec<u64>,
    /// CP hysteresis: cleaning runs from `cp_trigger_blocks` down to zero.
    cleaning_active: bool,
    stages: Vec<u64>,
    tuner: Option<DynamicTuner>,
    cleaner_busy_tick: u64,
    last_tick: u64,
    active_integral: f64,
    last_active_change: u64,

    // Measurement.
    latency: LatencyRecorder,
    usage: CoreUsage,
    ops_completed: u64,
    blocks_written: u64,
    bucket_stalls: u64,
    refills: u64,
    cleaner_messages: u64,
    free_mf_blocks: u64,
    tuner_changes: u64,
    cache_get_fast: u64,
    cache_get_steal: u64,
    cache_lock_waits_ns: u64,
    cache_get_batched: u64,
    put_commit_queue_len: u64,
    commit_batch_ns: u64,
    io_queue_depth_peak: u64,
    io_submit_to_complete_ns: u64,
    /// Submission timestamps of modeled async writes still in flight
    /// (FIFO — the summed latency is pairing-invariant, so FIFO
    /// matching against completions is exact even when infra
    /// affinities service commits out of submission order).
    io_submit_times: VecDeque<u64>,

    // Arena model: every cached bucket occupies one Treiber-arena node.
    // Inserts draw from the recycled pool before minting fresh nodes;
    // pops return nodes to the pool; refill rounds retire whole chunks
    // once the pool holds more than a chunk of slack (mirroring the real
    // arena's keep-one-live-chunk retire floor).
    arena_free_nodes: u64,
    arena_minted: u64,
    arena_fresh_mints: u64,
    arena_reuse_hits: u64,
    arena_chunks_retired: u64,

    // Fault injection. The ordinal is a dedicated counter hashed with the
    // seed, so the fault stream is deterministic and independent of the
    // workload RNG (enabling faults does not reshuffle op shapes).
    fault_ordinal: u64,
    injected_faults: u64,
    fault_retries: u64,
}

impl<'c> Engine<'c> {
    fn new(cfg: &'c SimConfig) -> Self {
        let topo = Arc::new(Topology::symmetric(
            Model::Hierarchical,
            1,
            4,
            32,
            cfg.infra_ranges,
        ));
        let waff = Scheduler::new(ExclusionState::new(Arc::clone(&topo)));
        let single_cleaner_era = cfg.era != Era::WhiteAlligator;
        let initial_cleaners = if single_cleaner_era {
            1
        } else {
            match cfg.cleaners {
                CleanerSetting::Fixed(n) => n,
                CleanerSetting::Dynamic(c) => c.min_threads,
            }
        };
        let max_cleaners = if single_cleaner_era {
            1
        } else {
            cfg.cleaners.max_threads()
        };
        let tuner = match (single_cleaner_era, cfg.cleaners) {
            (true, _) | (_, CleanerSetting::Fixed(_)) => None,
            (false, CleanerSetting::Dynamic(c)) => Some(DynamicTuner::new(c, initial_cleaners)),
        };
        // Pre-sharding eras always funnel GETs through one lock; under
        // White Alligator the shard count follows the config (0 = one
        // shard per drive, the natural topology).
        let nshards = if single_cleaner_era {
            1
        } else {
            match cfg.cache_shards {
                0 => cfg.drives.max(1) as usize,
                n => n as usize,
            }
        };
        // Pre-White-Alligator eras predate both the Treiber-stack hot
        // path and batched GETs: mutex sync, one bucket per pop.
        let cache_lockfree = !single_cleaner_era && cfg.cache_lockfree;
        let get_batch = if single_cleaner_era {
            1
        } else {
            cfg.cache_get_batch.max(1)
        };
        let initial_cache = (2 * cfg.drives as u64).min(cfg.total_buckets);
        let mut shard_buckets = vec![0u64; nshards];
        for i in 0..initial_cache {
            shard_buckets[i as usize % nshards] += 1;
        }
        Self {
            cfg,
            now: 0,
            seq: 0,
            events: BinaryHeap::new(),
            event_slab: Vec::new(),
            free_cores: cfg.cores,
            ready: VecDeque::new(),
            ready_cleaner: VecDeque::new(),
            waff,
            topo,
            workload: Workload::new(cfg.workload, ChaCha12Rng::seed_from_u64(cfg.seed)),
            dirty: 0,
            claimed: 0,
            committed_blocks: 0,
            pending_inodes: 0.0,
            admission_q: VecDeque::new(),
            bucket_cache: initial_cache,
            shard_buckets,
            shard_rr: 0,
            cache_lockfree,
            get_batch,
            sync_pending: vec![false; max_cleaners],
            commit_outstanding: 0,
            free_pool: cfg.total_buckets.saturating_sub(2 * cfg.drives as u64),
            refill_outstanding: 0,
            range_rr: 0,
            cleaners: vec![CleanerState::Idle; max_cleaners],
            active_limit: initial_cleaners,
            bucket_rem: vec![0; max_cleaners],
            bucket_used: vec![0; max_cleaners],
            cleaning_active: false,
            stages: vec![0; max_cleaners],
            tuner,
            cleaner_busy_tick: 0,
            last_tick: 0,
            active_integral: 0.0,
            last_active_change: 0,
            latency: LatencyRecorder::new(),
            usage: CoreUsage::default(),
            ops_completed: 0,
            blocks_written: 0,
            bucket_stalls: 0,
            refills: 0,
            cleaner_messages: 0,
            free_mf_blocks: 0,
            tuner_changes: 0,
            cache_get_fast: 0,
            cache_get_steal: 0,
            cache_lock_waits_ns: 0,
            cache_get_batched: 0,
            put_commit_queue_len: 0,
            commit_batch_ns: 0,
            io_queue_depth_peak: 0,
            io_submit_to_complete_ns: 0,
            io_submit_times: VecDeque::new(),
            // The warm-start cache population is already node-backed.
            arena_free_nodes: 0,
            arena_minted: initial_cache,
            arena_fresh_mints: 0,
            arena_reuse_hits: 0,
            arena_chunks_retired: 0,
            fault_ordinal: 0,
            injected_faults: 0,
            fault_retries: 0,
        }
    }

    fn schedule(&mut self, at: u64, ev: Event) {
        let idx = self.event_slab.len();
        self.event_slab.push(ev);
        self.seq += 1;
        self.events.push(Reverse((at, self.seq, idx)));
    }

    fn run(mut self) -> SimResult {
        for c in 0..self.cfg.clients {
            for _ in 0..self.cfg.outstanding_per_client.max(1) {
                self.schedule(0, Event::Issue { client: c });
            }
        }
        if self.tuner.is_some() {
            let interval = self.tuner.as_ref().unwrap().config().interval_ns;
            self.schedule(interval, Event::TunerTick);
        }
        while let Some(Reverse((t, _, idx))) = self.events.pop() {
            if t > self.cfg.duration_ns {
                break;
            }
            self.now = t;
            let ev = self.event_slab[idx];
            self.handle(ev);
            self.dispatch();
        }
        self.finish()
    }

    fn measuring(&self) -> bool {
        self.now >= self.cfg.warmup_ns
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Issue { client } => self.on_issue(client),
            Event::Reply { client, issued } => self.on_reply(client, issued),
            Event::TunerTick => self.on_tuner_tick(),
            Event::Done { task } => self.on_done(task),
        }
    }

    fn on_issue(&mut self, client: u32) {
        let op = self.workload.next_op();
        if op.write_blocks > 0 && self.committed_blocks + op.write_blocks > self.cfg.dirty_limit {
            // Admission throttle: the write-allocation backpressure.
            self.admission_q.push_back((client, op, self.now));
            self.ensure_cleaning();
            return;
        }
        self.admit(client, op, self.now);
    }

    fn admit(&mut self, client: u32, op: OpShape, issued: u64) {
        if op.write_blocks > 0 {
            self.committed_blocks += op.write_blocks;
        }
        self.ready.push_back(Task::Protocol { client, op, issued });
    }

    fn on_reply(&mut self, client: u32, issued: u64) {
        if self.measuring() {
            // Throughput counts completions inside the window; latency
            // samples only ops issued after warmup (their queueing is
            // steady-state).
            self.ops_completed += 1;
            if issued >= self.cfg.warmup_ns {
                self.latency.record(self.now - issued);
            }
        }
        self.schedule(self.now + self.cfg.think_ns, Event::Issue { client });
    }

    fn on_tuner_tick(&mut self) {
        let interval = self.tuner.as_ref().unwrap().config().interval_ns;
        let window = (self.now - self.last_tick).max(1);
        let active = self.active_limit.max(1) as u64;
        let util = (self.cleaner_busy_tick as f64 / (window * active) as f64).clamp(0.0, 1.0);
        self.cleaner_busy_tick = 0;
        self.last_tick = self.now;
        let tuner = self.tuner.as_mut().unwrap();
        let before = tuner.active();
        let target = tuner.decide(util);
        if target != before {
            self.tuner_changes += 1;
            self.set_active_limit(target);
        }
        self.schedule(self.now + interval, Event::TunerTick);
    }

    fn set_active_limit(&mut self, n: usize) {
        self.active_integral +=
            self.active_limit as f64 * (self.now - self.last_active_change) as f64;
        self.last_active_change = self.now;
        self.active_limit = n.clamp(1, self.cleaners.len());
        self.ensure_cleaning();
    }

    fn on_done(&mut self, task: Task) {
        self.free_cores += 1;
        match task {
            Task::Protocol { client, op, issued } => {
                let aff = self.client_affinity(client);
                self.charge_protocol();
                self.waff.enqueue(
                    aff,
                    Task::ClientMsg {
                        client,
                        op,
                        issued,
                        aff,
                    },
                );
            }
            Task::ClientMsg {
                client,
                op,
                issued,
                aff,
            } => {
                self.waff.complete(aff);
                self.charge_client_msg(&op);
                let is_write = op.write_blocks > 0;
                let fault_extra = self.fault_extra_latency(is_write);
                if is_write {
                    self.dirty += op.write_blocks;
                    self.pending_inodes += op.inodes_touched as f64;
                    if self.measuring() {
                        self.blocks_written += op.write_blocks;
                    }
                    self.ensure_cleaning();
                    self.schedule(
                        self.now + self.cfg.costs.reply_latency + fault_extra,
                        Event::Reply { client, issued },
                    );
                } else {
                    self.schedule(
                        self.now + self.cfg.costs.read_media_latency + fault_extra,
                        Event::Reply { client, issued },
                    );
                }
            }
            Task::Infra { kind, aff } => {
                self.waff.complete(aff);
                self.charge_infra(kind);
                match kind {
                    InfraKind::Refill { take } => {
                        self.cache_insert(take);
                        // Arena maintenance rides the refill round, as in
                        // the real cache (insert_all runs `maintain()`
                        // after the publish gate closes).
                        self.arena_maintain();
                        self.refill_outstanding -= 1;
                        self.refills += 1;
                        self.wake_waiting_cleaners();
                        if self.bucket_cache < self.cfg.bucket_low_watermark && self.free_pool > 0 {
                            self.maybe_refill();
                        }
                    }
                    InfraKind::CommitUsed { vbns } => {
                        // Step 6 done: the bucket re-enters circulation.
                        self.commit_outstanding -= 1;
                        // The modeled async write completes: charge
                        // submit→complete (queue wait + service) to the
                        // io latency total, as the aio worker does per
                        // completion.
                        if let Some(submitted) = self.io_submit_times.pop_front() {
                            if self.measuring() {
                                self.io_submit_to_complete_ns += self.now - submitted;
                            }
                        }
                        if self.measuring() {
                            self.commit_batch_ns += self.cost_of(&Task::Infra {
                                kind: InfraKind::CommitUsed { vbns },
                                aff,
                            });
                        }
                        self.free_pool += 1;
                        if self.bucket_cache < self.cfg.bucket_low_watermark {
                            self.maybe_refill();
                        }
                    }
                    InfraKind::CommitFrees { .. } => {}
                }
            }
            Task::CleanerQuantum {
                cleaner,
                bufs,
                inodes,
                msgs,
                via,
                synced,
            } => {
                if let Some(aff) = via {
                    self.waff.complete(aff);
                }
                self.charge_cleaner(bufs, inodes, msgs, synced);
                self.cleaner_messages += msgs;
                self.cleaners[cleaner] = CleanerState::Idle;
                self.claimed -= bufs;
                self.dirty -= bufs;
                self.committed_blocks -= bufs;
                self.pending_inodes = (self.pending_inodes - inodes as f64).max(0.0);
                // Steps 5/6: PUT + commit happen when each bucket is
                // exhausted — one metafile commit per bucket (§IV-C). A
                // batched GET grants several buckets at once, but they
                // are still committed (and returned to circulation)
                // bucket by bucket as the cleaner crosses each chunk
                // boundary.
                self.bucket_used[cleaner] += bufs;
                while self.bucket_used[cleaner] >= self.cfg.chunk {
                    self.bucket_used[cleaner] -= self.cfg.chunk;
                    let aff = self.infra_affinity();
                    self.commit_outstanding += 1;
                    // The modeled async write submits here; it is in
                    // flight until its CommitUsed completion fires.
                    self.io_submit_times.push_back(self.now);
                    if self.measuring() {
                        // PUT-convoy depth: commits waiting at the
                        // infrastructure when this one joined the queue.
                        self.put_commit_queue_len =
                            self.put_commit_queue_len.max(self.commit_outstanding);
                        self.io_queue_depth_peak = self
                            .io_queue_depth_peak
                            .max(self.io_submit_times.len() as u64);
                    }
                    self.waff.enqueue(
                        aff,
                        Task::Infra {
                            kind: InfraKind::CommitUsed {
                                vbns: self.cfg.chunk,
                            },
                            aff,
                        },
                    );
                }
                // Stage the frees of overwritten blocks.
                let frees = (bufs as f64 * self.overwrite_fraction()) as u64;
                self.stages[cleaner] += frees;
                if self.stages[cleaner] >= self.cfg.stage_capacity {
                    let f = self.stages[cleaner];
                    self.stages[cleaner] = 0;
                    let mf = distinct_mf_blocks(
                        f,
                        self.cfg.workload.frees_are_sequential(),
                        self.cfg.aggregate_mf_blocks,
                    );
                    self.free_mf_blocks += mf;
                    let aff = self.infra_affinity();
                    self.waff.enqueue(
                        aff,
                        Task::Infra {
                            kind: InfraKind::CommitFrees {
                                frees: f,
                                mf_blocks: mf,
                            },
                            aff,
                        },
                    );
                }
                self.release_admissions();
                self.ensure_cleaning();
            }
        }
    }

    // ------------------------------------------------------------------
    // Cleaner management
    // ------------------------------------------------------------------

    fn ensure_cleaning(&mut self) {
        // CP cadence: start cleaning at the trigger level, drain to zero.
        if !self.cleaning_active {
            if self.dirty >= self.cfg.cp_trigger_blocks
                || self.committed_blocks >= self.cfg.dirty_limit
            {
                self.cleaning_active = true;
            } else {
                return;
            }
        } else if self.dirty == 0 {
            self.cleaning_active = false;
            return;
        }
        for i in 0..self.cleaners.len() {
            if i >= self.active_limit {
                // Deactivated cleaners that were waiting go idle.
                if self.cleaners[i] == CleanerState::WaitingBucket {
                    self.cleaners[i] = CleanerState::Idle;
                }
                continue;
            }
            if self.cleaners[i] != CleanerState::Idle {
                continue;
            }
            let unclaimed = self.dirty - self.claimed;
            if unclaimed == 0 {
                break;
            }
            // GET a bucket if the cleaner's current one is exhausted.
            if self.bucket_rem[i] == 0 {
                if self.bucket_cache == 0 {
                    self.cleaners[i] = CleanerState::WaitingBucket;
                    if self.measuring() {
                        self.bucket_stalls += 1;
                    }
                    self.maybe_refill();
                    continue;
                }
                let got = self.cache_pop(i);
                self.bucket_rem[i] = got * self.cfg.chunk;
                self.sync_pending[i] = true;
            }
            self.start_quantum(i);
        }
        if self.bucket_cache < self.cfg.bucket_low_watermark {
            self.maybe_refill();
        }
    }

    fn start_quantum(&mut self, cleaner: usize) {
        let unclaimed = self.dirty - self.claimed;
        let bufs = unclaimed.min(self.bucket_rem[cleaner]);
        debug_assert!(bufs > 0);
        self.bucket_rem[cleaner] -= bufs;
        self.claimed += bufs;
        // Inodes drawn proportionally from the pending pool.
        let per_buf = if self.dirty > 0 {
            self.pending_inodes / self.dirty as f64
        } else {
            0.0
        };
        let inodes = ((bufs as f64 * per_buf).round() as u64).max(1);
        let msgs = if self.cfg.batching {
            inodes.div_ceil(self.cfg.batch_max_inodes)
        } else {
            inodes
        };
        self.cleaners[cleaner] = CleanerState::Running;
        let via = self.cleaning_via();
        let synced = std::mem::take(&mut self.sync_pending[cleaner]);
        let task = Task::CleanerQuantum {
            cleaner,
            bufs,
            inodes,
            msgs,
            via,
            synced,
        };
        match via {
            Some(aff) => self.waff.enqueue(aff, task),
            None => self.ready_cleaner.push_back(task),
        }
    }

    fn wake_waiting_cleaners(&mut self) {
        for i in 0..self.cleaners.len() {
            if self.cleaners[i] == CleanerState::WaitingBucket {
                self.cleaners[i] = CleanerState::Idle;
            }
        }
        self.ensure_cleaning();
    }

    fn release_admissions(&mut self) {
        while let Some(&(client, op, issued)) = self.admission_q.front() {
            if self.committed_blocks + op.write_blocks > self.cfg.dirty_limit {
                break;
            }
            self.admission_q.pop_front();
            self.admit(client, op, issued);
        }
    }

    fn maybe_refill(&mut self) {
        // Up to four refill rounds pipeline, so in-service rounds can
        // overlap the queueing delay of the next (WAFL prefetches bucket
        // refills to keep GET from blocking, §IV-D). A round refills at
        // most one bucket per data drive (§IV-D); the committed buckets
        // it will fill are reserved out of the pool here.
        if self.refill_outstanding >= 4 || self.free_pool == 0 {
            return;
        }
        let take = self.free_pool.min(self.cfg.drives as u64);
        self.free_pool -= take;
        self.refill_outstanding += 1;
        let aff = self.infra_affinity();
        self.waff.enqueue(
            aff,
            Task::Infra {
                kind: InfraKind::Refill { take },
                aff,
            },
        );
    }

    /// Insert `n` refilled buckets round-robin across shards — one bucket
    /// per drive lands one per shard when shards track drives (§IV-D's
    /// collective refill keeps the shards balanced).
    fn cache_insert(&mut self, n: u64) {
        self.bucket_cache += n;
        for _ in 0..n {
            self.shard_rr = (self.shard_rr + 1) % self.shard_buckets.len();
            self.shard_buckets[self.shard_rr] += 1;
            // Each inserted bucket occupies one arena node: recycle from
            // the free pool when possible, mint (grow the arena) only
            // when the pool is dry — the real arena's alloc order.
            if self.arena_free_nodes > 0 {
                self.arena_free_nodes -= 1;
                if self.measuring() {
                    self.arena_reuse_hits += 1;
                }
            } else {
                self.arena_minted += 1;
                if self.measuring() {
                    self.arena_fresh_mints += 1;
                }
            }
        }
    }

    /// Chunk granularity of the modeled arena (nodes per slab), matching
    /// the real allocator's release-build chunk size.
    const ARENA_CHUNK: u64 = 64;

    /// Retire whole chunks out of the modeled arena once the recycled
    /// pool holds more than a chunk of slack. The real arena only frees
    /// a slab when every node in it is back on the free list and keeps
    /// at least one live chunk, so retirement leaves one chunk's worth
    /// of pooled nodes behind rather than draining to zero.
    fn arena_maintain(&mut self) {
        while self.arena_free_nodes >= 2 * Self::ARENA_CHUNK {
            self.arena_free_nodes -= Self::ARENA_CHUNK;
            self.arena_minted = self.arena_minted.saturating_sub(Self::ARENA_CHUNK);
            if self.measuring() {
                self.arena_chunks_retired += 1;
            }
        }
    }

    /// Pop bucket(s) for cleaner `i` under the same equal-progress rule
    /// as the real `BucketCache`: take the home shard `i % nshards` only
    /// when no other shard is fuller (fast path), else steal one from
    /// the fullest shard, nearest-after-home on ties. On the home fast
    /// path a batched `get_many` may keep draining — up to `get_batch`
    /// buckets in one synchronization — but stops as soon as another
    /// shard would be strictly fuller, so per-drive sharding (one bucket
    /// per shard per refill round) yields batches near 1 while the
    /// single-lock layout amortizes up to the full bound. Returns the
    /// buckets granted; the caller guarantees `bucket_cache > 0`.
    fn cache_pop(&mut self, i: usize) -> u64 {
        debug_assert!(self.bucket_cache > 0);
        let n = self.shard_buckets.len();
        let home = i % n;
        let mut target = home;
        let mut best = self.shard_buckets[home];
        for d in 1..n {
            let s = (home + d) % n;
            if self.shard_buckets[s] > best {
                best = self.shard_buckets[s];
                target = s;
            }
        }
        debug_assert!(best > 0, "bucket_cache > 0 but every shard empty");
        if target != home {
            self.shard_buckets[target] -= 1;
            self.bucket_cache -= 1;
            // The popped bucket's arena node returns to the free pool.
            self.arena_free_nodes += 1;
            if self.measuring() {
                self.cache_get_steal += 1;
            }
            return 1;
        }
        let mut got = 0u64;
        while got < self.get_batch && self.shard_buckets[home] > 0 {
            if got > 0
                && (0..n).any(|s| s != home && self.shard_buckets[s] > self.shard_buckets[home])
            {
                break;
            }
            self.shard_buckets[home] -= 1;
            self.bucket_cache -= 1;
            got += 1;
        }
        // Batched pops free their nodes in one go (pop_chain semantics).
        self.arena_free_nodes += got;
        if self.measuring() {
            self.cache_get_fast += got;
            self.cache_get_batched += got - 1;
        }
        got
    }

    /// Cleaners that can contend on one shard lock: with the cache split
    /// over `nshards` queues and affinity spreading cleaners across them,
    /// at most ⌈active/nshards⌉ cleaners share a shard.
    fn shard_sharers(&self) -> u64 {
        (self.active_limit as u64).div_ceil(self.shard_buckets.len() as u64)
    }

    fn overwrite_fraction(&self) -> f64 {
        match self.cfg.workload {
            crate::workload::WorkloadKind::NfsMix { .. } => 0.5,
            _ => 1.0,
        }
    }

    // ------------------------------------------------------------------
    // Affinity mapping
    // ------------------------------------------------------------------

    fn client_affinity(&self, client: u32) -> AffinityId {
        match self.cfg.era {
            // Pre-Waffinity: every message serializes.
            Era::SerialWafl => self.topo.id(Affinity::Serial),
            _ => {
                let vol = client % 4;
                let stripe = (client / 4) % 32;
                self.topo.id(Affinity::Stripe(vol, stripe))
            }
        }
    }

    /// Where cleaning executes in this era: `None` = dedicated cleaner
    /// threads; `Some(aff)` = as Waffinity messages in that affinity.
    fn cleaning_via(&self) -> Option<AffinityId> {
        match self.cfg.era {
            Era::SerialWafl | Era::ClassicalSerialCleaning => Some(self.topo.id(Affinity::Serial)),
            Era::ClassicalCleanerThread | Era::WhiteAlligator => None,
        }
    }

    fn infra_affinity(&mut self) -> AffinityId {
        if self.cfg.era == Era::SerialWafl || self.cfg.era == Era::ClassicalSerialCleaning {
            // Metafile updates were made by the (serial) cleaning context
            // itself; model them as Serial-affinity messages.
            return self.topo.id(Affinity::Serial);
        }
        let mode = if self.cfg.era == Era::ClassicalCleanerThread {
            InfraMode::Serial
        } else {
            self.cfg.infra_mode
        };
        match mode {
            // Serialized infrastructure: every message in one affinity —
            // at most one runs at a time (but client stripes continue).
            InfraMode::Serial => self.topo.id(Affinity::AggrVbn(0)),
            InfraMode::Parallel => {
                self.range_rr = (self.range_rr + 1) % self.cfg.infra_ranges;
                self.topo.id(Affinity::AggrVbnRange(0, self.range_rr))
            }
        }
    }

    // ------------------------------------------------------------------
    // Cost charging
    // ------------------------------------------------------------------

    fn cost_of(&self, task: &Task) -> u64 {
        let c = &self.cfg.costs;
        match *task {
            Task::Protocol { .. } => c.protocol_per_op,
            Task::ClientMsg { op, .. } => {
                c.client_msg_fixed + c.client_msg_per_block * (op.write_blocks + op.read_blocks)
            }
            Task::Infra { kind, .. } => match kind {
                InfraKind::Refill { take } => {
                    take * (c.infra_refill_fixed + self.cfg.chunk * c.infra_refill_per_vbn)
                }
                InfraKind::CommitUsed { vbns } => {
                    c.infra_commit_fixed + vbns * c.infra_commit_per_vbn + c.infra_per_mf_block
                }
                InfraKind::CommitFrees { frees, mf_blocks } => {
                    c.infra_frees_fixed
                        + frees * c.infra_free_per_vbn
                        + mf_blocks * c.infra_per_mf_block
                }
            },
            Task::CleanerQuantum {
                bufs,
                inodes,
                msgs,
                synced,
                ..
            } => {
                let sync = if synced { self.bucket_sync_cost() } else { 0 };
                bufs * c.cleaner_per_buffer
                    + sync
                    + msgs * c.cleaner_msg_overhead
                    + inodes * c.cleaner_inode_overhead
            }
        }
    }

    /// Portion of a just-completed task's cost that ran inside the
    /// measurement window. Tasks are charged at completion; one that
    /// started before the warmup boundary must not be billed in full, or
    /// a saturated single-core run can book more than one core-second
    /// per second.
    fn measured_portion(&self, cost: u64) -> u64 {
        if self.now < self.cfg.warmup_ns {
            0
        } else {
            (self.now - self.cfg.warmup_ns).min(cost)
        }
    }

    fn charge_protocol(&mut self) {
        self.usage.protocol_ns += self.measured_portion(self.cfg.costs.protocol_per_op);
    }

    fn charge_client_msg(&mut self, op: &OpShape) {
        let cost = self.cfg.costs.client_msg_fixed
            + self.cfg.costs.client_msg_per_block * (op.write_blocks + op.read_blocks);
        self.usage.client_msg_ns += self.measured_portion(cost);
    }

    fn charge_infra(&mut self, kind: InfraKind) {
        let cost = self.cost_of(&Task::Infra {
            kind,
            aff: AffinityId(0),
        });
        self.usage.infra_ns += self.measured_portion(cost);
    }

    /// Uncontended GET + PUT synchronization per bucket cycle: one CAS
    /// pop on the lock-free layout, a mutex acquire/release pair on the
    /// mutex-shard baseline.
    fn base_sync_cost(&self) -> u64 {
        if self.cache_lockfree {
            self.cfg.costs.cleaner_cas_sync
        } else {
            self.cfg.costs.cleaner_bucket_sync
        }
    }

    /// GET + PUT synchronization per bucket cycle. Contention scales with
    /// the cleaners *per shard*, not the total: sharding divides the
    /// sharers, so 4 cleaners over 12 shards pay the uncontended cost
    /// while the single-lock layout pays for all 4 (§V-B's "more threads
    /// come with additional lock contention"). The lock-free layout both
    /// starts cheaper (CAS pop vs mutex) and degrades more slowly (a CAS
    /// loser retries immediately instead of parking on the lock).
    fn bucket_sync_cost(&self) -> u64 {
        let c = &self.cfg.costs;
        let factor = if self.cache_lockfree {
            c.cas_contention_factor
        } else {
            c.cleaner_contention_factor
        };
        let contention = 1.0 + factor * self.shard_sharers().saturating_sub(1) as f64;
        (self.base_sync_cost() as f64 * contention) as u64
    }

    fn charge_cleaner(&mut self, bufs: u64, inodes: u64, msgs: u64, synced: bool) {
        let cost = self.cost_of(&Task::CleanerQuantum {
            cleaner: 0,
            bufs,
            inodes,
            msgs,
            via: None,
            synced,
        });
        self.cleaner_busy_tick += cost;
        self.usage.cleaner_ns += self.measured_portion(cost);
        if self.measuring() {
            // The contention surcharge *is* the modeled shard-lock wait,
            // paid only on quanta that actually synchronized.
            if synced {
                self.cache_lock_waits_ns += self.bucket_sync_cost() - self.base_sync_cost();
            }
        }
    }

    // ------------------------------------------------------------------
    // Core dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self) {
        while self.free_cores > 0 {
            if let Some(task) = self.ready_cleaner.pop_front() {
                self.start_task(task);
                continue;
            }
            if let Some(task) = self.ready.pop_front() {
                self.start_task(task);
                continue;
            }
            if let Some((_aff, task)) = self.waff.pop_runnable() {
                self.start_task(task);
                continue;
            }
            break;
        }
    }

    /// Extra reply latency injected for this op by the fault model, and
    /// counter bookkeeping. Mirrors `wafl_blockdev::FaultPlan::decide`:
    /// a counter-based SplitMix64 draw keyed on (seed, ordinal, op kind),
    /// banded into transient-error and latency-spike ranges. Transient
    /// errors cost 1..=max_retries media round-trips (bounded retry with
    /// backoff at the drive layer); spikes cost a flat `latency_spike_ns`.
    fn fault_extra_latency(&mut self, is_write: bool) -> u64 {
        let f = &self.cfg.faults;
        if f.is_quiet() {
            return 0;
        }
        self.fault_ordinal += 1;
        let salt: u64 = if is_write { 0x57 } else { 0x52 };
        let mut z = self
            .cfg
            .seed
            .wrapping_add(self.fault_ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(salt);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let draw = z % 1_000_000;
        let error_band = if is_write {
            f.write_error_ppm as u64
        } else {
            f.read_error_ppm as u64
        };
        if draw < error_band {
            self.injected_faults += 1;
            let retries = 1 + z.rotate_right(17) % f.max_retries.max(1) as u64;
            self.fault_retries += retries;
            retries * self.cfg.costs.read_media_latency
        } else if draw < error_band + f.latency_spike_ppm as u64 {
            self.injected_faults += 1;
            f.latency_spike_ns
        } else {
            0
        }
    }

    fn start_task(&mut self, task: Task) {
        debug_assert!(self.free_cores > 0);
        self.free_cores -= 1;
        let cost = self.cost_of(&task);
        self.schedule(self.now + cost, Event::Done { task });
    }

    // ------------------------------------------------------------------
    // Wrap-up
    // ------------------------------------------------------------------

    fn finish(mut self) -> SimResult {
        self.active_integral +=
            self.active_limit as f64 * (self.now - self.last_active_change) as f64;
        let measured_ns = self.cfg.duration_ns - self.cfg.warmup_ns;
        let secs = measured_ns as f64 / 1e9;
        let throughput_ops = self.ops_completed as f64 / secs;
        SimResult {
            measured_ns,
            ops_completed: self.ops_completed,
            blocks_written: self.blocks_written,
            throughput_ops,
            throughput_per_client: throughput_ops / self.cfg.clients.max(1) as f64,
            latency: self.latency.stats(),
            usage: self.usage,
            avg_active_cleaners: self.active_integral / self.now.max(1) as f64,
            bucket_stalls: self.bucket_stalls,
            refills: self.refills,
            cleaner_messages: self.cleaner_messages,
            free_mf_blocks: self.free_mf_blocks,
            tuner_changes: self.tuner_changes,
            injected_faults: self.injected_faults,
            fault_retries: self.fault_retries,
            cache_get_fast: self.cache_get_fast,
            cache_get_steal: self.cache_get_steal,
            cache_lock_waits_ns: self.cache_lock_waits_ns,
            cache_blocked_gets: self.bucket_stalls,
            cache_get_batched: self.cache_get_batched,
            put_commit_queue_len: self.put_commit_queue_len,
            commit_batch_ns: self.commit_batch_ns,
            arena_fresh_mints: self.arena_fresh_mints,
            arena_reuse_hits: self.arena_reuse_hits,
            arena_chunks_retired: self.arena_chunks_retired,
            io_inflight: self.io_submit_times.len() as u64,
            io_queue_depth_peak: self.io_queue_depth_peak,
            io_submit_to_complete_ns: self.io_submit_to_complete_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadKind;

    fn base(workload: WorkloadKind) -> SimConfig {
        let mut c = SimConfig::paper_platform(workload);
        c.duration_ns = 300_000_000;
        c.warmup_ns = 60_000_000;
        c
    }

    #[test]
    fn simulation_completes_and_is_deterministic() {
        let cfg = base(WorkloadKind::sequential_write());
        let a = Simulator::new(cfg.clone()).run();
        let b = Simulator::new(cfg).run();
        assert!(a.ops_completed > 0);
        assert_eq!(a.ops_completed, b.ops_completed);
        assert_eq!(a.latency.mean_ns, b.latency.mean_ns);
    }

    #[test]
    fn injected_faults_add_latency_without_changing_workload() {
        let quiet = base(WorkloadKind::sequential_write());
        let mut noisy = quiet.clone();
        noisy.faults.write_error_ppm = 50_000; // 5 % of writes retry
        noisy.faults.latency_spike_ppm = 20_000;
        noisy.faults.latency_spike_ns = 5_000_000;
        let rq = Simulator::new(quiet).run();
        let rn = Simulator::new(noisy).run();
        assert_eq!(rq.injected_faults, 0);
        assert_eq!(rq.fault_retries, 0);
        assert!(
            rn.injected_faults > 0,
            "fault bands armed but nothing fired"
        );
        assert!(rn.fault_retries > 0, "error band should force retries");
        // Faults only delay replies; the op mix is untouched, so the
        // latency tail of the faulted run is strictly worse.
        assert!(rn.latency.p99_ns > rq.latency.p99_ns);
    }

    #[test]
    fn fault_stream_is_deterministic() {
        let mut cfg = base(WorkloadKind::oltp());
        cfg.faults.read_error_ppm = 30_000;
        cfg.faults.write_error_ppm = 30_000;
        let a = Simulator::new(cfg.clone()).run();
        let b = Simulator::new(cfg).run();
        assert_eq!(a.injected_faults, b.injected_faults);
        assert_eq!(a.fault_retries, b.fault_retries);
        assert_eq!(a.latency.mean_ns, b.latency.mean_ns);
    }

    #[test]
    fn core_usage_never_exceeds_core_count() {
        let cfg = base(WorkloadKind::sequential_write());
        let r = Simulator::new(cfg).run();
        assert!(r.total_cores() <= 20.0 + 1e-6, "got {}", r.total_cores());
        assert!(r.total_cores() > 1.0, "system does real work");
    }

    #[test]
    fn more_cleaners_increase_seq_write_throughput() {
        // The Figure 5 direction: 1 → 4 cleaners with parallel infra.
        let mut c1 = base(WorkloadKind::sequential_write());
        c1.cleaners = CleanerSetting::Fixed(1);
        let mut c4 = base(WorkloadKind::sequential_write());
        c4.cleaners = CleanerSetting::Fixed(4);
        let r1 = Simulator::new(c1).run();
        let r4 = Simulator::new(c4).run();
        assert!(
            r4.throughput_ops > r1.throughput_ops * 1.3,
            "4 cleaners {} vs 1 cleaner {}",
            r4.throughput_ops,
            r1.throughput_ops
        );
    }

    #[test]
    fn figure7_inversion_random_write_is_infra_bound() {
        // Figs 4 vs 7: from the fully serialized baseline, sequential
        // write gains more from parallel *cleaners*, random write gains
        // more from parallel *infrastructure* ("this inverted result
        // reveals that random write is more limited by the processing in
        // the infrastructure").
        let gains = |wl: WorkloadKind| {
            let run = |infra: InfraMode, cleaners: usize| {
                let mut c = base(wl);
                c.infra_mode = infra;
                c.cleaners = CleanerSetting::Fixed(cleaners);
                Simulator::new(c).run().throughput_ops
            };
            let baseline = run(InfraMode::Serial, 1);
            let infra_only = run(InfraMode::Parallel, 1) / baseline;
            let cleaners_only = run(InfraMode::Serial, 4) / baseline;
            (infra_only, cleaners_only)
        };
        let (seq_infra, seq_cleaners) = gains(WorkloadKind::sequential_write());
        let (rand_infra, rand_cleaners) = gains(WorkloadKind::random_write());
        assert!(
            seq_cleaners > seq_infra,
            "seq write is cleaner-bound: cleaners {seq_cleaners:.2} vs infra {seq_infra:.2}"
        );
        assert!(
            rand_infra > rand_cleaners,
            "random write is infra-bound: infra {rand_infra:.2} vs cleaners {rand_cleaners:.2}"
        );
    }

    #[test]
    fn dirty_limit_throttles_throughput() {
        let mut small = base(WorkloadKind::sequential_write());
        small.dirty_limit = 64;
        small.cleaners = CleanerSetting::Fixed(1);
        let mut large = base(WorkloadKind::sequential_write());
        large.dirty_limit = 16_384;
        large.cleaners = CleanerSetting::Fixed(1);
        let rs = Simulator::new(small).run();
        let rl = Simulator::new(large).run();
        assert!(rs.throughput_ops <= rl.throughput_ops * 1.05);
    }

    #[test]
    fn dynamic_tuner_activates_under_load() {
        let mut cfg = base(WorkloadKind::sequential_write());
        cfg.cleaners = CleanerSetting::dynamic_default(6);
        let r = Simulator::new(cfg).run();
        assert!(r.tuner_changes > 0, "tuner reacted to saturation");
        assert!(r.avg_active_cleaners > 1.0);
    }

    #[test]
    fn reads_do_not_dirty() {
        let mut cfg = base(WorkloadKind::Oltp {
            op_blocks: 2,
            write_fraction: 0.0,
        });
        cfg.clients = 4;
        let r = Simulator::new(cfg).run();
        assert_eq!(r.blocks_written, 0);
        assert!(r.ops_completed > 0);
        assert_eq!(r.usage.cleaner_ns, 0);
    }

    #[test]
    fn eras_strictly_improve_throughput() {
        // §III: each parallelization step relaxes a real constraint.
        let run = |era: Era| {
            let mut cfg = base(WorkloadKind::sequential_write());
            cfg.era = era;
            cfg.cleaners = CleanerSetting::Fixed(4);
            Simulator::new(cfg).run().throughput_ops
        };
        let serial = run(Era::SerialWafl);
        let classical = run(Era::ClassicalSerialCleaning);
        let cleaner_thread = run(Era::ClassicalCleanerThread);
        let white_alligator = run(Era::WhiteAlligator);
        assert!(
            classical > serial,
            "Classical Waffinity beats serial: {classical} vs {serial}"
        );
        assert!(
            cleaner_thread > classical * 1.5,
            "the dedicated cleaner thread is a big step: {cleaner_thread} vs {classical}"
        );
        assert!(
            white_alligator > cleaner_thread * 2.0,
            "White Alligator dominates: {white_alligator} vs {cleaner_thread}"
        );
    }

    #[test]
    fn serial_era_runs_on_one_core_total() {
        let mut cfg = base(WorkloadKind::sequential_write());
        cfg.era = Era::SerialWafl;
        let r = Simulator::new(cfg).run();
        // Serial affinity serializes client msgs, cleaning, and infra;
        // only protocol work and pipelining overlap.
        assert!(
            r.total_cores() < 2.5,
            "pre-Waffinity WAFL cannot use many cores: {:.2}",
            r.total_cores()
        );
    }

    #[test]
    fn classical_era_cleaning_excludes_client_work() {
        // With cleaning in the Serial affinity, raising the configured
        // cleaner count must change nothing (it is forced to 1 message
        // stream).
        let mut a = base(WorkloadKind::sequential_write());
        a.era = Era::ClassicalSerialCleaning;
        a.cleaners = CleanerSetting::Fixed(1);
        let mut b = base(WorkloadKind::sequential_write());
        b.era = Era::ClassicalSerialCleaning;
        b.cleaners = CleanerSetting::Fixed(6);
        let ra = Simulator::new(a).run();
        let rb = Simulator::new(b).run();
        let ratio = rb.throughput_ops / ra.throughput_ops;
        assert!(
            (0.95..1.05).contains(&ratio),
            "cleaner count is irrelevant before 2008: ratio {ratio:.3}"
        );
    }

    #[test]
    fn sharded_cache_eliminates_modeled_lock_waits() {
        // 8 cleaners over 12 per-drive shards: ⌈8/12⌉ = 1 sharer per
        // lock → uncontended sync, affinity GETs dominate. Forcing one
        // shard makes all 8 share a lock → contention surcharge.
        let mut sharded = base(WorkloadKind::sequential_write());
        sharded.cleaners = CleanerSetting::Fixed(8);
        let mut single = sharded.clone();
        single.cache_shards = 1;
        let rs = Simulator::new(sharded).run();
        let r1 = Simulator::new(single).run();
        assert!(rs.cache_get_fast > 0, "home-shard pops happen");
        assert_eq!(rs.cache_lock_waits_ns, 0, "one sharer per shard");
        assert!(r1.cache_lock_waits_ns > 0, "single lock contends");
        assert_eq!(
            r1.cache_get_steal, 0,
            "one shard has no steal path; every pop is 'home'"
        );
        assert!(rs.throughput_ops >= r1.throughput_ops);
        assert_eq!(rs.cache_blocked_gets, rs.bucket_stalls);
    }

    #[test]
    fn pre_white_alligator_eras_force_single_shard() {
        let mut cfg = base(WorkloadKind::sequential_write());
        cfg.era = Era::ClassicalCleanerThread;
        cfg.cache_shards = 0; // would be 12 under White Alligator
        cfg.cache_lockfree = true; // ignored: the era predates the CAS path
        cfg.cache_get_batch = 8; // ignored: the era predates get_many
        let r = Simulator::new(cfg).run();
        assert_eq!(r.cache_get_steal, 0, "single shard cannot steal");
        assert!(r.cache_get_fast > 0);
        assert_eq!(r.cache_get_batched, 0, "get_many is forced to 1");
    }

    #[test]
    fn lockfree_cache_spends_less_cleaner_time_than_mutex_shards() {
        // Identical workload, identical schedule shape; the only change
        // is the per-bucket GET synchronization (CAS pop vs mutex). The
        // lock-free layout must spend strictly less cleaner time and
        // must not lose throughput.
        let mut lf = base(WorkloadKind::sequential_write());
        lf.cleaners = CleanerSetting::Fixed(8);
        lf.cache_lockfree = true;
        let mut mx = lf.clone();
        mx.cache_lockfree = false;
        let rl = Simulator::new(lf).run();
        let rm = Simulator::new(mx).run();
        assert!(
            rl.usage.cleaner_ns < rm.usage.cleaner_ns,
            "CAS sync is cheaper: {} vs {}",
            rl.usage.cleaner_ns,
            rm.usage.cleaner_ns
        );
        assert!(rl.throughput_ops >= rm.throughput_ops * 0.999);
    }

    #[test]
    fn batched_get_many_amortizes_synchronization_on_a_deep_shard() {
        // A single shard holds every bucket, so a batched GET can drain
        // several per synchronization; get_many(1) never batches.
        let mut b8 = base(WorkloadKind::sequential_write());
        b8.cache_shards = 1;
        b8.cache_get_batch = 8;
        let mut b1 = b8.clone();
        b1.cache_get_batch = 1;
        let r8 = Simulator::new(b8).run();
        let r1 = Simulator::new(b1).run();
        assert!(r8.cache_get_batched > 0, "deep shard yields batches");
        assert_eq!(r1.cache_get_batched, 0, "get_many(1) cannot batch");
        // The claim is about synchronization, not end-to-end throughput:
        // fewer synced quanta must show up as strictly less cleaner time,
        // while throughput (not GET-bound here) stays within noise.
        assert!(
            r8.usage.cleaner_ns < r1.usage.cleaner_ns,
            "batching amortizes sync: {} vs {}",
            r8.usage.cleaner_ns,
            r1.usage.cleaner_ns
        );
        assert!(r8.throughput_ops >= r1.throughput_ops * 0.98);
    }

    #[test]
    fn equal_progress_bounds_batches_under_per_drive_sharding() {
        // With one bucket per shard per refill round, draining the home
        // shard past its peers would break §IV-D equal progress — the
        // batch guard must keep batched extras a small fraction of pops.
        let mut cfg = base(WorkloadKind::sequential_write());
        cfg.cache_get_batch = 8;
        let r = Simulator::new(cfg).run();
        let pops = r.cache_get_fast + r.cache_get_steal;
        assert!(pops > 0);
        assert!(
            r.cache_get_batched * 4 <= pops,
            "batched extras {} vs pops {pops}: per-drive shards should \
             rarely be deeper than their peers",
            r.cache_get_batched
        );
    }

    #[test]
    fn commit_convoy_counters_populate() {
        let r = Simulator::new(base(WorkloadKind::sequential_write())).run();
        assert!(
            r.put_commit_queue_len >= 1,
            "used-bucket commits must queue at least once"
        );
        assert!(r.commit_batch_ns > 0, "commit time accumulates");
    }

    #[test]
    fn io_pipeline_counters_populate() {
        let r = Simulator::new(base(WorkloadKind::sequential_write())).run();
        assert!(
            r.io_queue_depth_peak >= 1,
            "modeled async writes must overlap at least once"
        );
        assert!(
            r.io_submit_to_complete_ns > 0,
            "submit→complete latency accumulates"
        );
        // The queue-depth peak sees every in-flight commit the convoy
        // counter sees (same increment/decrement sites).
        assert!(r.io_queue_depth_peak >= r.put_commit_queue_len);
    }

    #[test]
    fn named_counters_cover_every_integer_field() {
        // Audit: every u64 field of SimResult must be reported through
        // named_counters() (floats and nested summaries go through
        // FigureTable rows). Walking the serialized field list means a
        // newly added counter that is collected but never reported fails
        // here instead of silently vanishing.
        let r = Simulator::new(base(WorkloadKind::sequential_write())).run();
        let named = r.named_counters();
        let serde::Value::Map(fields) = serde::Serialize::to_value(&r) else {
            panic!("SimResult serializes as a map");
        };
        const NON_COUNTERS: &[&str] = &[
            "throughput_ops",
            "throughput_per_client",
            "latency",
            "usage",
            "avg_active_cleaners",
        ];
        for (name, value) in &fields {
            if NON_COUNTERS.contains(&name.as_str()) {
                continue;
            }
            let (_, reported) = named
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("field {name} collected but never reported"));
            assert_eq!(
                *value,
                serde::Value::UInt(u128::from(*reported)),
                "named_counters() reports a stale value for {name}"
            );
        }
        assert_eq!(
            named.len(),
            fields.len() - NON_COUNTERS.len(),
            "named_counters() lists a field SimResult no longer has"
        );
    }

    #[test]
    fn metrics_text_exports_counters_and_latency() {
        let r = Simulator::new(base(WorkloadKind::sequential_write())).run();
        let text = r.metrics_text();
        for (name, v) in r.named_counters() {
            assert!(
                text.contains(&format!("counter {name} {v}")),
                "metrics_text missing {name}:\n{text}"
            );
        }
        assert!(text.contains(&format!("counter latency_p99_ns {}", r.latency.p99_ns)));
        assert!(text.contains(&format!("counter latency_p999_ns {}", r.latency.p999_ns)));
    }

    #[test]
    fn warmup_work_does_not_leak_into_cache_counters() {
        // All cache_rows inputs must cover the same (measured) window: a
        // run that ends before warmup completes reports them all as zero.
        let mut cfg = base(WorkloadKind::sequential_write());
        cfg.duration_ns = cfg.warmup_ns;
        let r = Simulator::new(cfg).run();
        assert_eq!(r.cache_get_fast, 0, "warmup GETs leaked");
        assert_eq!(r.cache_get_steal, 0, "warmup steals leaked");
        assert_eq!(r.cache_get_batched, 0, "warmup batches leaked");
        assert_eq!(r.bucket_stalls, 0, "warmup stalls leaked");
        assert_eq!(r.cache_lock_waits_ns, 0);
        assert_eq!(r.commit_batch_ns, 0);
        assert_eq!(r.put_commit_queue_len, 0);
        assert_eq!(r.io_queue_depth_peak, 0, "warmup io depth leaked");
        assert_eq!(r.io_submit_to_complete_ns, 0, "warmup io latency leaked");
    }

    #[test]
    fn arena_model_reaches_reuse_steady_state() {
        // With the cache population cycling (pop → refill → reinsert),
        // the modeled arena must recycle nodes rather than mint on every
        // insert: reuse dominates once the working set is built, and any
        // fresh minting stays within one chunk of the cache's standing
        // population (the real allocator's boundedness claim).
        let r = Simulator::new(base(WorkloadKind::sequential_write())).run();
        assert!(r.refills > 0, "workload must cycle the cache");
        assert!(
            r.arena_reuse_hits > r.arena_fresh_mints,
            "steady state should recycle ({} reuse vs {} mints)",
            r.arena_reuse_hits,
            r.arena_fresh_mints
        );
        assert!(
            r.arena_fresh_mints <= Engine::ARENA_CHUNK,
            "measured-window minting must stay within one chunk of the \
             warm-start population, got {}",
            r.arena_fresh_mints
        );
    }

    #[test]
    fn batching_reduces_cleaner_messages_on_nfs_mix() {
        let mut on = base(WorkloadKind::nfs_mix());
        on.batching = true;
        let mut off = base(WorkloadKind::nfs_mix());
        off.batching = false;
        let r_on = Simulator::new(on).run();
        let r_off = Simulator::new(off).run();
        assert!(
            r_on.cleaner_messages < r_off.cleaner_messages,
            "batching {} vs unbatched {}",
            r_on.cleaner_messages,
            r_off.cleaner_messages
        );
        assert!(r_on.throughput_ops >= r_off.throughput_ops * 0.98);
    }
}
