//! Canned experiment sweeps: one function per paper figure/table.
//!
//! Each function returns plain data; the `wafl-bench` crate's `fig*`
//! binaries format them next to the paper's reported numbers, and
//! EXPERIMENTS.md records the comparison.

use crate::config::{CleanerSetting, SimConfig};
use crate::engine::{SimResult, Simulator};
use crate::metrics::{knee_point, LoadPoint};
use crate::workload::WorkloadKind;
use alligator::InfraMode;
use serde::{Deserialize, Serialize};

/// One permutation row of Figures 4 / 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PermutationRow {
    /// Parallel cleaner threads enabled?
    pub parallel_cleaners: bool,
    /// Parallel infrastructure enabled?
    pub parallel_infra: bool,
    /// The simulation outcome.
    pub result: SimResult,
}

impl PermutationRow {
    /// Short label matching the paper's x-axis.
    pub fn label(&self) -> &'static str {
        match (self.parallel_cleaners, self.parallel_infra) {
            (false, false) => "serial/serial",
            (false, true) => "serial-cleaners/parallel-infra",
            (true, false) => "parallel-cleaners/serial-infra",
            (true, true) => "parallel/parallel",
        }
    }
}

/// Figures 4 and 7: the four permutations of {parallel cleaners,
/// parallel infrastructure}. `parallel` is the cleaner setting used when
/// cleaners are parallel — the shipped system runs the dynamic tuner
/// (§V-B), so [`CleanerSetting::dynamic_default`] is the faithful choice.
pub fn permutation_sweep(
    base: &SimConfig,
    parallel: CleanerSetting,
) -> Vec<PermutationRow> {
    let mut rows = Vec::with_capacity(4);
    for (pc, pi) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut cfg = base.clone();
        cfg.cleaners = if pc { parallel } else { CleanerSetting::Fixed(1) };
        cfg.infra_mode = if pi {
            InfraMode::Parallel
        } else {
            InfraMode::Serial
        };
        rows.push(PermutationRow {
            parallel_cleaners: pc,
            parallel_infra: pi,
            result: Simulator::new(cfg).run(),
        });
    }
    rows
}

/// Figure 5: throughput and core usage as the number of cleaner threads
/// grows (parallel infrastructure).
pub fn cleaner_thread_sweep(base: &SimConfig, counts: &[usize]) -> Vec<(usize, SimResult)> {
    counts
        .iter()
        .map(|&n| {
            let mut cfg = base.clone();
            cfg.cleaners = CleanerSetting::Fixed(n);
            cfg.infra_mode = InfraMode::Parallel;
            (n, Simulator::new(cfg).run())
        })
        .collect()
}

/// Figure 6: infrastructure serial vs parallel, with parallel cleaners.
pub fn infra_comparison(base: &SimConfig, cleaners: usize) -> (SimResult, SimResult) {
    let mut serial = base.clone();
    serial.cleaners = CleanerSetting::Fixed(cleaners);
    serial.infra_mode = InfraMode::Serial;
    let mut par = base.clone();
    par.cleaners = CleanerSetting::Fixed(cleaners);
    par.infra_mode = InfraMode::Parallel;
    (Simulator::new(serial).run(), Simulator::new(par).run())
}

/// One cleaner-setting's load sweep (Figs 8–9): vary client count, record
/// throughput and latency at each level.
pub fn load_sweep(base: &SimConfig, client_levels: &[u32]) -> Vec<LoadPoint> {
    client_levels
        .iter()
        .map(|&clients| {
            let mut cfg = base.clone();
            cfg.clients = clients;
            let r = Simulator::new(cfg).run();
            LoadPoint {
                load: clients as u64,
                throughput_ops: r.throughput_ops,
                latency_ns: r.latency.mean_ns,
            }
        })
        .collect()
}

/// Figure 8 row: peak throughput across the sweep + latency at the knee.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KneeRow {
    /// Setting label ("1", "2", …, "dynamic").
    pub setting: String,
    /// Peak throughput over the load sweep (ops/s).
    pub peak_throughput: f64,
    /// Latency at the knee of the curve (ns).
    pub knee_latency_ns: u64,
    /// Throughput at the knee (ops/s).
    pub knee_throughput: f64,
    /// The full curve (for Figure 9 plotting).
    pub curve: Vec<LoadPoint>,
}

/// Figures 8/9: sweep load for each cleaner setting (static counts and
/// dynamic) and extract peak + knee.
pub fn knee_sweep(
    base: &SimConfig,
    settings: &[(String, CleanerSetting)],
    client_levels: &[u32],
) -> Vec<KneeRow> {
    settings
        .iter()
        .map(|(label, setting)| {
            let mut cfg = base.clone();
            cfg.cleaners = *setting;
            let curve = load_sweep(&cfg, client_levels);
            let peak = curve
                .iter()
                .map(|p| p.throughput_ops)
                .fold(0.0f64, f64::max);
            let knee = knee_point(&curve).expect("non-empty sweep");
            KneeRow {
                setting: label.clone(),
                peak_throughput: peak,
                knee_latency_ns: knee.latency_ns,
                knee_throughput: knee.throughput_ops,
                curve,
            }
        })
        .collect()
}

/// §V-C: the NFS-mix batching comparison. Returns `(batched, unbatched)`.
pub fn batching_comparison(base: &SimConfig) -> (SimResult, SimResult) {
    let mut on = base.clone();
    on.workload = WorkloadKind::nfs_mix();
    on.batching = true;
    let mut off = on.clone();
    off.batching = false;
    (Simulator::new(on).run(), Simulator::new(off).run())
}

/// Ablation: the bucket chunk-size sweep (§IV-C's amortization claim at
/// system level).
pub fn chunk_sweep(base: &SimConfig, chunks: &[u64]) -> Vec<(u64, SimResult)> {
    chunks
        .iter()
        .map(|&chunk| {
            let mut cfg = base.clone();
            cfg.chunk = chunk;
            (chunk, Simulator::new(cfg).run())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(workload: WorkloadKind) -> SimConfig {
        let mut c = SimConfig::paper_platform(workload);
        c.duration_ns = 200_000_000;
        c.warmup_ns = 50_000_000;
        c
    }

    #[test]
    fn permutation_sweep_produces_four_ordered_rows() {
        let rows = permutation_sweep(
            &quick(WorkloadKind::sequential_write()),
            CleanerSetting::dynamic_default(6),
        );
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label(), "serial/serial");
        let base = rows[0].result.throughput_ops;
        let both = rows[3].result.throughput_ops;
        assert!(both > base * 1.5, "full parallelization wins big");
    }

    #[test]
    fn cleaner_sweep_is_monotonicish_then_saturates() {
        let rows =
            cleaner_thread_sweep(&quick(WorkloadKind::sequential_write()), &[1, 2, 4]);
        assert!(rows[1].1.throughput_ops > rows[0].1.throughput_ops);
        assert!(rows[2].1.throughput_ops >= rows[1].1.throughput_ops * 0.95);
    }

    #[test]
    fn load_sweep_latency_grows_with_load() {
        let cfg = quick(WorkloadKind::oltp());
        let curve = load_sweep(&cfg, &[2, 8, 64]);
        assert!(curve[2].latency_ns > curve[0].latency_ns);
    }

    #[test]
    fn knee_sweep_produces_rows_per_setting() {
        let mut cfg = quick(WorkloadKind::oltp());
        cfg.duration_ns = 120_000_000;
        cfg.warmup_ns = 30_000_000;
        let rows = knee_sweep(
            &cfg,
            &[
                ("1".into(), CleanerSetting::Fixed(1)),
                ("2".into(), CleanerSetting::Fixed(2)),
            ],
            &[2, 8, 32],
        );
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.peak_throughput > 0.0));
        assert!(rows.iter().all(|r| r.curve.len() == 3));
    }
}
