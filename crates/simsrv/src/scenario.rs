//! Canned experiment sweeps: one function per paper figure/table.
//!
//! Each function returns plain data; the `wafl-bench` crate's `fig*`
//! binaries format them next to the paper's reported numbers, and
//! EXPERIMENTS.md records the comparison.

use crate::config::{CleanerSetting, SimConfig};
use crate::engine::{SimResult, Simulator};
use crate::metrics::{knee_point, LoadPoint};
use crate::workload::WorkloadKind;
use alligator::InfraMode;
use serde::{Deserialize, Serialize};
use wafl::scrub::{ScrubCheckpointStore, ScrubConfig, ScrubError};
use wafl::{CrashPoint, ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, FaultSnapshot, FaultSpec, GeometryBuilder, RetryPolicy};

/// One permutation row of Figures 4 / 7.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PermutationRow {
    /// Parallel cleaner threads enabled?
    pub parallel_cleaners: bool,
    /// Parallel infrastructure enabled?
    pub parallel_infra: bool,
    /// The simulation outcome.
    pub result: SimResult,
}

impl PermutationRow {
    /// Short label matching the paper's x-axis.
    pub fn label(&self) -> &'static str {
        match (self.parallel_cleaners, self.parallel_infra) {
            (false, false) => "serial/serial",
            (false, true) => "serial-cleaners/parallel-infra",
            (true, false) => "parallel-cleaners/serial-infra",
            (true, true) => "parallel/parallel",
        }
    }
}

/// Figures 4 and 7: the four permutations of {parallel cleaners,
/// parallel infrastructure}. `parallel` is the cleaner setting used when
/// cleaners are parallel — the shipped system runs the dynamic tuner
/// (§V-B), so [`CleanerSetting::dynamic_default`] is the faithful choice.
pub fn permutation_sweep(base: &SimConfig, parallel: CleanerSetting) -> Vec<PermutationRow> {
    let mut rows = Vec::with_capacity(4);
    for (pc, pi) in [(false, false), (false, true), (true, false), (true, true)] {
        let mut cfg = base.clone();
        cfg.cleaners = if pc {
            parallel
        } else {
            CleanerSetting::Fixed(1)
        };
        cfg.infra_mode = if pi {
            InfraMode::Parallel
        } else {
            InfraMode::Serial
        };
        rows.push(PermutationRow {
            parallel_cleaners: pc,
            parallel_infra: pi,
            result: Simulator::new(cfg).run(),
        });
    }
    rows
}

/// Figure 5: throughput and core usage as the number of cleaner threads
/// grows (parallel infrastructure).
pub fn cleaner_thread_sweep(base: &SimConfig, counts: &[usize]) -> Vec<(usize, SimResult)> {
    counts
        .iter()
        .map(|&n| {
            let mut cfg = base.clone();
            cfg.cleaners = CleanerSetting::Fixed(n);
            cfg.infra_mode = InfraMode::Parallel;
            (n, Simulator::new(cfg).run())
        })
        .collect()
}

/// Figure 6: infrastructure serial vs parallel, with parallel cleaners.
pub fn infra_comparison(base: &SimConfig, cleaners: usize) -> (SimResult, SimResult) {
    let mut serial = base.clone();
    serial.cleaners = CleanerSetting::Fixed(cleaners);
    serial.infra_mode = InfraMode::Serial;
    let mut par = base.clone();
    par.cleaners = CleanerSetting::Fixed(cleaners);
    par.infra_mode = InfraMode::Parallel;
    (Simulator::new(serial).run(), Simulator::new(par).run())
}

/// One cleaner-setting's load sweep (Figs 8–9): vary client count, record
/// throughput and latency at each level.
pub fn load_sweep(base: &SimConfig, client_levels: &[u32]) -> Vec<LoadPoint> {
    client_levels
        .iter()
        .map(|&clients| {
            let mut cfg = base.clone();
            cfg.clients = clients;
            let r = Simulator::new(cfg).run();
            LoadPoint {
                load: clients as u64,
                throughput_ops: r.throughput_ops,
                latency_ns: r.latency.mean_ns,
            }
        })
        .collect()
}

/// Figure 8 row: peak throughput across the sweep + latency at the knee.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KneeRow {
    /// Setting label ("1", "2", …, "dynamic").
    pub setting: String,
    /// Peak throughput over the load sweep (ops/s).
    pub peak_throughput: f64,
    /// Latency at the knee of the curve (ns).
    pub knee_latency_ns: u64,
    /// Throughput at the knee (ops/s).
    pub knee_throughput: f64,
    /// The full curve (for Figure 9 plotting).
    pub curve: Vec<LoadPoint>,
}

/// Figures 8/9: sweep load for each cleaner setting (static counts and
/// dynamic) and extract peak + knee.
pub fn knee_sweep(
    base: &SimConfig,
    settings: &[(String, CleanerSetting)],
    client_levels: &[u32],
) -> Vec<KneeRow> {
    settings
        .iter()
        .map(|(label, setting)| {
            let mut cfg = base.clone();
            cfg.cleaners = *setting;
            let curve = load_sweep(&cfg, client_levels);
            let peak = curve
                .iter()
                .map(|p| p.throughput_ops)
                .fold(0.0f64, f64::max);
            let knee = knee_point(&curve).expect("non-empty sweep");
            KneeRow {
                setting: label.clone(),
                peak_throughput: peak,
                knee_latency_ns: knee.latency_ns,
                knee_throughput: knee.throughput_ops,
                curve,
            }
        })
        .collect()
}

/// §V-C: the NFS-mix batching comparison. Returns `(batched, unbatched)`.
pub fn batching_comparison(base: &SimConfig) -> (SimResult, SimResult) {
    let mut on = base.clone();
    on.workload = WorkloadKind::nfs_mix();
    on.batching = true;
    let mut off = on.clone();
    off.batching = false;
    (Simulator::new(on).run(), Simulator::new(off).run())
}

/// Ablation: the bucket chunk-size sweep (§IV-C's amortization claim at
/// system level).
pub fn chunk_sweep(base: &SimConfig, chunks: &[u64]) -> Vec<(u64, SimResult)> {
    chunks
        .iter()
        .map(|&chunk| {
            let mut cfg = base.clone();
            cfg.chunk = chunk;
            (chunk, Simulator::new(cfg).run())
        })
        .collect()
}

// ----------------------------------------------------------------------
// Recovery sweep (fault injection + crash/NVLog-replay, real-thread stack)
// ----------------------------------------------------------------------

/// One cell of the recovery sweep: a fault or crash scenario executed
/// against the *real-thread* `wafl` stack (not the discrete-event model),
/// turning §II-C's crash-consistency claim — "the contents of NVRAM from
/// before the CP are replayed" — into a measured pass/fail row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RecoveryRow {
    /// Scenario label ("crash@AfterClean", "drive-failure", …).
    pub scenario: String,
    /// NVLog ops replayed during recovery (0 for non-crash cells).
    pub replayed_ops: u64,
    /// Blocks whose persisted stamp was checked after recovery.
    pub blocks_checked: u64,
    /// Fault/degraded-mode counters at the end of the run.
    pub faults: FaultSnapshot,
    /// Blocks reconstructed onto replacement drives by the rebuild pass.
    pub blocks_rebuilt: u64,
    /// Blocks examined by the post-recovery online scrub pass.
    pub scrub_blocks: u64,
    /// Findings the post-recovery scrub reported beyond the cell's own
    /// planned drive failure (0 when recovered).
    pub scrub_findings: u64,
    /// All checked blocks held the expected stamps, the final
    /// `verify_integrity` (stamps + metafiles + raw-media parity scrub)
    /// passed, and a full online scrub pass found nothing.
    pub recovered: bool,
}

const SWEEP_FILES: u64 = 2;

fn sweep_fs_with(kind: DriveKind, spec: FaultSpec) -> Filesystem {
    sweep_fs_depth(kind, spec, 0)
}

/// `io_queue_depth > 0` routes every CP stripe through the
/// `blockdev::aio` submission/completion queues — the sweep's crash
/// cells then exercise the pipelined path, where a crash point drops
/// the in-flight queues instead of landing between synchronous writes.
fn sweep_fs_depth(kind: DriveKind, spec: FaultSpec, io_queue_depth: usize) -> Filesystem {
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        io_queue_depth,
        ..FsConfig::default()
    };
    let geometry = GeometryBuilder::new()
        .aa_stripes(64)
        .raid_group(3, 1, 2048)
        .build();
    let fs = if spec == FaultSpec::default() {
        Filesystem::new(cfg, geometry, kind, ExecMode::Inline)
    } else {
        Filesystem::with_faults(
            cfg,
            geometry,
            kind,
            spec,
            RetryPolicy::default(),
            ExecMode::Inline,
        )
    };
    fs.create_volume(VolumeId(0));
    for f in 0..SWEEP_FILES {
        fs.create_file(VolumeId(0), FileId(f));
    }
    fs
}

fn write_generation(fs: &Filesystem, blocks_per_file: u64, generation: u64) {
    for f in 0..SWEEP_FILES {
        for fbn in 0..blocks_per_file {
            fs.write(VolumeId(0), FileId(f), fbn, stamp(f, fbn, generation));
        }
    }
}

/// Check every block's committed stamp; returns (blocks checked, all ok).
fn check_generation(fs: &Filesystem, blocks_per_file: u64, generation: u64) -> (u64, bool) {
    let mut checked = 0;
    let mut ok = true;
    for f in 0..SWEEP_FILES {
        for fbn in 0..blocks_per_file {
            checked += 1;
            ok &= fs.read_persisted(VolumeId(0), FileId(f), fbn) == Some(stamp(f, fbn, generation));
        }
    }
    (checked, ok)
}

/// Post-recovery end-state verifier: one full online scrub pass over
/// the recovered aggregate. Returns `(blocks checked, findings, clean)`.
///
/// A cell whose fault plan kills a drive *persistently* can never stay
/// fully online — the I/O path re-offlines the drive as soon as the
/// rebuild returns it to service — so the scrub is expected to re-flag
/// (and re-repair) exactly that planned dead drive. Such findings do
/// not count against the cell; anything else does.
fn post_recovery_scrub(fs: &Filesystem) -> (u64, u64, bool) {
    let report = fs.scrub(&ScrubConfig::default(), &ScrubCheckpointStore::new());
    let planned = fs.io().fault_plan().and_then(|p| p.spec().fail_drive);
    let planned_dead = |f: &wafl::scrub::Finding| matches!(&f.error, ScrubError::DeadDrive { drive } if Some(*drive) == planned);
    let unexpected = report.findings.iter().filter(|f| !planned_dead(f)).count() as u64;
    let repaired = report.findings.iter().all(|f| {
        matches!(
            f.state,
            wafl::FindingState::Repaired | wafl::FindingState::Reverified
        )
    });
    (
        report.blocks_checked,
        unexpected,
        report.completed && unexpected == 0 && repaired,
    )
}

/// The recovery sweep behind `exp_recovery` and EXPERIMENTS.md: one cell
/// per mid-CP [`CrashPoint`] (crash, reboot, NVLog replay), plus a
/// whole-drive-failure cell served in degraded mode and rebuilt, a
/// transient-error cell absorbed by bounded retries, and a combined
/// crash-while-degraded cell. Every cell ends with the full integrity
/// check including the raw-media parity scrub.
pub fn recovery_sweep(seed: u64, blocks_per_file: u64) -> Vec<RecoveryRow> {
    let mut rows = Vec::new();

    // Cells 1–4: crash at each CP phase, recover from the committed image
    // plus an NVLog replay of acknowledged-but-uncommitted overwrites.
    // Depth-8 async: the CP pipelines stripes through the aio queues, so
    // each crash point drops in-flight submissions outright — replay
    // must still reconstruct every acknowledged op.
    for at in CrashPoint::ALL {
        let fs = sweep_fs_depth(DriveKind::Ssd, FaultSpec::default(), 8);
        write_generation(&fs, blocks_per_file, 1);
        fs.run_cp();
        write_generation(&fs, blocks_per_file, 2);
        let replayed_ops = fs.nvlog().replay_ops().len() as u64;
        fs.run_cp_crash_at(at);
        let rec = fs.crash_and_recover(ExecMode::Inline);
        rec.run_cp();
        let (blocks_checked, ok) = check_generation(&rec, blocks_per_file, 2);
        let (scrub_blocks, scrub_findings, scrub_clean) = post_recovery_scrub(&rec);
        rows.push(RecoveryRow {
            scenario: format!("crash@{at:?}"),
            replayed_ops,
            blocks_checked,
            faults: rec.io().fault_snapshot(),
            blocks_rebuilt: 0,
            scrub_blocks,
            scrub_findings,
            recovered: ok && rec.verify_integrity().is_ok() && scrub_clean,
        });
    }

    // Cell 5: a whole drive dies mid-workload; the CP completes in
    // degraded mode (parity folds the intended stamps), reads are served
    // by XOR reconstruction, then the drive is rebuilt from parity.
    {
        let fail_after = 8 + seed % 8;
        let fs = sweep_fs_with(DriveKind::Ssd, FaultSpec::drive_failure(1, fail_after));
        write_generation(&fs, blocks_per_file, 1);
        fs.run_cp();
        let (blocks_checked, ok) = check_generation(&fs, blocks_per_file, 1);
        let faults = fs.io().fault_snapshot();
        let blocks_rebuilt = fs.io().rebuild_offline();
        let (scrub_blocks, scrub_findings, scrub_clean) = post_recovery_scrub(&fs);
        rows.push(RecoveryRow {
            scenario: "drive-failure".into(),
            replayed_ops: 0,
            blocks_checked,
            faults,
            blocks_rebuilt,
            scrub_blocks,
            scrub_findings,
            recovered: ok && fs.verify_integrity().is_ok() && scrub_clean,
        });
    }

    // Cell 6: transient media errors at a high rate, fully absorbed by
    // the bounded-backoff retry policy — no drive goes offline.
    {
        let spec = FaultSpec {
            seed,
            read_error_ppm: 20_000,
            write_error_ppm: 20_000,
            latency_spike_ppm: 5_000,
            ..FaultSpec::default()
        };
        let fs = sweep_fs_with(DriveKind::Ssd, spec);
        write_generation(&fs, blocks_per_file, 1);
        fs.run_cp();
        let (blocks_checked, ok) = check_generation(&fs, blocks_per_file, 1);
        let (scrub_blocks, scrub_findings, scrub_clean) = post_recovery_scrub(&fs);
        rows.push(RecoveryRow {
            scenario: "transient-errors".into(),
            replayed_ops: 0,
            blocks_checked,
            faults: fs.io().fault_snapshot(),
            blocks_rebuilt: 0,
            scrub_blocks,
            scrub_findings,
            recovered: ok && fs.verify_integrity().is_ok() && scrub_clean,
        });
    }

    // Cell 7: the compound case — crash mid-CP while a drive is already
    // offline; replay re-drives the lost CP in degraded mode, then the
    // drive is rebuilt.
    {
        let fs = sweep_fs_with(DriveKind::Ssd, FaultSpec::drive_failure(2, 4));
        write_generation(&fs, blocks_per_file, 1);
        fs.run_cp();
        write_generation(&fs, blocks_per_file, 2);
        let replayed_ops = fs.nvlog().replay_ops().len() as u64;
        fs.run_cp_crash_at(CrashPoint::AfterApply);
        let rec = fs.crash_and_recover(ExecMode::Inline);
        rec.run_cp();
        let (blocks_checked, ok) = check_generation(&rec, blocks_per_file, 2);
        let faults = rec.io().fault_snapshot();
        let blocks_rebuilt = rec.io().rebuild_offline();
        let (scrub_blocks, scrub_findings, scrub_clean) = post_recovery_scrub(&rec);
        rows.push(RecoveryRow {
            scenario: "crash-while-degraded".into(),
            replayed_ops,
            blocks_checked,
            faults,
            blocks_rebuilt,
            scrub_blocks,
            scrub_findings,
            recovered: ok && rec.verify_integrity().is_ok() && scrub_clean,
        });
    }

    // Cell 8: crash-consistency torture on the real file backend. The
    // aggregate mirrors every stripe to O_DIRECT-opened files, the
    // mid-CP crash both drops the async queues and tears the mirror
    // (a stripe racing the crash persists only a prefix of its
    // segments), and recovery *remounts from the files alone* — fresh
    // drives rebuilt from on-disk bytes, then NVLog replay. The scrub
    // afterwards must find nothing.
    {
        let dir = std::env::temp_dir().join(format!(
            "wafl-recovery-sweep-{}-{seed:x}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = sweep_fs_depth(DriveKind::Ssd, FaultSpec::default(), 8);
        fs.attach_file_backend(&dir, wafl_blockdev::SyncPolicy::Barrier)
            .expect("file backend opens in a tmpdir");
        write_generation(&fs, blocks_per_file, 1);
        fs.run_cp();
        write_generation(&fs, blocks_per_file, 2);
        let replayed_ops = fs.nvlog().replay_ops().len() as u64;
        fs.run_cp_crash_at(CrashPoint::AfterApply);
        let rec = fs
            .remount_from_files(&dir, ExecMode::Inline)
            .expect("remount from torn files");
        rec.run_cp();
        let (blocks_checked, ok) = check_generation(&rec, blocks_per_file, 2);
        let (scrub_blocks, scrub_findings, scrub_clean) = post_recovery_scrub(&rec);
        let _ = std::fs::remove_dir_all(&dir);
        rows.push(RecoveryRow {
            scenario: "file-backend-torn-stripe".into(),
            replayed_ops,
            blocks_checked,
            faults: rec.io().fault_snapshot(),
            blocks_rebuilt: 0,
            scrub_blocks,
            scrub_findings,
            recovered: ok && rec.verify_integrity().is_ok() && scrub_clean,
        });
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(workload: WorkloadKind) -> SimConfig {
        let mut c = SimConfig::paper_platform(workload);
        c.duration_ns = 200_000_000;
        c.warmup_ns = 50_000_000;
        c
    }

    #[test]
    fn permutation_sweep_produces_four_ordered_rows() {
        let rows = permutation_sweep(
            &quick(WorkloadKind::sequential_write()),
            CleanerSetting::dynamic_default(6),
        );
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].label(), "serial/serial");
        let base = rows[0].result.throughput_ops;
        let both = rows[3].result.throughput_ops;
        assert!(both > base * 1.5, "full parallelization wins big");
    }

    #[test]
    fn cleaner_sweep_is_monotonicish_then_saturates() {
        let rows = cleaner_thread_sweep(&quick(WorkloadKind::sequential_write()), &[1, 2, 4]);
        assert!(rows[1].1.throughput_ops > rows[0].1.throughput_ops);
        assert!(rows[2].1.throughput_ops >= rows[1].1.throughput_ops * 0.95);
    }

    #[test]
    fn load_sweep_latency_grows_with_load() {
        let cfg = quick(WorkloadKind::oltp());
        let curve = load_sweep(&cfg, &[2, 8, 64]);
        assert!(curve[2].latency_ns > curve[0].latency_ns);
    }

    #[test]
    fn recovery_sweep_every_cell_recovers() {
        let rows = recovery_sweep(0xFA17, 24);
        assert_eq!(rows.len(), 8);
        for row in &rows {
            assert!(row.recovered, "cell {} did not recover", row.scenario);
            assert!(row.blocks_checked > 0);
            // The post-recovery scrub really ran and found nothing
            // beyond each cell's own planned drive failure.
            assert!(row.scrub_blocks > 0, "{} skipped the scrub", row.scenario);
            assert_eq!(
                row.scrub_findings, 0,
                "{} left corruption behind",
                row.scenario
            );
        }
        // Crash cells replayed the acknowledged-but-uncommitted overwrites.
        for row in &rows[..4] {
            assert!(row.replayed_ops > 0, "{} replayed nothing", row.scenario);
        }
        let degraded = &rows[4];
        assert!(degraded.faults.reconstructed_reads > 0, "no XOR reads");
        assert!(
            degraded.faults.degraded_writes > 0,
            "CP never went degraded"
        );
        assert!(degraded.blocks_rebuilt > 0, "rebuild did no work");
        let transient = &rows[5];
        assert!(transient.faults.io_retries > 0, "no retries absorbed");
        assert_eq!(
            transient.faults.drives_offline, 0,
            "retries offlined a drive"
        );
        let compound = &rows[6];
        assert!(compound.replayed_ops > 0);
        assert!(compound.blocks_rebuilt > 0);
        // The file-backend torture cell replayed through a remount built
        // purely from the on-disk files.
        let torn = &rows[7];
        assert!(torn.replayed_ops > 0, "torn-stripe cell replayed nothing");
        assert_eq!(torn.scrub_findings, 0);
    }

    #[test]
    fn knee_sweep_produces_rows_per_setting() {
        let mut cfg = quick(WorkloadKind::oltp());
        cfg.duration_ns = 120_000_000;
        cfg.warmup_ns = 30_000_000;
        let rows = knee_sweep(
            &cfg,
            &[
                ("1".into(), CleanerSetting::Fixed(1)),
                ("2".into(), CleanerSetting::Fixed(2)),
            ],
            &[2, 8, 32],
        );
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.peak_throughput > 0.0));
        assert!(rows.iter().all(|r| r.curve.len() == 3));
    }
}
