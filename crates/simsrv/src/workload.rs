//! Workload generators for the paper's four evaluation workloads.
//!
//! * **Sequential write** (Fig 4–6, 9): large sequential writes to a few
//!   files; overwrites free *contiguous* VBN runs.
//! * **Random write** (Fig 7): small writes at uniformly random offsets;
//!   overwrites free VBNs *scattered* across the aggregate, touching many
//!   allocation-bitmap blocks per stage — "since allocation metafiles are
//!   indexed by VBN, this randomness causes a higher ratio of metafile
//!   block updates than does sequential write".
//! * **OLTP** (Fig 8): a read/write mix of small ops, latency-sensitive.
//! * **NFS mix** (§V-C): reads, writes, and metadata ops spread over a
//!   large number of files, each dirtying few buffers — the batched-
//!   cleaning scenario.

use rand::Rng;
use rand_chacha::ChaCha12Rng;
use serde::{Deserialize, Serialize};

/// One client operation as the simulator sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpShape {
    /// Blocks written (0 for reads / pure metadata ops).
    pub write_blocks: u64,
    /// Blocks read from media (adds read latency; no dirtying).
    pub read_blocks: u64,
    /// Distinct inodes this op dirties (1 for user-file writes; NFS
    /// metadata ops may touch several small files).
    pub inodes_touched: u64,
}

/// The workload shapes of §V.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// Large sequential writes (64 KiB ops = 16 blocks by default).
    SequentialWrite {
        /// Blocks per write op.
        op_blocks: u64,
    },
    /// Small random writes (8 KiB ops = 2 blocks by default).
    RandomWrite {
        /// Blocks per write op.
        op_blocks: u64,
    },
    /// OLTP: `write_fraction` of ops are small writes, the rest are
    /// small reads.
    Oltp {
        /// Blocks per op.
        op_blocks: u64,
        /// Fraction of ops that write, in `[0, 1]`.
        write_fraction: f64,
    },
    /// NFSv3-style mix over many small files (§V-C).
    NfsMix {
        /// Fraction of ops that write.
        write_fraction: f64,
        /// Fraction of ops that are metadata-only (cheap, dirty 1 inode).
        meta_fraction: f64,
        /// Blocks per write op (small).
        op_blocks: u64,
    },
}

impl WorkloadKind {
    /// 64 KiB sequential writes.
    pub fn sequential_write() -> Self {
        WorkloadKind::SequentialWrite { op_blocks: 16 }
    }

    /// 8 KiB random writes.
    pub fn random_write() -> Self {
        WorkloadKind::RandomWrite { op_blocks: 2 }
    }

    /// The internal OLTP benchmark shape (Fig 8): 8 KiB ops, two-thirds
    /// writes — enough cleaning load that a single cleaner thread cannot
    /// keep up (the paper's premise for Figure 8).
    pub fn oltp() -> Self {
        WorkloadKind::Oltp {
            op_blocks: 2,
            write_fraction: 0.67,
        }
    }

    /// The internal NFSv3 mix (§V-C).
    pub fn nfs_mix() -> Self {
        WorkloadKind::NfsMix {
            write_fraction: 0.4,
            meta_fraction: 0.3,
            op_blocks: 2,
        }
    }

    /// Are overwrite frees contiguous in the VBN space?
    pub fn frees_are_sequential(&self) -> bool {
        matches!(self, WorkloadKind::SequentialWrite { .. })
    }
}

/// A seeded workload generator.
#[derive(Debug)]
pub struct Workload {
    kind: WorkloadKind,
    rng: ChaCha12Rng,
}

impl Workload {
    /// Build a generator.
    pub fn new(kind: WorkloadKind, rng: ChaCha12Rng) -> Self {
        Self { kind, rng }
    }

    /// The workload kind.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Draw the next op.
    pub fn next_op(&mut self) -> OpShape {
        match self.kind {
            WorkloadKind::SequentialWrite { op_blocks }
            | WorkloadKind::RandomWrite { op_blocks } => OpShape {
                write_blocks: op_blocks,
                read_blocks: 0,
                inodes_touched: 1,
            },
            WorkloadKind::Oltp {
                op_blocks,
                write_fraction,
            } => {
                if self.rng.gen_bool(write_fraction) {
                    OpShape {
                        write_blocks: op_blocks,
                        read_blocks: 0,
                        inodes_touched: 1,
                    }
                } else {
                    OpShape {
                        write_blocks: 0,
                        read_blocks: op_blocks,
                        inodes_touched: 0,
                    }
                }
            }
            WorkloadKind::NfsMix {
                write_fraction,
                meta_fraction,
                op_blocks,
            } => {
                let x: f64 = self.rng.gen();
                if x < meta_fraction {
                    // Metadata op: dirties an inode, no data blocks.
                    OpShape {
                        write_blocks: 1,
                        read_blocks: 0,
                        inodes_touched: 1,
                    }
                } else if x < meta_fraction + write_fraction {
                    OpShape {
                        write_blocks: op_blocks,
                        read_blocks: 0,
                        inodes_touched: 1,
                    }
                } else {
                    OpShape {
                        write_blocks: 0,
                        read_blocks: op_blocks,
                        inodes_touched: 0,
                    }
                }
            }
        }
    }
}

/// Expected number of *distinct* metafile blocks touched when committing
/// `frees` freed VBNs, given the workload's locality and an active map of
/// `total_mf_blocks` blocks.
///
/// Sequential overwrites free contiguous runs: `⌈frees / bits⌉` blocks
/// (almost always 1). Random overwrites are uniform over the VBN space:
/// the classic occupancy expectation `B·(1 − (1 − 1/B)^f)`.
pub fn distinct_mf_blocks(frees: u64, sequential: bool, total_mf_blocks: u64) -> u64 {
    if frees == 0 {
        return 0;
    }
    if sequential {
        frees.div_ceil(wafl_metafile::BITS_PER_MF_BLOCK).max(1)
    } else {
        let b = total_mf_blocks.max(1) as f64;
        let f = frees as f64;
        let expected = b * (1.0 - (1.0 - 1.0 / b).powf(f));
        expected.round().max(1.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn gen(kind: WorkloadKind) -> Workload {
        Workload::new(kind, ChaCha12Rng::seed_from_u64(42))
    }

    #[test]
    fn sequential_ops_are_uniform() {
        let mut w = gen(WorkloadKind::sequential_write());
        for _ in 0..10 {
            let op = w.next_op();
            assert_eq!(op.write_blocks, 16);
            assert_eq!(op.read_blocks, 0);
        }
    }

    #[test]
    fn oltp_mixes_reads_and_writes() {
        let mut w = gen(WorkloadKind::oltp());
        let ops: Vec<OpShape> = (0..1000).map(|_| w.next_op()).collect();
        let writes = ops.iter().filter(|o| o.write_blocks > 0).count();
        assert!((570..770).contains(&writes), "≈67% writes, got {writes}");
        assert!(ops.iter().all(|o| o.write_blocks > 0 || o.read_blocks > 0));
    }

    #[test]
    fn nfs_mix_includes_metadata_ops() {
        let mut w = gen(WorkloadKind::nfs_mix());
        let ops: Vec<OpShape> = (0..1000).map(|_| w.next_op()).collect();
        let meta = ops
            .iter()
            .filter(|o| o.write_blocks == 1 && o.inodes_touched == 1)
            .count();
        assert!(meta > 100, "metadata ops present: {meta}");
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let mut a = gen(WorkloadKind::oltp());
        let mut b = gen(WorkloadKind::oltp());
        for _ in 0..100 {
            assert_eq!(a.next_op(), b.next_op());
        }
    }

    #[test]
    fn sequential_frees_touch_one_block() {
        assert_eq!(distinct_mf_blocks(256, true, 3000), 1);
        assert_eq!(distinct_mf_blocks(40_000, true, 3000), 2);
    }

    #[test]
    fn random_frees_scatter_widely() {
        let d = distinct_mf_blocks(256, false, 3000);
        assert!(
            (230..=256).contains(&d),
            "256 uniform frees over 3000 blocks ≈ 245 distinct, got {d}"
        );
        // Small map saturates.
        let d2 = distinct_mf_blocks(10_000, false, 100);
        assert!((95..=100).contains(&d2));
    }

    #[test]
    fn zero_frees_touch_nothing() {
        assert_eq!(distinct_mf_blocks(0, true, 100), 0);
        assert_eq!(distinct_mf_blocks(0, false, 100), 0);
    }
}
