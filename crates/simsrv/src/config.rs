//! Simulation configuration and the calibrated cost model.

use crate::workload::WorkloadKind;
use alligator::InfraMode;
use serde::{Deserialize, Serialize};
use wafl::TunerConfig;

/// Which era of WAFL parallelization to simulate (§III of the paper).
/// Later eras strictly relax execution constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Era {
    /// Pre-Waffinity (early Data ONTAP): the whole file system is one
    /// domain — every client message *and* all cleaning work run in the
    /// Serial affinity (§III-A).
    SerialWafl,
    /// Classical Waffinity, Data ONTAP 7.2 (2006): user-file messages run
    /// in Stripe affinities, but "inode cleaning ran in the Serial
    /// affinity … the process of assigning VBNs to dirty buffers and
    /// writing the data out prevented the execution of client operations"
    /// (§III-B/C).
    ClassicalSerialCleaning,
    /// Data ONTAP 7.3 (2008): a single dedicated inode-cleaner thread
    /// runs in parallel with Waffinity; metafile access is still
    /// effectively serialized (§III-C).
    ClassicalCleanerThread,
    /// Hierarchical Waffinity + White Alligator, Data ONTAP 8.1 (2011):
    /// parallel cleaner threads and Waffinity-parallel infrastructure
    /// (§III-D, §IV). Cleaner/infra parallelism follow the `cleaners` and
    /// `infra_mode` settings.
    WhiteAlligator,
}

/// How many cleaner threads the simulated system runs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CleanerSetting {
    /// A fixed number of cleaner threads (1 = the serialized baseline).
    Fixed(usize),
    /// Dynamic tuning with the given controller parameters (§V-B).
    Dynamic(TunerConfig),
}

impl CleanerSetting {
    /// The paper's default dynamic configuration.
    pub fn dynamic_default(max: usize) -> Self {
        CleanerSetting::Dynamic(TunerConfig {
            max_threads: max,
            ..TunerConfig::default()
        })
    }

    /// Maximum threads this setting can activate.
    pub fn max_threads(&self) -> usize {
        match self {
            CleanerSetting::Fixed(n) => *n,
            CleanerSetting::Dynamic(c) => c.max_threads,
        }
    }
}

/// Per-unit CPU costs, in nanoseconds. One set of constants is shared by
/// every experiment; workloads differ only in op shape and free locality.
///
/// The values approximate a mid-2010s storage controller: a few µs of
/// protocol + file-system message work per 4 KiB block on the client
/// path, ~2.5 µs of cleaning per block, and metafile processing costs
/// that put the serialized infrastructure within a small factor of one
/// core's cleaning capacity — the regime the paper's Figures 4–7 explore.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Protocol-stack CPU per client op.
    pub protocol_per_op: u64,
    /// Fixed CPU per client Waffinity message.
    pub client_msg_fixed: u64,
    /// CPU per block within a client message (checksums, buffer hashing,
    /// indirect-block walks).
    pub client_msg_per_block: u64,
    /// NVRAM mirror + reply latency (no CPU, pure delay).
    pub reply_latency: u64,
    /// Media read latency added to read ops (no CPU).
    pub read_media_latency: u64,

    /// Cleaner CPU per buffer cleaned (VBN assignment, tetris enqueue,
    /// block-map update — the USE path).
    pub cleaner_per_buffer: u64,
    /// Cleaner CPU per bucket cycle (GET + PUT synchronization), at one
    /// active cleaner.
    pub cleaner_bucket_sync: u64,
    /// Additional fraction of `cleaner_bucket_sync` per extra active
    /// cleaner (lock contention on the bucket cache / used queue; §V-B's
    /// "more threads come with additional lock contention").
    pub cleaner_contention_factor: f64,
    /// Cleaner CPU per bucket cycle on the lock-free (Treiber-stack) GET
    /// path: one CAS pop plus the fullest-shard hint load, no mutex
    /// acquire/release or condvar bookkeeping on the common path.
    pub cleaner_cas_sync: u64,
    /// Additional fraction of `cleaner_cas_sync` per extra sharer — CAS
    /// retries under contention cost far less than blocked mutex
    /// acquisitions because the loser retries immediately instead of
    /// parking (the reason the lock-free layout flattens the §V-B curve).
    pub cas_contention_factor: f64,
    /// Cleaner CPU per cleaning message (dispatch overhead; what §V-C's
    /// batching amortizes).
    pub cleaner_msg_overhead: u64,
    /// Cleaner CPU per inode within a message (attribute handling).
    pub cleaner_inode_overhead: u64,

    /// Infrastructure CPU per bucket refilled (message dispatch + AA
    /// bookkeeping).
    pub infra_refill_fixed: u64,
    /// Infrastructure CPU per VBN scanned while filling buckets.
    pub infra_refill_per_vbn: u64,
    /// Fixed CPU per used-bucket commit message.
    pub infra_commit_fixed: u64,
    /// CPU per VBN committed.
    pub infra_commit_per_vbn: u64,
    /// Fixed CPU per free-stage commit message.
    pub infra_frees_fixed: u64,
    /// CPU per VBN freed.
    pub infra_free_per_vbn: u64,
    /// CPU per distinct metafile block read/updated by a commit — the
    /// constant that makes random frees expensive (Figure 7).
    pub infra_per_mf_block: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            protocol_per_op: 20_000,
            client_msg_fixed: 42_000,
            client_msg_per_block: 5_800,
            reply_latency: 60_000,
            read_media_latency: 250_000,

            cleaner_per_buffer: 2_500,
            cleaner_bucket_sync: 4_000,
            cleaner_contention_factor: 0.06,
            cleaner_cas_sync: 1_500,
            cas_contention_factor: 0.02,
            cleaner_msg_overhead: 9_000,
            cleaner_inode_overhead: 1_500,

            infra_refill_fixed: 8_000,
            infra_refill_per_vbn: 600,
            infra_commit_fixed: 8_000,
            infra_commit_per_vbn: 250,
            infra_frees_fixed: 8_000,
            infra_free_per_vbn: 250,
            infra_per_mf_block: 2_400,
        }
    }
}

/// Deterministic fault-injection knobs for the simulated media path,
/// mirroring `wafl_blockdev::FaultSpec` at the discrete-event level.
/// Rates are per-million-operations; draws come from a dedicated
/// counter-based hash (seeded from [`SimConfig::seed`]) so enabling
/// faults never perturbs workload randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability (ppm) that a read op hits a transient media error and
    /// pays retry round-trips before completing.
    pub read_error_ppm: u32,
    /// Probability (ppm) that a write op's NVRAM-acknowledged media write
    /// hits a transient error and pays retry round-trips.
    pub write_error_ppm: u32,
    /// Probability (ppm) of a latency spike (drive garbage collection,
    /// link retrain) on any op.
    pub latency_spike_ppm: u32,
    /// Extra latency added by one spike, in nanoseconds.
    pub latency_spike_ns: u64,
    /// Bounded retry budget per faulted op; each retry costs one media
    /// round-trip of added latency.
    pub max_retries: u32,
}

impl Default for FaultConfig {
    /// No injected faults; spike size and retry budget match the
    /// blockdev layer's `RetryPolicy` defaults.
    fn default() -> Self {
        Self {
            read_error_ppm: 0,
            write_error_ppm: 0,
            latency_spike_ppm: 0,
            latency_spike_ns: 2_000_000,
            max_retries: 3,
        }
    }
}

impl FaultConfig {
    /// True when no fault band is armed (the common fast path).
    pub fn is_quiet(&self) -> bool {
        self.read_error_ppm == 0 && self.write_error_ppm == 0 && self.latency_spike_ppm == 0
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// CPU cores in the simulated controller (the paper's platforms have
    /// 20).
    pub cores: u32,
    /// Closed-loop clients.
    pub clients: u32,
    /// Outstanding ops each client keeps in flight (FC queue depth).
    pub outstanding_per_client: u32,
    /// Client think time between ops (0 = saturating load).
    pub think_ns: u64,
    /// Workload shape.
    pub workload: WorkloadKind,
    /// Parallelization era (§III). [`Era::WhiteAlligator`] honors the
    /// `cleaners`/`infra_mode` fields; earlier eras override them.
    pub era: Era,
    /// Cleaner thread setting.
    pub cleaners: CleanerSetting,
    /// Serialized or parallel infrastructure.
    pub infra_mode: InfraMode,
    /// Waffinity Range affinities available to parallel infrastructure.
    pub infra_ranges: u32,
    /// Bucket chunk size in blocks (§IV-C).
    pub chunk: u64,
    /// Data drives contributing one bucket per refill round (§IV-D).
    pub drives: u32,
    /// Bucket-cache shards. `0` = one shard per drive (the sharded
    /// layout's natural topology); `1` = the single-lock cache every GET
    /// funnels through. Pre-[`Era::WhiteAlligator`] eras always behave as
    /// single-lock regardless of this setting.
    pub cache_shards: u32,
    /// Lock-free (Treiber-stack) GET hot path. `true` charges
    /// [`CostModel::cleaner_cas_sync`] per bucket cycle; `false` keeps
    /// the mutex-shard cost ([`CostModel::cleaner_bucket_sync`]).
    /// Pre-[`Era::WhiteAlligator`] eras always behave as mutex.
    pub cache_lockfree: bool,
    /// Max buckets one GET may pop from the cleaner's home shard in a
    /// single synchronization (`get_many(k)`). Equal progress still
    /// bounds the batch: draining stops as soon as another shard would
    /// be strictly fuller, so per-drive sharding yields batches near 1
    /// while the single-lock layout amortizes up to `k`. Pre-White-
    /// Alligator eras force 1.
    pub cache_get_batch: u64,
    /// Free-stage capacity in VBNs (§IV-A).
    pub stage_capacity: u64,
    /// Dirty-buffer pool limit (admission throttle).
    pub dirty_limit: u64,
    /// Cleaning activates when the dirty pool reaches this level and runs
    /// until the pool drains — the CP cadence ("WAFL accumulates and
    /// flushes thousands of operations worth of data", §II-C). Batching
    /// small dirty inodes (§V-C) only pays off because work accumulates
    /// between CPs.
    pub cp_trigger_blocks: u64,
    /// Bucket-cache low watermark (refill trigger).
    pub bucket_low_watermark: u64,
    /// Total buckets in circulation. Buckets cycle cache → cleaner →
    /// used-bucket queue → (infrastructure commit) → refill → cache
    /// (Figure 2); a finite pool means a slow infrastructure starves GET,
    /// which is the backpressure that couples cleaning speed to
    /// infrastructure speed (Figures 6–7).
    pub total_buckets: u64,
    /// Total metafile blocks of the aggregate active map (sets how widely
    /// random frees scatter).
    pub aggregate_mf_blocks: u64,
    /// Whether batched inode cleaning is enabled (§V-C).
    pub batching: bool,
    /// Max inodes folded into one cleaner message when batching.
    pub batch_max_inodes: u64,
    /// Simulated run length.
    pub duration_ns: u64,
    /// Measurements discard this warmup prefix.
    pub warmup_ns: u64,
    /// Cost model.
    pub costs: CostModel,
    /// Injected media faults (defaults to none).
    pub faults: FaultConfig,
    /// RNG seed (workload randomness).
    pub seed: u64,
}

impl SimConfig {
    /// The paper's mid-range platform (§V-A): 20 cores, all-SSD, FC
    /// clients, saturating sequential-write load.
    pub fn paper_platform(workload: WorkloadKind) -> Self {
        Self {
            cores: 20,
            clients: 32,
            outstanding_per_client: 32,
            think_ns: 0,
            workload,
            era: Era::WhiteAlligator,
            cleaners: CleanerSetting::Fixed(4),
            infra_mode: InfraMode::Parallel,
            infra_ranges: 8,
            chunk: 64,
            drives: 12,
            cache_shards: 0,
            cache_lockfree: true,
            cache_get_batch: 4,
            stage_capacity: 256,
            dirty_limit: 1_024,
            cp_trigger_blocks: 256,
            bucket_low_watermark: 16,
            total_buckets: 36,
            aggregate_mf_blocks: 3_000,
            batching: true,
            batch_max_inodes: 32,
            duration_ns: 2_000_000_000,
            warmup_ns: 400_000_000,
            costs: CostModel::default(),
            faults: FaultConfig::default(),
            seed: 0x0057_A71C,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadKind;

    #[test]
    fn paper_platform_matches_testbed() {
        let c = SimConfig::paper_platform(WorkloadKind::sequential_write());
        assert_eq!(c.cores, 20);
        assert_eq!(c.chunk % 64, 0);
        assert!(c.warmup_ns < c.duration_ns);
    }

    #[test]
    fn cleaner_setting_max_threads() {
        assert_eq!(CleanerSetting::Fixed(3).max_threads(), 3);
        assert_eq!(CleanerSetting::dynamic_default(6).max_threads(), 6);
    }
}
