//! M6: end-to-end consistency-point cost on the real stack — dirty N
//! buffers, run a CP (clean + metafile flush + superblock), measured per
//! buffer; plus the batching effect on many small inodes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

fn mk(batching: bool) -> Filesystem {
    let mut cfg = FsConfig::default();
    cfg.cleaner.threads = 2;
    cfg.cleaner.batching = batching;
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(1024)
            .raid_group(4, 1, 1 << 20)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    );
    fs.create_volume(VolumeId(0));
    fs
}

fn bench_cp_one_big_file(c: &mut Criterion) {
    let mut g = c.benchmark_group("cp_cycle_one_file");
    for &blocks in &[64u64, 1024] {
        let fs = mk(true);
        fs.create_file(VolumeId(0), FileId(1));
        g.throughput(Throughput::Elements(blocks));
        g.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, _| {
            let mut generation = 0u64;
            b.iter(|| {
                generation += 1;
                for fbn in 0..blocks {
                    fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, generation));
                }
                fs.run_cp()
            });
        });
    }
    g.finish();
}

fn bench_cp_many_small_inodes(c: &mut Criterion) {
    let mut g = c.benchmark_group("cp_cycle_500_small_inodes");
    for (label, batching) in [("batched", true), ("unbatched", false)] {
        let fs = mk(batching);
        for f in 0..500u64 {
            fs.create_file(VolumeId(0), FileId(f));
        }
        g.throughput(Throughput::Elements(1000));
        g.bench_function(label, |b| {
            let mut generation = 0u64;
            b.iter(|| {
                generation += 1;
                for f in 0..500u64 {
                    fs.write(VolumeId(0), FileId(f), 0, stamp(f, 0, generation));
                    fs.write(VolumeId(0), FileId(f), 1, stamp(f, 1, generation));
                }
                fs.run_cp()
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cp_one_big_file, bench_cp_many_small_inodes);
criterion_main!(benches);
