//! M2: allocation-bitmap scan and reservation throughput — the
//! infrastructure's bucket-fill primitive ("walks the allocation bitmaps
//! to find free VBNs", §IV-D) — plus AA selection cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use wafl_blockdev::{GeometryBuilder, RaidGroupId};
use wafl_metafile::{AaStats, ActiveMap};

fn bench_reserve_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("reserve_scan");
    for &fill in &[0u32, 50, 90] {
        // Pre-fill `fill`% of a 1M-bit map, scattered.
        let map = ActiveMap::new(1 << 20);
        let step = if fill == 0 {
            u64::MAX
        } else {
            100 / fill as u64
        };
        if fill > 0 {
            let mut i = 0u64;
            while i < (1 << 20) {
                let _ = map.reserve(i);
                i += step.max(1);
            }
        }
        g.throughput(Throughput::Elements(64));
        g.bench_with_input(BenchmarkId::new("fill_pct", fill), &fill, |b, _| {
            let mut cursor = 0u64;
            b.iter(|| {
                let got = map.reserve_scan(cursor, 1 << 20, 64);
                // Release so the map state stays steady.
                for &v in &got {
                    map.release(v).unwrap();
                }
                cursor = got.last().map(|v| v + 1).unwrap_or(0) % (1 << 19);
            });
        });
    }
    g.finish();
}

fn bench_aa_selection(c: &mut Criterion) {
    let geo = GeometryBuilder::new()
        .aa_stripes(512)
        .raid_group(12, 2, 1 << 20)
        .build();
    let stats = AaStats::new_all_free(&geo);
    c.bench_function("aa_select_emptiest_2048_aas", |b| {
        b.iter(|| stats.select_emptiest(RaidGroupId(0)))
    });
}

fn bench_dirty_tracking(c: &mut Criterion) {
    let map = Arc::new(ActiveMap::new(1 << 24));
    c.bench_function("commit_and_take_dirty_blocks", |b| {
        let mut i = 0u64;
        b.iter(|| {
            let idx = (i * 7919) % (1 << 24);
            if map.reserve(idx).is_ok() {
                map.commit_used(idx).unwrap();
            }
            i += 1;
            if i.is_multiple_of(1024) {
                criterion::black_box(map.take_dirty_blocks());
            }
        });
    });
}

criterion_group!(
    benches,
    bench_reserve_scan,
    bench_aa_selection,
    bench_dirty_tracking
);
criterion_main!(benches);
