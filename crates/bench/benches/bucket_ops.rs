//! M1: bucket GET/USE/PUT cycle cost vs chunk size — the amortization
//! claim of §IV-C. A chunk of 1 is the per-VBN-allocation baseline the
//! paper contrasts against; larger chunks amortize cache synchronization
//! and bitmap scanning over more blocks.

use alligator::{AllocConfig, Allocator, InlineExecutor};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;
use waffinity::{Model, Topology};
use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine};
use wafl_metafile::AggregateMap;

fn mk(chunk: usize) -> Arc<Allocator> {
    let geo = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(1024)
            .raid_group(4, 1, 1 << 20)
            .build(),
    );
    let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
    let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
    let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
    Allocator::new(
        AllocConfig::with_chunk(chunk),
        aggmap,
        io,
        Arc::new(InlineExecutor),
        topo,
        0,
    )
}

fn bench_bucket_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("bucket_get_use_put_per_block");
    for &chunk in &[1usize, 8, 64, 256] {
        let alloc = mk(chunk);
        g.throughput(Throughput::Elements(chunk as u64));
        g.bench_with_input(BenchmarkId::from_parameter(chunk), &chunk, |b, _| {
            // Steady state: every allocated VBN is freed again, so the
            // aggregate never exhausts however long the bench runs.
            let mut stage = alloc.new_stage();
            let mut stamp = 1u128;
            let mut vbns = Vec::with_capacity(chunk);
            b.iter(|| {
                let mut bucket = alloc.get_bucket().expect("space available");
                while let Some(v) = bucket.use_vbn(stamp) {
                    stamp += 1;
                    vbns.push(v);
                }
                alloc.put_bucket(bucket);
                for v in vbns.drain(..) {
                    alloc.free_vbn(&mut stage, v);
                }
            });
            alloc.flush_stage(&mut stage);
            alloc.drain();
        });
    }
    g.finish();
}

criterion_group!(benches, bench_bucket_cycle);
criterion_main!(benches);
