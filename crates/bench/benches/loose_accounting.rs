//! M4: loose accounting vs strict shared-counter updates (§III-C; the
//! "sloppy counters" analogy of §VI). Measures single-thread cost and
//! multi-thread contention.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use wafl_metafile::LooseCounter;

fn bench_single_thread(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_add_single_thread");
    g.throughput(Throughput::Elements(1));
    g.bench_function("strict_atomic", |b| {
        let a = AtomicI64::new(0);
        // ordering: statistics counter; staleness is acceptable.
        b.iter(|| a.fetch_add(1, Ordering::Relaxed));
    });
    g.bench_function("loose_token_batch64", |b| {
        let c = LooseCounter::new(0);
        let mut t = c.token(64);
        b.iter(|| t.add(1));
    });
    g.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut g = c.benchmark_group("counter_add_4_threads_100k_each");
    g.bench_function("strict_atomic", |b| {
        b.iter(|| {
            let a = Arc::new(AtomicI64::new(0));
            let hs: Vec<_> = (0..4)
                .map(|_| {
                    let a = Arc::clone(&a);
                    std::thread::spawn(move || {
                        for _ in 0..100_000 {
                            // ordering: statistics counter; staleness is acceptable.
                            a.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            // ordering: test readback.
            assert_eq!(a.load(Ordering::Relaxed), 400_000);
        });
    });
    g.bench_function("loose_token_batch64", |b| {
        b.iter(|| {
            let c = LooseCounter::new(0);
            let hs: Vec<_> = (0..4)
                .map(|_| {
                    let c = Arc::clone(&c);
                    std::thread::spawn(move || {
                        let mut t = c.token(64);
                        for _ in 0..100_000 {
                            t.add(1);
                        }
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
            assert_eq!(c.value_loose(), 400_000);
        });
    });
    g.finish();
}

criterion_group!(benches, bench_single_thread, bench_contended);
criterion_main!(benches);
