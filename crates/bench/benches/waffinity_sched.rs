//! M3: Waffinity scheduling overhead — message dispatch through the
//! hierarchy (pure scheduler) and end-to-end through the real thread
//! pool, for conflict-free and conflicting affinity mixes.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use waffinity::{Affinity, ExclusionState, Model, Scheduler, Topology, WaffinityPool};

fn topo() -> Arc<Topology> {
    Arc::new(Topology::symmetric(Model::Hierarchical, 2, 4, 8, 8))
}

fn bench_pure_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler_enqueue_pop_complete");
    g.throughput(Throughput::Elements(1));
    g.bench_function("disjoint_stripes", |b| {
        let t = topo();
        let mut s: Scheduler<u32> = Scheduler::new(ExclusionState::new(Arc::clone(&t)));
        let ids: Vec<_> = (0..8).map(|i| t.id(Affinity::Stripe(0, i))).collect();
        let mut i = 0u32;
        b.iter(|| {
            let id = ids[(i % 8) as usize];
            s.enqueue(id, i);
            let (got, _) = s.pop_runnable().unwrap();
            s.complete(got);
            i += 1;
        });
    });
    g.bench_function("same_range_serialized", |b| {
        let t = topo();
        let mut s: Scheduler<u32> = Scheduler::new(ExclusionState::new(Arc::clone(&t)));
        let id = t.id(Affinity::AggrVbnRange(0, 3));
        let mut i = 0u32;
        b.iter(|| {
            s.enqueue(id, i);
            let (got, _) = s.pop_runnable().unwrap();
            s.complete(got);
            i += 1;
        });
    });
    g.finish();
}

fn bench_conflict_queries(c: &mut Criterion) {
    let t = topo();
    let mut s = ExclusionState::new(Arc::clone(&t));
    s.start(t.id(Affinity::VolumeLogical(0)));
    s.start(t.id(Affinity::VolumeVbn(1)));
    let probe = t.id(Affinity::Stripe(0, 3));
    c.bench_function("exclusion_can_run_probe", |b| {
        b.iter(|| criterion::black_box(s.can_run(probe)))
    });
}

fn bench_pool_round_trip(c: &mut Criterion) {
    let pool = WaffinityPool::new(topo(), 2);
    c.bench_function("pool_call_round_trip", |b| {
        b.iter(|| pool.call(Affinity::Stripe(1, 2), || 42u32))
    });
}

criterion_group!(
    benches,
    bench_pure_scheduler,
    bench_conflict_queries,
    bench_pool_round_trip
);
criterion_main!(benches);
