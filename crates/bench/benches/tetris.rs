//! M5: tetris processing (§IV-E) — the synchronization-free USE path and
//! full-stripe write-I/O construction.

use alligator::{AllocStats, Tetris};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine, RaidGroupId};

fn engine(width: u32) -> Arc<IoEngine> {
    Arc::new(IoEngine::new(
        Arc::new(
            GeometryBuilder::new()
                .aa_stripes(1024)
                .raid_group(width, 1, 1 << 20)
                .build(),
        ),
        DriveKind::Ssd,
    ))
}

fn bench_full_tetris(c: &mut Criterion) {
    let mut g = c.benchmark_group("tetris_full_round");
    for &width in &[4u32, 12] {
        let io = engine(width);
        let depth = 64u64;
        g.throughput(Throughput::Elements(width as u64 * depth));
        g.bench_function(format!("width_{width}_depth_{depth}"), |b| {
            let mut base = 0u64;
            b.iter(|| {
                let stats = Arc::new(AllocStats::default());
                let t = Tetris::new(RaidGroupId(0), width as usize, Arc::clone(&io), stats);
                for d in 0..width {
                    let writes: Vec<(u64, u128)> = (0..depth)
                        .map(|i| (base + i, (d as u128 + 1) << 64 | i as u128))
                        .collect();
                    t.deposit_and_complete(d, writes);
                }
                base = (base + depth) % ((1 << 20) - depth);
            });
        });
    }
    g.finish();
}

fn bench_ragged_tetris(c: &mut Criterion) {
    // Partial stripes force parity reads: the cost the equal-progress
    // discipline avoids.
    let io = engine(4);
    c.bench_function("tetris_single_drive_partial", |b| {
        let mut base = 0u64;
        b.iter(|| {
            let stats = Arc::new(AllocStats::default());
            let t = Tetris::new(RaidGroupId(0), 1, Arc::clone(&io), stats);
            let writes: Vec<(u64, u128)> = (0..64).map(|i| (base + i, i as u128 + 1)).collect();
            t.deposit_and_complete(0, writes);
            base = (base + 64) % ((1 << 20) - 64);
        });
    });
}

criterion_group!(benches, bench_full_tetris, bench_ragged_tetris);
criterion_main!(benches);
