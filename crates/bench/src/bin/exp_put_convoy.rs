//! PUT-convoy profiler — the measurement the ROADMAP's used-queue
//! sharding item is waiting on.
//!
//! Every PUT sends one commit message to the infrastructure (§IV-C: one
//! metafile commit per bucket). As cleaner threads scale 1→16 against a
//! *fixed* infrastructure executor, those commits can convoy behind the
//! executor — queue wait (`commit_queue_wait_ns`) grows while service
//! time (`commit_batch_ns`) stays flat. This bench runs the **real**
//! [`wafl::CleanerPool`] over the real allocator with a real
//! [`alligator::PoolExecutor`] (Waffinity threads) and reports, per
//! swept cleaner count:
//!
//! * commit-queue wait, service time, and depth high-water;
//! * GET wall time (`get_wait_ns`) — the synchronization cost §IV-C
//!   already amortizes, used as the comparison baseline;
//! * `convoy_ratio = commit_queue_wait_ns / get_wait_ns` — the headline:
//!   above ~1 the PUT side out-queues the GET side and used-queue
//!   sharding is justified.
//!
//! Outputs:
//! - `BENCH_put_convoy.json` at the repo root (`WAFL_BENCH_ROOT`
//!   overrides the directory) — validated by the CI schema gate;
//! - `results/exp_put_convoy.json` via the standard [`emit`] path;
//! - with `--features trace`: a Chrome-trace export of the 8-cleaner
//!   run (`results/trace_put_convoy.json`, loadable in Perfetto) and a
//!   recording-on vs recording-off overhead A/B at 8 cleaners (the
//!   <5% always-on budget; gated in full runs on multi-core machines,
//!   reported-only under `WAFL_BENCH_QUICK` or on one core).
//!
//! `--validate <path>` re-parses a previously written record and checks
//! schema + invariants (exit 1 on violation).

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use wafl::cleaner::{partition_work, CleanerConfig, CleanerPool};
use wafl::{DirtyBuffer, FileId, Volume, VolumeId};
use wafl_bench::emit;
use wafl_simsrv::FigureTable;

use alligator::{AllocConfig, Allocator, Executor, PoolExecutor, StatsSnapshot};
use waffinity::{Model, Topology, WaffinityPool};
use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine};
use wafl_metafile::AggregateMap;

/// Schema tag for `BENCH_put_convoy.json`.
const SCHEMA: &str = "wafl.put_convoy.v1";

/// Cleaner thread counts swept (the ISSUE's 1→16 range).
const CLEANERS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// Infrastructure (Waffinity) threads — deliberately *fixed* while
/// cleaners scale, so the commit funnel narrows relative to the PUT
/// rate and any convoy becomes visible.
const INFRA_THREADS: usize = 2;

/// Cleaner count used for the trace export and the overhead A/B.
const TRACE_POINT: usize = 8;

/// Always-on tracing budget: recording-on throughput at 8 cleaners may
/// lose at most this to recording-off (full runs, ≥ 2 cpus).
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Per-thread event cap of the committed Chrome trace (keeps the
/// artifact bounded; newest events win).
const TRACE_EXPORT_CAP: usize = 768;

/// One swept point: the real pool at `cleaners` threads.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConvoyPoint {
    /// Cleaner threads.
    cleaners: u64,
    /// Wall time of the cleaning run, ms.
    wall_ms: f64,
    /// Dirty buffers cleaned.
    buffers: u64,
    /// Buffers cleaned per second (wall).
    buffers_per_sec: f64,
    /// Bucket GETs (cache pops handed to cleaners).
    gets: u64,
    /// GETs that found the cache empty.
    get_stalls: u64,
    /// Bucket PUTs (each submits one commit message).
    puts: u64,
    /// Commit-queue depth high-water (submitted but unexecuted commits).
    commit_queue_high_water: u64,
    /// Total ns PUT commits waited in the executor queue.
    commit_queue_wait_ns: u64,
    /// Total ns the infrastructure spent servicing commits.
    commit_batch_ns: u64,
    /// Total ns cleaners spent inside GET (stalls included).
    get_wait_ns: u64,
    /// Mean commit-queue wait per PUT, µs.
    commit_wait_per_put_us: f64,
    /// Mean commit service per PUT, µs.
    commit_service_per_put_us: f64,
    /// Mean GET wall time per GET, µs.
    get_wait_per_get_us: f64,
    /// `commit_queue_wait_ns / get_wait_ns` — the sharding question.
    convoy_ratio: f64,
}

/// Recording-on vs recording-off A/B at [`TRACE_POINT`] cleaners
/// (only meaningful inside a `--features trace` build).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TraceOverhead {
    /// Cleaner threads of the A/B runs.
    cleaners: u64,
    /// Buffers/s with the runtime recording switch on.
    on_buffers_per_sec: f64,
    /// Buffers/s with the switch off (rings compiled in but cold).
    off_buffers_per_sec: f64,
    /// `100 · (off − on) / off` — positive = tracing slowdown.
    overhead_pct: f64,
    /// Events readable across all rings after the traced run.
    events_captured: u64,
    /// Events lost to ring overwrite (counted, not kept).
    events_dropped: u64,
}

/// The persisted record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ConvoyDoc {
    /// Schema tag (`wafl.put_convoy.v1`).
    schema: String,
    /// Producing binary.
    bench: String,
    /// True when run under `WAFL_BENCH_QUICK` (smaller workload; gates
    /// are reported, not enforced).
    quick: bool,
    /// True when the binary was built with `--features trace`.
    trace_build: bool,
    /// `available_parallelism()` of the producing machine. Wall-clock
    /// fields are machine-dependent; the trace-overhead gate needs ≥ 2.
    cpus: u64,
    /// Infrastructure (Waffinity) threads, fixed across the sweep.
    infra_threads: u64,
    /// Cleaner counts swept.
    cleaners: Vec<u64>,
    /// One point per swept cleaner count.
    points: Vec<ConvoyPoint>,
    /// Maximum `convoy_ratio` over the sweep.
    max_convoy_ratio: f64,
    /// Overhead A/B, or `null` without `--features trace`.
    trace_overhead: Option<TraceOverhead>,
    /// Path of the exported Chrome trace, or `null` without the feature.
    trace_file: Option<String>,
}

/// Outcome of one real-pool run.
struct RunOutcome {
    stats: StatsSnapshot,
    wall_ns: u64,
    buffers: u64,
}

/// Dirty-buffer count per file and file count for one run. Scaled down
/// under `WAFL_BENCH_QUICK`; sized so a run consumes well under the
/// aggregate's capacity.
fn workload_shape(quick: bool) -> (u64, u64) {
    if quick {
        (24, 128)
    } else {
        (120, 256)
    }
}

/// Run the real cleaner pool once at `cleaners` threads and return the
/// allocator's counters plus wall time. Fresh stack per run: geometry,
/// aggregate map, Waffinity infra pool, allocator, cleaner pool.
fn run_point(cleaners: usize, quick: bool) -> RunOutcome {
    let geo = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(8, 1, 8192)
            .build(),
    );
    let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
    let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
    let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
    let infra_pool = Arc::new(WaffinityPool::new(Arc::clone(&topo), INFRA_THREADS));
    let executor = Arc::new(PoolExecutor::new(Arc::clone(&infra_pool))) as Arc<dyn Executor>;
    let alloc = Allocator::new(AllocConfig::with_chunk(64), aggmap, io, executor, topo, 0);

    let cfg = CleanerConfig {
        threads: cleaners,
        batching: false,
        get_batch: 4,
        ..CleanerConfig::default()
    };
    let pool = CleanerPool::new(Arc::clone(&alloc), cfg);

    let vol = Volume::new(VolumeId(0), 0, 1 << 20);
    let (files, bufs_per_file) = workload_shape(quick);
    let frozen: Vec<_> = (0..files)
        .map(|f| {
            let file = FileId(1 + f);
            vol.create_file(file);
            let buffers: Vec<DirtyBuffer> = (0..bufs_per_file)
                .map(|fbn| DirtyBuffer::first_write(fbn, wafl_blockdev::stamp(1 + f, fbn, 1)))
                .collect();
            (Arc::clone(&vol), file, buffers)
        })
        .collect();
    let items = partition_work(frozen, &cfg);

    let t0 = std::time::Instant::now();
    let results = pool.clean_all(items);
    alloc.drain();
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let buffers: u64 = results.iter().map(|r| r.cleaned.len() as u64).sum();
    assert_eq!(buffers, files * bufs_per_file, "every buffer cleaned");
    let stats = alloc.stats();
    pool.shutdown();
    RunOutcome {
        stats,
        wall_ns,
        buffers,
    }
}

fn point(cleaners: usize, o: &RunOutcome) -> ConvoyPoint {
    let s = &o.stats;
    let per = |total_ns: u64, n: u64| total_ns as f64 / n.max(1) as f64 / 1e3;
    ConvoyPoint {
        cleaners: cleaners as u64,
        wall_ms: o.wall_ns as f64 / 1e6,
        buffers: o.buffers,
        buffers_per_sec: o.buffers as f64 / (o.wall_ns.max(1) as f64 / 1e9),
        gets: s.gets,
        get_stalls: s.get_stalls,
        puts: s.puts,
        commit_queue_high_water: s.put_commit_queue_len,
        commit_queue_wait_ns: s.commit_queue_wait_ns,
        commit_batch_ns: s.commit_batch_ns,
        get_wait_ns: s.get_wait_ns,
        commit_wait_per_put_us: per(s.commit_queue_wait_ns, s.puts),
        commit_service_per_put_us: per(s.commit_batch_ns, s.puts),
        get_wait_per_get_us: per(s.get_wait_ns, s.gets),
        convoy_ratio: s.commit_queue_wait_ns as f64 / s.get_wait_ns.max(1) as f64,
    }
}

/// Directory receiving `BENCH_put_convoy.json`: `WAFL_BENCH_ROOT` if
/// set (the CI smoke run points it at a temp dir), else the repo root.
fn bench_root() -> std::path::PathBuf {
    match std::env::var_os("WAFL_BENCH_ROOT") {
        Some(d) => d.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Recording-on vs recording-off throughput at [`TRACE_POINT`] cleaners.
/// Off runs first so the on-run's rings hold the freshest events for the
/// trace export. No-op (`None`) without `--features trace`.
fn measure_overhead(quick: bool) -> Option<TraceOverhead> {
    if !obs::ENABLED {
        return None;
    }
    obs::trace::set_recording(false);
    let off = run_point(TRACE_POINT, quick);
    obs::trace::set_recording(true);
    let on = run_point(TRACE_POINT, quick);
    let rate = |o: &RunOutcome| o.buffers as f64 / (o.wall_ns.max(1) as f64 / 1e9);
    let (on_rate, off_rate) = (rate(&on), rate(&off));
    let traces = obs::trace::snapshot_all();
    Some(TraceOverhead {
        cleaners: TRACE_POINT as u64,
        on_buffers_per_sec: on_rate,
        off_buffers_per_sec: off_rate,
        overhead_pct: 100.0 * (off_rate - on_rate) / off_rate.max(f64::MIN_POSITIVE),
        events_captured: traces.iter().map(|t| t.events.len() as u64).sum(),
        events_dropped: traces.iter().map(|t| t.dropped).sum(),
    })
}

/// Export every ring as Chrome trace JSON under the results directory.
/// Returns the written path. `None` without `--features trace`.
fn export_trace() -> Option<String> {
    if !obs::ENABLED {
        return None;
    }
    let traces = obs::trace::snapshot_all();
    let json = obs::chrome::chrome_trace_json(&traces, TRACE_EXPORT_CAP);
    let dir = std::env::var("WAFL_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    std::fs::create_dir_all(&dir).ok()?;
    let path = format!("{dir}/trace_put_convoy.json");
    match std::fs::write(&path, json) {
        Ok(()) => {
            println!("[saved {path} — load it in chrome://tracing or ui.perfetto.dev]");
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: could not write {path}: {e}");
            None
        }
    }
}

/// Schema/invariant check of a record. Returns the first violation.
fn validate(doc: &ConvoyDoc) -> Result<(), String> {
    if doc.schema != SCHEMA {
        return Err(format!("schema: expected {SCHEMA:?}, got {:?}", doc.schema));
    }
    if doc.cleaners.is_empty() {
        return Err("cleaners: empty sweep".into());
    }
    if !doc.cleaners.windows(2).all(|w| w[0] < w[1]) {
        return Err(format!(
            "cleaners not strictly increasing: {:?}",
            doc.cleaners
        ));
    }
    if !doc.cleaners.iter().any(|&c| c >= 8) {
        return Err("cleaners: no point at ≥ 8 (acceptance range uncovered)".into());
    }
    if doc.infra_threads == 0 {
        return Err("infra_threads = 0".into());
    }
    if doc.points.len() != doc.cleaners.len() {
        return Err(format!(
            "{} points, {} cleaner counts",
            doc.points.len(),
            doc.cleaners.len()
        ));
    }
    let mut max_ratio = f64::NEG_INFINITY;
    for (i, p) in doc.points.iter().enumerate() {
        if p.cleaners != doc.cleaners[i] {
            return Err(format!(
                "points[{i}]: cleaners {} ≠ {}",
                p.cleaners, doc.cleaners[i]
            ));
        }
        if p.buffers == 0 || p.puts == 0 || p.gets == 0 {
            return Err(format!(
                "points[{i}]: empty run (buffers {}, puts {}, gets {})",
                p.buffers, p.puts, p.gets
            ));
        }
        if !p.buffers_per_sec.is_finite() || p.buffers_per_sec <= 0.0 {
            return Err(format!(
                "points[{i}]: buffers_per_sec {}",
                p.buffers_per_sec
            ));
        }
        if p.commit_queue_high_water == 0 {
            return Err(format!("points[{i}]: commit queue never observed"));
        }
        let checks = [
            (
                "commit_wait_per_put_us",
                p.commit_wait_per_put_us,
                p.commit_queue_wait_ns,
                p.puts,
            ),
            (
                "commit_service_per_put_us",
                p.commit_service_per_put_us,
                p.commit_batch_ns,
                p.puts,
            ),
            (
                "get_wait_per_get_us",
                p.get_wait_per_get_us,
                p.get_wait_ns,
                p.gets,
            ),
        ];
        for (name, got, total_ns, n) in checks {
            let expect = total_ns as f64 / n.max(1) as f64 / 1e3;
            if !got.is_finite() || (got - expect).abs() > 1e-6 * expect.abs() + 1e-9 {
                return Err(format!(
                    "points[{i}].{name} = {got} inconsistent ({expect})"
                ));
            }
        }
        let expect_ratio = p.commit_queue_wait_ns as f64 / p.get_wait_ns.max(1) as f64;
        if !p.convoy_ratio.is_finite()
            || (p.convoy_ratio - expect_ratio).abs() > 1e-6 * expect_ratio.abs() + 1e-9
        {
            return Err(format!(
                "points[{i}].convoy_ratio = {} inconsistent ({expect_ratio})",
                p.convoy_ratio
            ));
        }
        max_ratio = max_ratio.max(p.convoy_ratio);
    }
    if (doc.max_convoy_ratio - max_ratio).abs() > 1e-6 * max_ratio.abs() + 1e-9 {
        return Err(format!(
            "max_convoy_ratio = {} but points give {max_ratio}",
            doc.max_convoy_ratio
        ));
    }
    match (&doc.trace_overhead, doc.trace_build) {
        (Some(_), false) => return Err("trace_overhead present without trace_build".into()),
        (None, true) => return Err("trace_build without trace_overhead".into()),
        _ => {}
    }
    if let Some(t) = &doc.trace_overhead {
        if t.on_buffers_per_sec <= 0.0 || t.off_buffers_per_sec <= 0.0 {
            return Err("trace_overhead: non-positive rate".into());
        }
        let expect = 100.0 * (t.off_buffers_per_sec - t.on_buffers_per_sec)
            / t.off_buffers_per_sec.max(f64::MIN_POSITIVE);
        if !t.overhead_pct.is_finite() || (t.overhead_pct - expect).abs() > 1e-6 {
            return Err(format!(
                "trace_overhead.overhead_pct = {} inconsistent ({expect})",
                t.overhead_pct
            ));
        }
        if t.events_captured == 0 {
            return Err("trace_overhead: traced run captured no events".into());
        }
        // The <5% always-on budget: enforced on full runs with real
        // parallelism (single-core wall clocks measure the scheduler).
        if !doc.quick && doc.cpus >= 2 && t.overhead_pct > OVERHEAD_BUDGET_PCT {
            return Err(format!(
                "tracing overhead {:.2}% at {} cleaners exceeds the {OVERHEAD_BUDGET_PCT}% budget",
                t.overhead_pct, t.cleaners
            ));
        }
    }
    if doc.trace_file.is_some() != doc.trace_build {
        return Err("trace_file must be present iff trace_build".into());
    }
    Ok(())
}

fn run_validate(path: &str) -> ! {
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_put_convoy: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: ConvoyDoc = match serde_json::from_str(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("exp_put_convoy: {path} does not parse as {SCHEMA}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_put_convoy: {path} invalid: {msg}");
        std::process::exit(1);
    }
    println!(
        "{path}: valid {SCHEMA} ({} points, max convoy ratio {:.3}, trace: {})",
        doc.points.len(),
        doc.max_convoy_ratio,
        match &doc.trace_overhead {
            Some(t) => format!("{:+.2}% overhead", t.overhead_pct),
            None => "off".to_string(),
        }
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        match args.get(2) {
            Some(path) => run_validate(path),
            None => {
                eprintln!("usage: exp_put_convoy [--validate <path>]");
                std::process::exit(2);
            }
        }
    }

    let quick = std::env::var_os("WAFL_BENCH_QUICK").is_some();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;

    let mut t = FigureTable::new(
        "exp_put_convoy",
        "PUT commit-queue convoy vs GET time, real cleaner pool 1→16 threads",
    );
    let mut points = Vec::new();
    for &n in &CLEANERS {
        let o = run_point(n, quick);
        let p = point(n, &o);
        t.row_measured(
            format!("commit wait/PUT @{n} cleaners"),
            p.commit_wait_per_put_us,
            "µs",
        );
        t.row_measured(
            format!("GET wait/GET @{n} cleaners"),
            p.get_wait_per_get_us,
            "µs",
        );
        t.row_measured(format!("convoy ratio @{n} cleaners"), p.convoy_ratio, "x");
        t.row_measured(
            format!("commit-queue high-water @{n} cleaners"),
            p.commit_queue_high_water as f64,
            "count",
        );
        points.push(p);
    }
    let max_convoy_ratio = points.iter().map(|p| p.convoy_ratio).fold(0.0, f64::max);

    let trace_overhead = measure_overhead(quick);
    if let Some(t) = &trace_overhead {
        println!(
            "tracing overhead at {} cleaners: {:+.2}% ({:.0} vs {:.0} buffers/s)",
            t.cleaners, t.overhead_pct, t.on_buffers_per_sec, t.off_buffers_per_sec
        );
    }
    let trace_file = export_trace();

    let doc = ConvoyDoc {
        schema: SCHEMA.to_string(),
        bench: "exp_put_convoy".to_string(),
        quick,
        trace_build: obs::ENABLED,
        cpus,
        infra_threads: INFRA_THREADS as u64,
        cleaners: CLEANERS.iter().map(|&n| n as u64).collect(),
        points,
        max_convoy_ratio,
        trace_overhead,
        trace_file,
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_put_convoy: produced record fails validation: {msg}");
        std::process::exit(1);
    }

    let root = bench_root();
    let _ = std::fs::create_dir_all(&root);
    let path = root.join("BENCH_put_convoy.json");
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
    emit(&t);
    println!(
        "max convoy ratio over the sweep: {max_convoy_ratio:.3} \
         (commit-queue wait / GET wall time; > 1 would justify used-queue sharding)"
    );
}
