//! Ablation: Range-affinity granularity (§IV-B2, second mechanism).
//!
//! "Waffinity provides a set of Range affinities under each Volume VBN
//! and Aggregate VBN affinity in order to allow parallel accesses to
//! different blocks in metafiles of a single volume or aggregate." With
//! one Range the parallel infrastructure degenerates to the serialized
//! one; more Ranges admit more concurrent metafile operations. Random
//! write (infrastructure-bound) shows the effect most clearly.

use wafl_bench::{emit, gain_pct, platform};
use wafl_simsrv::{CleanerSetting, FigureTable, Simulator, WorkloadKind};

fn main() {
    let mut t = FigureTable::new(
        "ablation_ranges",
        "random write: throughput vs Range affinities per aggregate",
    );
    let mut base = None;
    for ranges in [1u32, 2, 4, 8, 16] {
        let mut cfg = platform(WorkloadKind::random_write());
        cfg.infra_ranges = ranges;
        cfg.cleaners = CleanerSetting::dynamic_default(8);
        let r = Simulator::new(cfg).run();
        let b = *base.get_or_insert(r.throughput_ops);
        t.row_measured(
            format!("throughput @{ranges} ranges"),
            r.throughput_ops,
            "ops/s",
        );
        t.row_measured(
            format!("gain vs 1 range @{ranges} ranges"),
            gain_pct(r.throughput_ops, b),
            "%",
        );
        t.row_measured(
            format!("infra cores @{ranges} ranges"),
            r.usage.infra_cores(r.measured_ns),
            "cores",
        );
    }
    emit(&t);
}
