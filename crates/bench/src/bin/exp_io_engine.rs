//! Async I/O engine profiler — the queue-depth evidence for
//! `blockdev::aio` on the real file backend.
//!
//! The synchronous engine writes a stripe and makes it durable before
//! the next one starts: submit, drain, fsync, repeat — the depth-1
//! discipline. The async engine keeps up to `depth` stripes in flight
//! and pays one fsync barrier per batch, the same shape the CP uses
//! (pipeline every stripe of a phase, barrier once before the
//! superblock commit). On a real disk the fsync dominates, so the win
//! is barrier amortization, not device parallelism.
//!
//! This bench drives the **real** [`AioEngine`] over a
//! [`FileBackend`] (O_DIRECT where the filesystem allows it, recorded
//! either way) sweeping queue depth 1 → 32, then times a full
//! file-backed CP at both disciplines, proving:
//!
//! * **pipelining** — at depth ≥ 8 stripe-write throughput is ≥ 1.5×
//!   the depth-1 synchronous baseline (the acceptance gate);
//! * **overlap** — the engine really ran deep: `queue_depth_peak > 1`
//!   at depth ≥ 8;
//! * **conservation** — every submitted ticket completes
//!   (`submitted == completed`, nothing dropped) at every depth.
//!
//! Outputs `BENCH_io_engine.json` at the repo root (`WAFL_BENCH_ROOT`
//! overrides the directory) — validated by the CI schema gate — plus
//! `results/exp_io_engine.json` via the standard [`emit`] path.
//! `WAFL_BENCH_QUICK=1` shrinks the workload (structural gates stay
//! enforced; the speedup bar drops to a 1.05× sanity floor because
//! scratch filesystems make fsync — the amortized cost — nearly free).
//! `--validate <path>` re-parses a previously written record and
//! checks schema + gates (exit 1 on violation).

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;
use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_bench::emit;
use wafl_blockdev::{
    AioEngine, DriveKind, FileBackend, GeometryBuilder, IoEngine, RaidGroupId, SyncPolicy, WriteIo,
    WriteSegment,
};
use wafl_simsrv::FigureTable;

/// Schema tag for `BENCH_io_engine.json`.
const SCHEMA: &str = "wafl.io_engine.v1";

/// Data drives in the bench RAID group.
const WIDTH: u32 = 4;

/// Blocks per drive per stripe (4 drives × 8 blocks = 32 blocks, one
/// 128 KiB tetris-shaped write per stripe).
const STRIPE_DEPTH: u64 = 8;

/// One swept queue-depth point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DepthPoint {
    /// Submission-queue depth for this point (1 = synchronous
    /// discipline: drain + fsync after every stripe).
    depth: u64,
    /// Wall time for the whole stripe workload (ns).
    wall_ns: u64,
    /// Stripe-write throughput (stripes/s).
    stripes_per_sec: f64,
    /// Durability barriers paid (one `drain` per batch).
    barriers: u64,
    /// Tickets submitted.
    submitted: u64,
    /// Completions delivered.
    completed: u64,
    /// Submissions dropped (must be 0 outside crash scenarios).
    dropped: u64,
    /// High-water mark of writes in flight.
    queue_depth_peak: u64,
    /// Mean submit→complete latency per stripe (ns).
    mean_submit_to_complete_ns: u64,
}

/// The whole record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct IoEngineDoc {
    /// Schema tag (`wafl.io_engine.v1`).
    schema: String,
    /// Producing binary.
    bench: String,
    /// True when run under `WAFL_BENCH_QUICK` (smaller workload; the
    /// structural gates stay enforced and the speedup gate drops to a
    /// 1.05× sanity floor — see [`validate`]).
    quick: bool,
    /// `available_parallelism()` of the producing machine.
    cpus: u64,
    /// Whether the backing files opened with O_DIRECT (false after the
    /// buffered fallback, e.g. on tmpfs).
    o_direct: bool,
    /// Stripes written per depth point.
    stripes: u64,
    /// Blocks per stripe (drives × per-drive depth).
    blocks_per_stripe: u64,
    /// The swept points, ascending by depth; the first is depth 1.
    depths: Vec<DepthPoint>,
    /// Depth-1 synchronous throughput (the baseline).
    baseline_stripes_per_sec: f64,
    /// Best speedup over the baseline among points with depth ≥ 8.
    speedup_at_depth_ge_8: f64,
    /// Wall time of a file-backed CP at the synchronous discipline
    /// (depth 0, per-write fsync).
    cp_sync_ns: u64,
    /// Wall time of the same CP pipelined at depth 8 with one fsync
    /// barrier before the superblock commit.
    cp_async_ns: u64,
}

/// Workload shape: stripes per depth point and the depth sweep.
fn workload_shape(quick: bool) -> (u64, Vec<usize>) {
    if quick {
        (48, vec![1, 8])
    } else {
        (192, vec![1, 2, 4, 8, 16, 32])
    }
}

/// The stripe for slot `i`: a full-width tetris write at a rotating
/// drive offset, stamped uniquely so torn or lost writes would be
/// visible as stamp mismatches in the backing files.
fn stripe_io(i: u64, blocks_per_drive: u64) -> WriteIo {
    let start = (i * STRIPE_DEPTH) % (blocks_per_drive - STRIPE_DEPTH);
    WriteIo {
        rg: RaidGroupId(0),
        segments: (0..WIDTH)
            .map(|d| WriteSegment {
                drive_in_rg: d,
                start_dbn: start,
                stamps: (0..STRIPE_DEPTH)
                    .map(|b| wafl_blockdev::stamp(i ^ (d as u64) << 32, start + b, 1))
                    .collect(),
            })
            .collect(),
    }
}

/// One depth point: write `stripes` stripes through a fresh engine +
/// file backend in `dir`, submitting in batches of `depth` with a
/// drain (fsync barrier) after each batch. Depth 1 is therefore the
/// synchronous per-stripe-fsync discipline.
fn run_depth(dir: &std::path::Path, depth: usize, stripes: u64) -> (DepthPoint, bool) {
    let blocks_per_drive = 4096u64;
    let geometry = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(32)
            .raid_group(WIDTH, 1, blocks_per_drive)
            .build(),
    );
    let io = Arc::new(IoEngine::new(Arc::clone(&geometry), DriveKind::Ssd));
    let _ = std::fs::remove_dir_all(dir);
    let backend = Arc::new(
        FileBackend::open(dir, io.geometry(), SyncPolicy::Barrier).expect("file backend opens"),
    );
    let o_direct = backend.o_direct();
    io.attach_mirror(Arc::clone(&backend));
    let aio = AioEngine::new(Arc::clone(&io), depth);

    let mut barriers = 0u64;
    let started = Instant::now();
    let mut in_batch = 0usize;
    for i in 0..stripes {
        aio.submit(stripe_io(i, blocks_per_drive))
            .expect("bench submit");
        in_batch += 1;
        if in_batch == depth {
            aio.drain();
            barriers += 1;
            in_batch = 0;
        }
    }
    if in_batch > 0 {
        aio.drain();
        barriers += 1;
    }
    let wall_ns = started.elapsed().as_nanos() as u64;

    let (submitted, completed, dropped) = (aio.submitted(), aio.completed(), aio.dropped());
    let peak = aio.queue_depth_peak();
    let lat_total = aio.submit_to_complete_ns_total();
    aio.shutdown();
    let _ = std::fs::remove_dir_all(dir);
    (
        DepthPoint {
            depth: depth as u64,
            wall_ns,
            stripes_per_sec: stripes as f64 / (wall_ns as f64 / 1e9),
            barriers,
            submitted,
            completed,
            dropped,
            queue_depth_peak: peak,
            mean_submit_to_complete_ns: lat_total / submitted.max(1),
        },
        o_direct,
    )
}

/// A small file-backed aggregate with a dirty working set, ready for
/// one CP.
fn cp_fs(dir: &std::path::Path, io_queue_depth: usize, policy: SyncPolicy) -> Filesystem {
    let _ = std::fs::remove_dir_all(dir);
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        io_queue_depth,
        ..FsConfig::default()
    };
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 2048)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    );
    fs.attach_file_backend(dir, policy).expect("backend opens");
    fs.create_volume(VolumeId(0));
    for f in 0..4u64 {
        fs.create_file(VolumeId(0), FileId(f));
        for fbn in 0..48u64 {
            fs.write(VolumeId(0), FileId(f), fbn, wafl_blockdev::stamp(f, fbn, 1));
        }
    }
    fs
}

/// Time one CP at each discipline: synchronous with per-write fsync vs
/// depth-8 pipelined with the barrier at the superblock commit.
fn run_cp_comparison(root: &std::path::Path) -> (u64, u64) {
    let sync_dir = root.join("cp-sync");
    let fs = cp_fs(&sync_dir, 0, SyncPolicy::PerWrite);
    let t = Instant::now();
    fs.run_cp();
    let cp_sync_ns = t.elapsed().as_nanos() as u64;
    fs.verify_integrity().expect("sync CP verifies");
    let _ = std::fs::remove_dir_all(&sync_dir);

    let async_dir = root.join("cp-async");
    let fs = cp_fs(&async_dir, 8, SyncPolicy::Barrier);
    let t = Instant::now();
    fs.run_cp();
    let cp_async_ns = t.elapsed().as_nanos() as u64;
    fs.verify_integrity().expect("async CP verifies");
    let _ = std::fs::remove_dir_all(&async_dir);
    (cp_sync_ns, cp_async_ns)
}

fn run(quick: bool, cpus: u64) -> IoEngineDoc {
    let (stripes, depths) = workload_shape(quick);
    let root = std::env::temp_dir().join(format!("wafl-exp-io-engine-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&root);

    let mut points = Vec::with_capacity(depths.len());
    let mut o_direct = true;
    for depth in depths {
        let dir = root.join(format!("depth-{depth}"));
        let (p, od) = run_depth(&dir, depth, stripes);
        o_direct &= od;
        points.push(p);
    }
    let baseline = points[0].stripes_per_sec;
    let speedup = points
        .iter()
        .filter(|p| p.depth >= 8)
        .map(|p| p.stripes_per_sec / baseline)
        .fold(0.0f64, f64::max);

    let (cp_sync_ns, cp_async_ns) = run_cp_comparison(&root);
    let _ = std::fs::remove_dir_all(&root);

    IoEngineDoc {
        schema: SCHEMA.to_string(),
        bench: "exp_io_engine".to_string(),
        quick,
        cpus,
        o_direct,
        stripes,
        blocks_per_stripe: WIDTH as u64 * STRIPE_DEPTH,
        depths: points,
        baseline_stripes_per_sec: baseline,
        speedup_at_depth_ge_8: speedup,
        cp_sync_ns,
        cp_async_ns,
    }
}

/// Schema + pipelining gates. Structural gates are ratio-based and
/// hold on quick runs; the speedup bar is 1.5× for full records and a
/// 1.05× sanity floor for quick smokes.
fn validate(doc: &IoEngineDoc) -> Result<(), String> {
    if doc.schema != SCHEMA {
        return Err(format!("schema: expected {SCHEMA:?}, got {:?}", doc.schema));
    }
    if doc.stripes == 0 || doc.blocks_per_stripe == 0 {
        return Err("degenerate workload (zero stripes or blocks)".into());
    }
    if doc.depths.is_empty() || doc.depths[0].depth != 1 {
        return Err("sweep must start at the depth-1 synchronous baseline".into());
    }
    if !doc.depths.iter().any(|p| p.depth >= 8) {
        return Err("sweep never reached depth 8".into());
    }
    for p in &doc.depths {
        if p.stripes_per_sec <= 0.0 || p.wall_ns == 0 {
            return Err(format!("depth {}: degenerate timing", p.depth));
        }
        // Conservation: every ticket completes, nothing dropped.
        if p.submitted != doc.stripes || p.completed != p.submitted || p.dropped != 0 {
            return Err(format!(
                "depth {}: tickets do not balance ({} submitted, {} completed, {} dropped, {} stripes)",
                p.depth, p.submitted, p.completed, p.dropped, doc.stripes
            ));
        }
        // The depth-1 discipline barriers per stripe; deeper sweeps
        // amortize (ceil(stripes / depth) barriers).
        let want = doc.stripes.div_ceil(p.depth);
        if p.barriers != want {
            return Err(format!(
                "depth {}: {} barriers, expected {}",
                p.depth, p.barriers, want
            ));
        }
        // Overlap: deep points really pipelined.
        if p.depth >= 8 && p.queue_depth_peak <= 1 {
            return Err(format!(
                "depth {}: queue never went deeper than {}",
                p.depth, p.queue_depth_peak
            ));
        }
    }
    // The acceptance gate: pipelining beats the synchronous baseline.
    // The full 1.5× bar applies to full runs (the committed record);
    // quick smokes run a short sweep on whatever scratch filesystem CI
    // hands them — where fsync can be nearly free, shrinking the
    // barrier-amortization win — so they gate at a sanity floor of
    // 1.05× (pipelining must still help, just not by the real-disk
    // margin).
    let (bar, label) = if doc.quick {
        (1.05, "quick")
    } else {
        (1.5, "full")
    };
    if doc.speedup_at_depth_ge_8 < bar {
        return Err(format!(
            "pipelining gate ({label}): {:.2}× at depth ≥ 8, need ≥ {bar}× over \
             the depth-1 baseline of {:.1} stripes/s",
            doc.speedup_at_depth_ge_8, doc.baseline_stripes_per_sec
        ));
    }
    if doc.cp_sync_ns == 0 || doc.cp_async_ns == 0 {
        return Err("CP comparison did not run".into());
    }
    Ok(())
}

/// Directory receiving `BENCH_io_engine.json`: `WAFL_BENCH_ROOT` if
/// set (the CI smoke run points it at a temp dir), else the repo root.
fn bench_root() -> std::path::PathBuf {
    match std::env::var_os("WAFL_BENCH_ROOT") {
        Some(d) => d.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

fn run_validate(path: &str) -> ! {
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_io_engine: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: IoEngineDoc = match serde_json::from_str(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("exp_io_engine: {path} does not parse as {SCHEMA}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_io_engine: {path} invalid: {msg}");
        std::process::exit(1);
    }
    println!(
        "{path}: valid {SCHEMA} ({:.2}× at depth ≥ 8 over {:.1} stripes/s; o_direct={})",
        doc.speedup_at_depth_ge_8, doc.baseline_stripes_per_sec, doc.o_direct
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        match args.get(2) {
            Some(path) => run_validate(path),
            None => {
                eprintln!("usage: exp_io_engine [--validate <path>]");
                std::process::exit(2);
            }
        }
    }

    let quick = std::env::var_os("WAFL_BENCH_QUICK").is_some();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    let doc = run(quick, cpus);
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_io_engine: produced record fails validation: {msg}");
        std::process::exit(1);
    }

    let mut t = FigureTable::new(
        "exp_io_engine",
        "async submission/completion queues on the file backend: depth sweep + CP disciplines",
    );
    for p in &doc.depths {
        t.row_measured(
            format!("depth {} throughput", p.depth),
            p.stripes_per_sec,
            "stripes/s",
        );
        t.row_measured(
            format!("depth {} submit→complete mean", p.depth),
            p.mean_submit_to_complete_ns as f64 / 1e6,
            "ms",
        );
    }
    t.row_measured(
        if doc.quick {
            "speedup at depth ≥ 8 (quick floor ≥ 1.05×)"
        } else {
            "speedup at depth ≥ 8 (gate ≥ 1.5×)"
        },
        doc.speedup_at_depth_ge_8,
        "x",
    );
    t.row_measured(
        "CP wall, per-write fsync",
        doc.cp_sync_ns as f64 / 1e6,
        "ms",
    );
    t.row_measured(
        "CP wall, depth-8 pipelined",
        doc.cp_async_ns as f64 / 1e6,
        "ms",
    );
    t.row_measured("O_DIRECT engaged (1=yes)", doc.o_direct as u64 as f64, "");

    let root = bench_root();
    let _ = std::fs::create_dir_all(&root);
    let path = root.join("BENCH_io_engine.json");
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
    emit(&t);
    println!(
        "queue-depth sweep: baseline {:.1} stripes/s → best {:.2}× at depth ≥ 8; \
         CP {} ms sync vs {} ms pipelined (o_direct={})",
        doc.baseline_stripes_per_sec,
        doc.speedup_at_depth_ge_8,
        doc.cp_sync_ns / 1_000_000,
        doc.cp_async_ns / 1_000_000,
        doc.o_direct
    );
}
