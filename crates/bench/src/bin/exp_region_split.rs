//! Extension experiment — §V-C's unpublished result: "we also handle the
//! opposite scenario wherein many writes happen to a small number of
//! files by allowing individual inodes to be processed in parallel by
//! multiple cleaner threads. We do not present these results due to space
//! limitations."
//!
//! We present them. Part 1 (simulator): a single-file write flood where
//! cleaning is either confined to one cleaner (no region split — an inode
//! is one unit of work) or spread over many (region split). Part 2 (real
//! stack): the region partitioner's message counts.

use wafl::cleaner::{partition_work, CleanerConfig};
use wafl::{DirtyBuffer, FileId, Volume, VolumeId};
use wafl_bench::{emit, gain_pct, platform};
use wafl_simsrv::{CleanerSetting, FigureTable, Simulator, WorkloadKind};

fn main() {
    let mut t = FigureTable::new(
        "exp_region_split",
        "single-file workload: multiple cleaners per inode via region split",
    );

    // Simulator: without region split, one inode's dirty buffers are a
    // single cleaning stream (1 cleaner); with region split, N cleaners
    // share the inode.
    let mut without = platform(WorkloadKind::sequential_write());
    without.cleaners = CleanerSetting::Fixed(1);
    let r_without = Simulator::new(without).run();
    let mut with = platform(WorkloadKind::sequential_write());
    with.cleaners = CleanerSetting::Fixed(4);
    let r_with = Simulator::new(with).run();
    t.row_measured(
        "throughput, inode-granular cleaning (1 cleaner)",
        r_without.throughput_ops,
        "ops/s",
    );
    t.row_measured(
        "throughput, region split (4 cleaners, one inode)",
        r_with.throughput_ops,
        "ops/s",
    );
    t.row_measured(
        "single-file parallel-cleaning gain",
        gain_pct(r_with.throughput_ops, r_without.throughput_ops),
        "%",
    );

    // Real partitioner: one 4096-buffer inode.
    let vol = Volume::new(VolumeId(0), 0, 1 << 20);
    vol.create_file(FileId(1));
    let buffers: Vec<DirtyBuffer> = (0..4096)
        .map(|fbn| DirtyBuffer::first_write(fbn, wafl_blockdev::stamp(1, fbn, 1)))
        .collect();
    let cfg = CleanerConfig::default();
    let items = partition_work(vec![(vol, FileId(1), buffers)], &cfg);
    t.row_measured(
        "cleaner messages for one 4096-buffer inode",
        items.len() as f64,
        "messages",
    );
    t.row_measured(
        "buffers per region message",
        cfg.region_size as f64,
        "buffers",
    );
    emit(&t);
}
