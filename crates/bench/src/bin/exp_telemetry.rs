//! Continuous-telemetry gates — the evidence behind DESIGN.md §16's
//! "always-on" claim, in three parts:
//!
//! 1. **CP critical-path profile.** A file-backed CP is run at
//!    `io_queue_depth` ∈ {0, 8, 16}; every [`CpReport`] must attribute
//!    ≥ 95% of its wall time to the six named phases, and the summed
//!    phase profile names the **binding phase** per depth — the answer
//!    to "which phase bounds CP latency as the I/O engine deepens".
//! 2. **Blackbox post-mortem.** A seeded whole-drive death fires the
//!    `drive_offline` trigger; servicing the flight recorder must yield
//!    a `wafl.blackbox.v1` bundle whose trigger board, fault snapshot,
//!    and metrics agree with the live engine (and whose per-thread
//!    event rings are populated in `--features trace` builds).
//! 3. **Sampler overhead.** The `exp_put_convoy` cleaner-pool workload
//!    runs with and without a [`SamplerThread`] ticking the global
//!    registry at the default interval; the throughput loss must stay
//!    under the 5% always-on budget. Enforced on full runs with ≥ 2
//!    cpus; reported-only (skip-with-notice) under `WAFL_BENCH_QUICK`
//!    or on one core, where wall clocks measure the scheduler.
//!
//! Outputs `BENCH_telemetry.json` at the repo root (`WAFL_BENCH_ROOT`
//! overrides the directory) plus `results/exp_telemetry.json` via the
//! standard [`emit`] path. `--validate <path>` re-parses a previously
//! written record and checks schema + gates (exit 1 on violation).

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wafl::cleaner::{partition_work, CleanerConfig, CleanerPool};
use wafl::cp::CP_PHASE_NAMES;
use wafl::{DirtyBuffer, ExecMode, FileId, Filesystem, FsConfig, Volume, VolumeId};
use wafl_bench::emit;
use wafl_simsrv::FigureTable;

use alligator::{AllocConfig, Allocator, Executor, PoolExecutor};
use obs::{Blackbox, BlackboxConfig, RegistrySource, Sampler, SamplerConfig, SamplerThread};
use serde::Value;
use waffinity::{Model, Topology, WaffinityPool};
use wafl_blockdev::{
    stamp, DriveKind, FaultSpec, GeometryBuilder, IoEngine, RetryPolicy, SyncPolicy,
};
use wafl_metafile::AggregateMap;

/// Schema tag for `BENCH_telemetry.json`.
const SCHEMA: &str = "wafl.telemetry_bench.v1";

/// Always-on sampler budget: throughput with the sampler thread
/// running may lose at most this to the sampler-off baseline.
const OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Phase-attribution floor: every CP must account for at least this
/// fraction of its wall time in the six named phases.
const COVERAGE_FLOOR: f64 = 0.95;

/// Cleaner threads of the overhead A/B (the `exp_put_convoy` trace
/// point).
const AB_CLEANERS: usize = 8;

/// Infrastructure (Waffinity) threads of the A/B workload.
const INFRA_THREADS: usize = 2;

/// A/B pairs on full runs (even, so arm order alternates evenly).
const AB_REPS: usize = 4;

/// One phase row of a depth point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PhaseRow {
    /// Phase name (one of [`CP_PHASE_NAMES`]).
    name: String,
    /// Summed wall time of this phase across the point's CPs (ns).
    total_ns: u64,
    /// `total_ns / Σ total_ns` over the six phases.
    fraction: f64,
}

/// CP phase profile at one `io_queue_depth`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CpDepthPoint {
    /// `io_queue_depth` of the run (0 = synchronous engine).
    depth: u64,
    /// CPs measured at this depth.
    cps: u64,
    /// Per-phase summed wall time, pipeline order.
    phases: Vec<PhaseRow>,
    /// Worst per-CP phase coverage (Σ phase_ns / total_ns).
    min_coverage: f64,
    /// Name of the phase with the largest summed wall time.
    binding_phase: String,
}

/// Blackbox drive-death checks (facts read back from the bundle).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BlackboxCheck {
    /// `schema` field of the bundle.
    bundle_schema: String,
    /// `reason` the bundle records.
    reason: String,
    /// `fires` of the `drive_offline` board slot.
    drive_offline_fires: u64,
    /// `last_arg` of that slot — the dead drive's id.
    dead_drive: u64,
    /// `drives_offline` of the bundled fault snapshot.
    drives_offline: u64,
    /// Thread rings captured in the bundle.
    threads: u64,
    /// Events across all captured rings.
    events_total: u64,
    /// `telemetry_blackbox_dumps` in the bundled metrics snapshot.
    dumps_counted: u64,
}

/// Sampler-on vs sampler-off A/B on the cleaner-pool workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SamplerOverhead {
    /// Cleaner threads of both runs.
    cleaners: u64,
    /// Sampling interval used (ms) — the default.
    interval_ms: u64,
    /// Buffers/s without the sampler thread.
    off_buffers_per_sec: f64,
    /// Buffers/s with the sampler thread running.
    on_buffers_per_sec: f64,
    /// `100 · (off − on) / off` — positive = sampler slowdown.
    overhead_pct: f64,
    /// Ticks the sampler ring accumulated during the on-run.
    ticks: u64,
    /// Whether the < 5% budget is enforced (full run, ≥ 2 cpus) or
    /// reported-only.
    gate_enforced: bool,
}

/// The persisted record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TelemetryDoc {
    /// Schema tag (`wafl.telemetry_bench.v1`).
    schema: String,
    /// Producing binary.
    bench: String,
    /// True when run under `WAFL_BENCH_QUICK`.
    quick: bool,
    /// True when built with `--features trace` (thread rings real).
    trace_build: bool,
    /// `available_parallelism()` of the producing machine.
    cpus: u64,
    /// CP phase profile per swept `io_queue_depth`.
    cp_depths: Vec<CpDepthPoint>,
    /// Drive-death post-mortem checks.
    blackbox: BlackboxCheck,
    /// Sampler A/B.
    sampler: SamplerOverhead,
}

/// Depths swept and CPs per depth.
fn cp_shape(quick: bool) -> (Vec<usize>, u64) {
    if quick {
        (vec![0, 8], 2)
    } else {
        (vec![0, 8, 16], 3)
    }
}

/// A file-backed aggregate at `io_queue_depth`, with a CP-sized dirty
/// working set rewritten before every measured CP. Depth 0 keeps the
/// synchronous per-write-fsync discipline; deeper runs pipeline with
/// one barrier at the superblock commit, so the `barrier` phase is the
/// one the depth sweep moves.
fn profile_depth(root: &std::path::Path, depth: usize, cps: u64) -> CpDepthPoint {
    let dir = root.join(format!("cp-depth-{depth}"));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        io_queue_depth: depth,
        ..FsConfig::default()
    };
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 2048)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    );
    let policy = if depth == 0 {
        SyncPolicy::PerWrite
    } else {
        SyncPolicy::Barrier
    };
    fs.attach_file_backend(&dir, policy).expect("backend opens");
    fs.create_volume(VolumeId(0));
    for f in 0..4u64 {
        fs.create_file(VolumeId(0), FileId(f));
    }

    let mut totals = [0u64; 6];
    let mut min_coverage = f64::INFINITY;
    for gen in 1..=cps {
        for f in 0..4u64 {
            for fbn in 0..48u64 {
                fs.write(VolumeId(0), FileId(f), fbn, stamp(f, fbn, gen));
            }
        }
        let report = fs.run_cp();
        assert!(report.total_ns > 0, "CP must be timed");
        for (t, ns) in totals.iter_mut().zip(report.phase_ns()) {
            *t += ns;
        }
        min_coverage = min_coverage.min(report.phase_coverage());
    }
    fs.verify_integrity().expect("profiled CPs verify");
    let _ = std::fs::remove_dir_all(&dir);

    let sum: u64 = totals.iter().sum();
    let binding = totals
        .iter()
        .enumerate()
        .max_by_key(|(_, &ns)| ns)
        .map(|(i, _)| i)
        .unwrap_or(0);
    CpDepthPoint {
        depth: depth as u64,
        cps,
        phases: CP_PHASE_NAMES
            .iter()
            .zip(totals)
            .map(|(name, total_ns)| PhaseRow {
                name: name.to_string(),
                total_ns,
                fraction: total_ns as f64 / sum.max(1) as f64,
            })
            .collect(),
        min_coverage,
        binding_phase: CP_PHASE_NAMES[binding].to_string(),
    }
}

fn field<'v>(v: &'v Value, key: &str) -> &'v Value {
    let Value::Map(pairs) = v else {
        panic!("bundle: expected object looking up {key}")
    };
    &pairs
        .iter()
        .find(|(k, _)| k == key)
        .unwrap_or_else(|| panic!("bundle: missing field {key}"))
        .1
}

fn uint(v: &Value) -> u64 {
    match v {
        Value::UInt(n) => *n as u64,
        other => panic!("bundle: expected uint, got {other:?}"),
    }
}

/// Seeded drive death → serviced flight recorder → facts read back
/// from the bundle. Mirrors the golden test in
/// `crates/wafl/tests/telemetry.rs`, but records the outcome instead
/// of asserting, so `--validate` can re-check the committed record.
fn run_blackbox(root: &std::path::Path) -> BlackboxCheck {
    let dir = root.join("blackbox");
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 14,
        ..FsConfig::default()
    };
    // Drive 1 dies on its 2nd whole-run op — early enough that a small
    // CP reaches it, tolerated by single-parity RAID.
    let fs = Filesystem::with_faults(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 1024)
            .build(),
        DriveKind::Ssd,
        FaultSpec {
            seed: 0x7e1e,
            fail_drive: Some(1),
            fail_drive_after_ops: 1,
            ..FaultSpec::default()
        },
        RetryPolicy::default(),
        ExecMode::Inline,
    );
    let bb = Blackbox::new(RegistrySource::Global, BlackboxConfig::new(&dir));
    let io = Arc::clone(fs.io());
    bb.add_section(
        "fault_snapshot",
        Box::new(move || {
            let s = serde_json::to_string(&io.fault_snapshot()).unwrap();
            serde_json::from_str(&s).unwrap()
        }),
    );

    fs.create_volume(VolumeId(0));
    for file in 0..4u64 {
        fs.create_file(VolumeId(0), FileId(file));
        for fbn in 0..16 {
            fs.write(VolumeId(0), FileId(file), fbn, stamp(file, fbn, 1));
        }
    }
    fs.run_cp();

    let path = bb
        .service()
        .expect("bundle writes")
        .expect("drive death arms the recorder");
    let doc: Value = serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();

    let Value::Seq(board) = field(&doc, "triggers") else {
        panic!("bundle: triggers must be an array")
    };
    let slot = board
        .iter()
        .find(|t| *field(t, "name") == Value::Str("drive_offline".into()))
        .expect("drive_offline board slot");
    let Value::Seq(threads) = field(&doc, "threads") else {
        panic!("bundle: threads must be an array")
    };
    let events_total = threads
        .iter()
        .map(|t| {
            let Value::Seq(events) = field(t, "events") else {
                panic!("bundle: events must be an array")
            };
            events.len() as u64
        })
        .sum();
    let schema = match field(&doc, "schema") {
        Value::Str(s) => s.clone(),
        other => panic!("bundle: schema must be a string, got {other:?}"),
    };
    let reason = match field(&doc, "reason") {
        Value::Str(s) => s.clone(),
        other => panic!("bundle: reason must be a string, got {other:?}"),
    };
    let check = BlackboxCheck {
        bundle_schema: schema,
        reason,
        drive_offline_fires: uint(field(slot, "fires")),
        dead_drive: uint(field(slot, "last_arg")),
        drives_offline: uint(field(
            field(field(&doc, "sections"), "fault_snapshot"),
            "drives_offline",
        )),
        threads: threads.len() as u64,
        events_total,
        dumps_counted: uint(field(
            field(field(&doc, "metrics"), "counters"),
            "telemetry_blackbox_dumps",
        )),
    };
    let _ = std::fs::remove_dir_all(&dir);
    check
}

/// Dirty-buffer shape of the A/B runs — the `exp_put_convoy` shape.
fn ab_shape(quick: bool) -> (u64, u64) {
    if quick {
        (24, 128)
    } else {
        (120, 256)
    }
}

/// One cleaner-pool run at [`AB_CLEANERS`] threads (the
/// `exp_put_convoy` workload); returns buffers/s.
fn run_convoy(quick: bool) -> f64 {
    let geo = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(8, 1, 8192)
            .build(),
    );
    let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
    let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
    let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
    let infra_pool = Arc::new(WaffinityPool::new(Arc::clone(&topo), INFRA_THREADS));
    let executor = Arc::new(PoolExecutor::new(Arc::clone(&infra_pool))) as Arc<dyn Executor>;
    let alloc = Allocator::new(AllocConfig::with_chunk(64), aggmap, io, executor, topo, 0);

    let cfg = CleanerConfig {
        threads: AB_CLEANERS,
        batching: false,
        get_batch: 4,
        ..CleanerConfig::default()
    };
    let pool = CleanerPool::new(Arc::clone(&alloc), cfg);

    let vol = Volume::new(VolumeId(0), 0, 1 << 20);
    let (files, bufs_per_file) = ab_shape(quick);
    let frozen: Vec<_> = (0..files)
        .map(|f| {
            let file = FileId(1 + f);
            vol.create_file(file);
            let buffers: Vec<DirtyBuffer> = (0..bufs_per_file)
                .map(|fbn| DirtyBuffer::first_write(fbn, stamp(1 + f, fbn, 1)))
                .collect();
            (Arc::clone(&vol), file, buffers)
        })
        .collect();
    let items = partition_work(frozen, &cfg);

    let t0 = Instant::now();
    let results = pool.clean_all(items);
    alloc.drain();
    let wall_ns = t0.elapsed().as_nanos().max(1) as u64;
    let buffers: u64 = results.iter().map(|r| r.cleaned.len() as u64).sum();
    assert_eq!(buffers, files * bufs_per_file, "every buffer cleaned");
    pool.shutdown();
    buffers as f64 / (wall_ns as f64 / 1e9)
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

/// Aggregate buffers/s over repeated convoy runs until `budget` wall
/// time has elapsed. A single run finishes in milliseconds — far
/// inside one sampling interval — so each A/B arm must span several
/// intervals for the sampler to be *running* during the measurement.
fn run_convoy_for(quick: bool, budget: Duration) -> f64 {
    let t0 = Instant::now();
    let mut buffers = 0u64;
    let (files, bufs_per_file) = ab_shape(quick);
    while t0.elapsed() < budget {
        run_convoy(quick);
        buffers += files * bufs_per_file;
    }
    buffers as f64 / t0.elapsed().as_secs_f64()
}

/// Sampler-off vs sampler-on throughput on the cleaner-pool workload,
/// the on-arm under a live [`SamplerThread`] at the default interval
/// snapshotting the global registry (populated by the CP sweep that
/// ran first). One discarded warm-up run, then [`AB_REPS`] interleaved
/// off/on pairs compared by median: interleaving cancels drift in the
/// machine's background load and the median sheds the outliers that
/// would otherwise dominate a one-shot wall clock.
fn run_overhead(quick: bool, cpus: u64) -> SamplerOverhead {
    let reps = if quick { 1 } else { AB_REPS };
    let budget = if quick {
        Duration::from_millis(250)
    } else {
        Duration::from_millis(1200)
    };
    // Ring recording off for the whole A/B (no-op without the trace
    // feature): its overhead is exp_put_convoy's gate, and every traced
    // pool spawn would otherwise retain fresh per-thread rings, slowing
    // the process monotonically and drowning the sampler's cost.
    obs::trace::set_recording(false);
    let _ = run_convoy(quick); // warm-up (page cache, allocator pools)

    let cfg = SamplerConfig::default();
    let interval_ms = cfg.interval.as_millis() as u64;
    let sampler = Arc::new(Sampler::new(RegistrySource::Global, cfg));
    let (mut offs, mut ons) = (Vec::new(), Vec::new());
    for i in 0..reps {
        // Alternate which arm goes first: every traced run leaves
        // per-thread rings registered, so the process slows slightly
        // over the A/B's lifetime — alternation cancels that drift
        // instead of billing it all to whichever arm runs second.
        let measure_on = || {
            let mut thread = SamplerThread::spawn(Arc::clone(&sampler), None);
            let r = run_convoy_for(quick, budget);
            thread.stop();
            r
        };
        if i % 2 == 0 {
            offs.push(run_convoy_for(quick, budget));
            ons.push(measure_on());
        } else {
            ons.push(measure_on());
            offs.push(run_convoy_for(quick, budget));
        }
    }
    obs::trace::set_recording(true);
    // Short workloads can finish inside one interval; fold a final tick
    // so the record always carries a non-empty ring.
    sampler.sample();
    let (off, on) = (median(offs), median(ons));

    SamplerOverhead {
        cleaners: AB_CLEANERS as u64,
        interval_ms,
        off_buffers_per_sec: off,
        on_buffers_per_sec: on,
        overhead_pct: 100.0 * (off - on) / off.max(f64::MIN_POSITIVE),
        ticks: sampler.ticks().len() as u64,
        gate_enforced: !quick && cpus >= 2,
    }
}

fn run(quick: bool, cpus: u64) -> TelemetryDoc {
    let root = std::env::temp_dir().join(format!("wafl-exp-telemetry-{}", std::process::id()));
    let _ = std::fs::create_dir_all(&root);

    // CP sweep first: it populates the global registry the blackbox
    // bundle snapshots and the sampler thread ticks over.
    let (depths, cps) = cp_shape(quick);
    let cp_depths: Vec<CpDepthPoint> = depths
        .iter()
        .map(|&d| profile_depth(&root, d, cps))
        .collect();
    let blackbox = run_blackbox(&root);
    let sampler = run_overhead(quick, cpus);
    let _ = std::fs::remove_dir_all(&root);

    TelemetryDoc {
        schema: SCHEMA.to_string(),
        bench: "exp_telemetry".to_string(),
        quick,
        trace_build: obs::ENABLED,
        cpus,
        cp_depths,
        blackbox,
        sampler,
    }
}

/// Schema + gates. Structural gates (coverage, bundle consistency)
/// hold on quick runs too; the sampler budget is enforced only where
/// the wall clock means anything (full run, ≥ 2 cpus).
fn validate(doc: &TelemetryDoc) -> Result<(), String> {
    if doc.schema != SCHEMA {
        return Err(format!("schema: expected {SCHEMA:?}, got {:?}", doc.schema));
    }
    if doc.cp_depths.is_empty() || doc.cp_depths[0].depth != 0 {
        return Err("cp sweep must start at the synchronous depth-0 baseline".into());
    }
    if !doc.cp_depths.iter().any(|p| p.depth >= 8) {
        return Err("cp sweep never reached depth 8".into());
    }
    for p in &doc.cp_depths {
        if p.cps == 0 {
            return Err(format!("depth {}: no CPs measured", p.depth));
        }
        if p.phases.len() != CP_PHASE_NAMES.len() {
            return Err(format!(
                "depth {}: {} phase rows, expected {}",
                p.depth,
                p.phases.len(),
                CP_PHASE_NAMES.len()
            ));
        }
        let sum: u64 = p.phases.iter().map(|r| r.total_ns).sum();
        if sum == 0 {
            return Err(format!("depth {}: no phase time attributed", p.depth));
        }
        let mut best = ("", 0u64);
        for (row, name) in p.phases.iter().zip(CP_PHASE_NAMES) {
            if row.name != name {
                return Err(format!(
                    "depth {}: phase row {:?} out of pipeline order (expected {name:?})",
                    p.depth, row.name
                ));
            }
            let expect = row.total_ns as f64 / sum as f64;
            if !row.fraction.is_finite() || (row.fraction - expect).abs() > 1e-6 {
                return Err(format!(
                    "depth {}: phase {:?} fraction {} inconsistent ({expect})",
                    p.depth, row.name, row.fraction
                ));
            }
            if row.total_ns > best.1 {
                best = (name, row.total_ns);
            }
        }
        if p.binding_phase != best.0 {
            return Err(format!(
                "depth {}: binding_phase {:?} but {:?} holds the most time",
                p.depth, p.binding_phase, best.0
            ));
        }
        // The profiler's accounting gate: ≥ 95% of each CP's wall time
        // lands in a named phase.
        if !p.min_coverage.is_finite() || p.min_coverage < COVERAGE_FLOOR {
            return Err(format!(
                "depth {}: worst phase coverage {:.4} under the {COVERAGE_FLOOR} floor",
                p.depth, p.min_coverage
            ));
        }
        if p.min_coverage > 1.0 + 1e-9 {
            return Err(format!(
                "depth {}: coverage {} exceeds 1 (phases must nest in total_ns)",
                p.depth, p.min_coverage
            ));
        }
    }

    let b = &doc.blackbox;
    if b.bundle_schema != obs::BLACKBOX_SCHEMA {
        return Err(format!(
            "blackbox: bundle schema {:?}, expected {:?}",
            b.bundle_schema,
            obs::BLACKBOX_SCHEMA
        ));
    }
    if b.reason != "drive_offline" {
        return Err(format!(
            "blackbox: reason {:?}, expected the drive-death trigger",
            b.reason
        ));
    }
    if b.drive_offline_fires == 0 {
        return Err("blackbox: drive_offline never fired".into());
    }
    if b.dead_drive != 1 || b.drives_offline != 1 {
        return Err(format!(
            "blackbox: seeded death of drive 1 not recorded (arg {}, offline {})",
            b.dead_drive, b.drives_offline
        ));
    }
    if b.dumps_counted == 0 {
        return Err("blackbox: bundled metrics missed the dump counter".into());
    }
    if doc.trace_build && (b.threads == 0 || b.events_total == 0) {
        return Err("blackbox: trace build must capture per-thread rings".into());
    }
    if !doc.trace_build && b.threads != 0 {
        return Err("blackbox: thread rings claimed without the trace feature".into());
    }

    let s = &doc.sampler;
    if s.off_buffers_per_sec <= 0.0 || s.on_buffers_per_sec <= 0.0 {
        return Err("sampler: non-positive throughput".into());
    }
    let expect = 100.0 * (s.off_buffers_per_sec - s.on_buffers_per_sec)
        / s.off_buffers_per_sec.max(f64::MIN_POSITIVE);
    if !s.overhead_pct.is_finite() || (s.overhead_pct - expect).abs() > 1e-6 {
        return Err(format!(
            "sampler: overhead_pct {} inconsistent ({expect})",
            s.overhead_pct
        ));
    }
    if s.ticks == 0 {
        return Err("sampler: ring never ticked during the on-run".into());
    }
    if s.interval_ms == 0 {
        return Err("sampler: degenerate interval".into());
    }
    if s.gate_enforced != (!doc.quick && doc.cpus >= 2) {
        return Err("sampler: gate_enforced inconsistent with quick/cpus".into());
    }
    if s.gate_enforced && s.overhead_pct > OVERHEAD_BUDGET_PCT {
        return Err(format!(
            "sampler overhead {:.2}% exceeds the {OVERHEAD_BUDGET_PCT}% always-on budget",
            s.overhead_pct
        ));
    }
    Ok(())
}

/// Directory receiving `BENCH_telemetry.json`: `WAFL_BENCH_ROOT` if
/// set (the CI smoke run points it at a temp dir), else the repo root.
fn bench_root() -> std::path::PathBuf {
    match std::env::var_os("WAFL_BENCH_ROOT") {
        Some(d) => d.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

fn run_validate(path: &str) -> ! {
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_telemetry: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: TelemetryDoc = match serde_json::from_str(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("exp_telemetry: {path} does not parse as {SCHEMA}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_telemetry: {path} invalid: {msg}");
        std::process::exit(1);
    }
    println!(
        "{path}: valid {SCHEMA} ({} depths, binding {}, sampler {:+.2}%{})",
        doc.cp_depths.len(),
        doc.cp_depths
            .iter()
            .map(|p| format!("{}@{}", p.binding_phase, p.depth))
            .collect::<Vec<_>>()
            .join("/"),
        doc.sampler.overhead_pct,
        if doc.sampler.gate_enforced {
            " gated"
        } else {
            " reported-only"
        }
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        match args.get(2) {
            Some(path) => run_validate(path),
            None => {
                eprintln!("usage: exp_telemetry [--validate <path>]");
                std::process::exit(2);
            }
        }
    }

    let quick = std::env::var_os("WAFL_BENCH_QUICK").is_some();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    let doc = run(quick, cpus);
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_telemetry: produced record fails validation: {msg}");
        std::process::exit(1);
    }

    let mut t = FigureTable::new(
        "exp_telemetry",
        "continuous telemetry: CP phase attribution, blackbox post-mortem, sampler overhead",
    );
    for p in &doc.cp_depths {
        t.row_measured(
            format!("phase coverage (worst CP) @depth {}", p.depth),
            p.min_coverage,
            "frac",
        );
        let bind = p.phases.iter().max_by_key(|r| r.total_ns).unwrap();
        t.row_measured(
            format!("binding phase share ({}) @depth {}", bind.name, p.depth),
            bind.fraction,
            "frac",
        );
        println!(
            "depth {:>2}: binding phase {:10} ({:.1}% of phase time, coverage ≥ {:.3})",
            p.depth,
            p.binding_phase,
            100.0 * bind.fraction,
            p.min_coverage
        );
    }
    t.row_measured(
        "blackbox threads captured",
        doc.blackbox.threads as f64,
        "count",
    );
    t.row_measured(
        "blackbox events bundled",
        doc.blackbox.events_total as f64,
        "count",
    );
    t.row_measured("sampler overhead", doc.sampler.overhead_pct, "%");
    t.row_measured(
        "sampler ticks during A/B",
        doc.sampler.ticks as f64,
        "count",
    );
    if doc.sampler.gate_enforced {
        println!(
            "sampler overhead {:+.2}% (budget {OVERHEAD_BUDGET_PCT}%, enforced)",
            doc.sampler.overhead_pct
        );
    } else {
        println!(
            "NOTICE: sampler budget reported-only ({}; overhead {:+.2}%)",
            if doc.quick {
                "quick run"
            } else {
                "single-core box — wall clocks measure the scheduler"
            },
            doc.sampler.overhead_pct
        );
    }

    let root = bench_root();
    let _ = std::fs::create_dir_all(&root);
    let path = root.join("BENCH_telemetry.json");
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
    emit(&t);
}
