//! Calibration probe: prints raw permutation numbers for both workloads.
use wafl_simsrv::scenario::permutation_sweep;
use wafl_simsrv::{SimConfig, WorkloadKind};

fn main() {
    for (name, wl) in [
        ("seq", WorkloadKind::sequential_write()),
        ("rand", WorkloadKind::random_write()),
    ] {
        let mut cfg = SimConfig::paper_platform(wl);
        cfg.duration_ns = 1_000_000_000;
        cfg.warmup_ns = 200_000_000;
        let rows = permutation_sweep(&cfg, wafl_simsrv::CleanerSetting::dynamic_default(8));
        let base = rows[0].result.throughput_ops;
        println!("== {name} ==");
        for r in &rows {
            let res = &r.result;
            println!(
                "{:<34} tput {:>10.0} gain {:>6.1}%  cl {:>5.2}c inf {:>5.2}c cli {:>5.2}c tot {:>5.2}c stalls {} refills {} msgs {}",
                r.label(),
                res.throughput_ops,
                (res.throughput_ops / base - 1.0) * 100.0,
                res.usage.cleaner_cores(res.measured_ns),
                res.usage.infra_cores(res.measured_ns),
                (res.usage.client_msg_ns + res.usage.protocol_ns) as f64 / res.measured_ns as f64,
                res.total_cores(),
                res.bucket_stalls, res.refills, res.cleaner_messages,
            );
        }
    }
}
