//! §V-C: batched inode cleaning. An NFSv3-style mix over a large number
//! of small files, with and without batching.
//!
//! Paper (20-core SAS testbed): batching improves throughput from
//! 21.2 K ops/s to 22.0 K ops/s per client (+3.8 %) and reduces latency
//! from 6.7 ms to 6.5 ms (−3 %).

use wafl_bench::{emit, platform};
use wafl_simsrv::scenario::batching_comparison;
use wafl_simsrv::{FigureTable, WorkloadKind};

fn main() {
    let mut cfg = platform(WorkloadKind::nfs_mix());
    // SAS-drive testbed: slower media, latency-visible reads.
    cfg.costs.read_media_latency = 900_000;
    let (on, off) = batching_comparison(&cfg);

    let mut t = FigureTable::new(
        "table_batching",
        "NFS mix: batched inode cleaning on vs off",
    );
    t.row(
        "throughput gain from batching",
        3.8,
        (on.throughput_ops / off.throughput_ops - 1.0) * 100.0,
        "%",
    );
    t.row(
        "latency reduction from batching",
        3.0,
        (1.0 - on.latency.mean_ns as f64 / off.latency.mean_ns as f64) * 100.0,
        "%",
    );
    t.row_measured("throughput batched", on.throughput_ops, "ops/s");
    t.row_measured("throughput unbatched", off.throughput_ops, "ops/s");
    t.row_measured("latency batched", on.latency.mean_ns as f64 / 1e6, "ms");
    t.row_measured("latency unbatched", off.latency.mean_ns as f64 / 1e6, "ms");
    t.row_measured(
        "cleaner messages batched",
        on.cleaner_messages as f64,
        "count",
    );
    t.row_measured(
        "cleaner messages unbatched",
        off.cleaner_messages as f64,
        "count",
    );
    emit(&t);
}
