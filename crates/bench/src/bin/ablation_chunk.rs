//! Ablation: bucket chunk size (§IV-C). A chunk of 1 degenerates to
//! per-VBN allocation — the design the paper argues against — paying full
//! synchronization and refill overhead per block and destroying
//! contiguity; larger chunks amortize both.

use wafl_bench::{emit, platform};
use wafl_simsrv::scenario::chunk_sweep;
use wafl_simsrv::{FigureTable, WorkloadKind};

fn main() {
    let cfg = platform(WorkloadKind::sequential_write());
    let rows = chunk_sweep(&cfg, &[1, 8, 64, 256]);
    let mut t = FigureTable::new(
        "ablation_chunk",
        "bucket chunk-size sweep (sequential write, full parallelization)",
    );
    let base = rows
        .iter()
        .find(|(c, _)| *c == 64)
        .map(|(_, r)| r.throughput_ops)
        .unwrap();
    for (chunk, r) in &rows {
        t.row_measured(
            format!("throughput @chunk {chunk}"),
            r.throughput_ops,
            "ops/s",
        );
        t.row_measured(
            format!("relative to chunk-64 @chunk {chunk}"),
            r.throughput_ops / base * 100.0,
            "%",
        );
        t.row_measured(
            format!("infra cores @chunk {chunk}"),
            r.usage.infra_cores(r.measured_ns),
            "cores",
        );
    }
    emit(&t);
}
