//! Figure 9: throughput per client vs latency at increasing levels of
//! client load, for static cleaner counts 1–4 and dynamic tuning, on the
//! sequential-write configuration (§V-B). "Lower and to the right is
//! better."
//!
//! Paper: peak throughput is achieved with four threads, lower off-peak
//! latency with three; dynamic tuning gets both.

use wafl_bench::{emit, platform};
use wafl_simsrv::scenario::knee_sweep;
use wafl_simsrv::{CleanerSetting, FigureTable, WorkloadKind};

fn main() {
    let cfg = platform(WorkloadKind::sequential_write());
    let settings = vec![
        ("1".to_string(), CleanerSetting::Fixed(1)),
        ("2".to_string(), CleanerSetting::Fixed(2)),
        ("3".to_string(), CleanerSetting::Fixed(3)),
        ("4".to_string(), CleanerSetting::Fixed(4)),
        ("dynamic".to_string(), CleanerSetting::dynamic_default(4)),
    ];
    let levels = [2u32, 4, 8, 16, 24, 32, 48];
    let rows = knee_sweep(&cfg, &settings, &levels);

    let mut t = FigureTable::new(
        "fig9",
        "sequential write: throughput vs latency curves per cleaner setting",
    );
    for r in &rows {
        for p in &r.curve {
            t.row_measured(
                format!("{} cleaners @{} clients: tput / latency", r.setting, p.load),
                p.throughput_ops,
                format!("ops/s @ {:.2} ms", p.latency_ns as f64 / 1e6),
            );
        }
    }
    let peak4 = rows[3].peak_throughput;
    let peak_dyn = rows[4].peak_throughput;
    t.row_measured("4-thread peak", peak4, "ops/s");
    t.row_measured("dynamic peak", peak_dyn, "ops/s");
    t.row_measured(
        "dynamic peak vs 4-thread peak",
        (peak_dyn / peak4 - 1.0) * 100.0,
        "%",
    );
    // Off-peak latency comparison (paper: fewer threads win off-peak).
    let off_idx = 1; // 4 clients
    t.row_measured(
        "off-peak latency, 4 threads",
        rows[3].curve[off_idx].latency_ns as f64 / 1e6,
        "ms",
    );
    t.row_measured(
        "off-peak latency, dynamic",
        rows[4].curve[off_idx].latency_ns as f64 / 1e6,
        "ms",
    );
    emit(&t);
}
