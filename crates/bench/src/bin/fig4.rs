//! Figure 4: sequential-write throughput per client and write-allocation
//! core usage for the four permutations of {parallel cleaner threads,
//! parallel infrastructure} (§V-A1).
//!
//! Paper-reported values on the 20-core all-SSD platform:
//! infrastructure-only +7 %, cleaners-only +82 %, both +274 %; at full
//! parallelization write allocation uses ≈6.23 cores (2.35 infrastructure
//! + 3.88 cleaner threads) and the system saturates all cores.

use wafl_bench::{emit, gain_pct, platform};
use wafl_simsrv::scenario::permutation_sweep;
use wafl_simsrv::{CleanerSetting, FigureTable, WorkloadKind};

fn main() {
    let cfg = platform(WorkloadKind::sequential_write());
    let rows = permutation_sweep(&cfg, CleanerSetting::dynamic_default(8));
    let base = rows[0].result.throughput_ops;

    let mut t = FigureTable::new(
        "fig4",
        "sequential write: parallelization permutations (gain vs serial/serial)",
    );
    t.row(
        "serial-cleaners/parallel-infra gain",
        7.0,
        gain_pct(rows[1].result.throughput_ops, base),
        "%",
    );
    t.row(
        "parallel-cleaners/serial-infra gain",
        82.0,
        gain_pct(rows[2].result.throughput_ops, base),
        "%",
    );
    t.row(
        "parallel/parallel gain",
        274.0,
        gain_pct(rows[3].result.throughput_ops, base),
        "%",
    );
    let full = &rows[3].result;
    t.row(
        "cleaner cores at full parallelization",
        3.88,
        full.usage.cleaner_cores(full.measured_ns),
        "cores",
    );
    t.row(
        "infrastructure cores at full parallelization",
        2.35,
        full.usage.infra_cores(full.measured_ns),
        "cores",
    );
    t.row(
        "write-allocation cores at full parallelization",
        6.23,
        full.write_alloc_cores(),
        "cores",
    );
    t.row(
        "total cores at full parallelization",
        20.0,
        full.total_cores(),
        "cores",
    );
    for r in &rows {
        t.row_measured(
            format!("throughput {} ", r.label()),
            r.result.throughput_ops,
            "ops/s",
        );
        t.row_measured(
            format!("throughput/client {} ", r.label()),
            r.result.throughput_per_client,
            "ops/s",
        );
    }
    emit(&t);
}
