//! Ablation: collective vs immediate bucket reinsertion (§IV-D), on the
//! *real* allocator stack (not the simulator).
//!
//! The paper's equal-progress rule — buckets re-enter the cache only when
//! every drive's bucket has been refilled — keeps all drives advancing in
//! lock step, which maximizes full-stripe writes. Immediate reinsertion
//! lets consumers drain one drive ahead of the others; this binary
//! measures the resulting full-stripe ratio drop under an adversarial
//! consumption pattern that prefers low-numbered drives.

use alligator::{AllocConfig, Allocator, InlineExecutor, ReinsertPolicy};
use std::sync::Arc;
use waffinity::{Model, Topology};
use wafl_bench::emit;
use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine};
use wafl_metafile::AggregateMap;
use wafl_simsrv::FigureTable;

fn run(policy: ReinsertPolicy) -> (f64, u64) {
    let geo = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(256)
            .raid_group(4, 1, 1 << 14)
            .build(),
    );
    let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
    let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
    let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
    let mut cfg = AllocConfig::with_chunk(64);
    cfg.reinsert = policy;
    let alloc = Allocator::new(
        cfg,
        aggmap,
        Arc::clone(&io),
        Arc::new(InlineExecutor),
        topo,
        0,
    );

    // A single cleaner consuming buckets fully, in GET order. Under the
    // collective policy every refill round shares one tetris, so complete
    // rounds produce complete stripes; under immediate per-drive refills
    // each bucket's write I/O covers a single drive.
    let mut stamp = 1u128;
    for _ in 0..200 {
        let Some(mut b) = alloc.get_bucket() else {
            break;
        };
        while b.use_vbn(stamp).is_some() {
            stamp += 1;
        }
        alloc.put_bucket(b);
        alloc.drain();
    }
    alloc.drain();
    let ratio = io.full_stripe_ratio().unwrap_or(0.0);
    let parity_reads = io.counters().snapshot().parity_reads;
    (ratio, parity_reads)
}

fn main() {
    let (coll_ratio, coll_parity) = run(ReinsertPolicy::Collective);
    let (imm_ratio, imm_parity) = run(ReinsertPolicy::Immediate);
    let mut t = FigureTable::new(
        "ablation_reinsert",
        "collective (equal-progress) vs immediate bucket reinsertion — real allocator",
    );
    t.row_measured("full-stripe ratio, collective", coll_ratio * 100.0, "%");
    t.row_measured("full-stripe ratio, immediate", imm_ratio * 100.0, "%");
    t.row_measured("parity reads, collective", coll_parity as f64, "blocks");
    t.row_measured("parity reads, immediate", imm_parity as f64, "blocks");
    emit(&t);
}
