//! Extension experiment — online parallel scrub over the Waffinity
//! pool. The scrubber walks (RAID group × AA) units as Range-affinity
//! messages, cross-checking media stamps, parity, the active bitmap,
//! and the AA free counters against the committed buffer trees, and
//! repairs what redundancy can vouch for (see `wafl::scrub`). This
//! bench records:
//!
//! - a 1→16 scrub-worker sweep of scan throughput on a pooled
//!   file system (wall-clock, machine-dependent: no perf gate);
//! - a detection record: one seeded instance of every corruption class
//!   must be detected, repaired, and re-verified, and a re-scan must
//!   come back clean (gated at 100 % detection, zero unrepaired);
//! - a clean-image record: zero findings, zero false positives (gated);
//! - a foreground-interference record: client write + CP throughput
//!   with a scrub pass looping alongside vs undisturbed (gated
//!   generously on non-quick runs; wall-clock otherwise);
//! - a resume record: a budgeted slice plus a resumed slice must cover
//!   the pass exactly, without re-reporting repaired findings (gated).
//!
//! Outputs `BENCH_scrub.json` (schema `wafl.scrub.v1`) at the repo root
//! (override with `WAFL_BENCH_ROOT`) and the standard `results/` table.
//! `--smoke` shrinks the sweep; `--validate <path>` re-checks a written
//! record's schema and gates (exit 1 on violation).

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use serde::{Deserialize, Serialize};
use wafl::scrub::{FindingState, ScrubCheckpointStore, ScrubConfig};
use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_bench::emit;
use wafl_blockdev::{stamp, Dbn, DriveKind, GeometryBuilder, Vbn};
use wafl_simsrv::FigureTable;

/// Schema tag for `BENCH_scrub.json`.
const SCHEMA: &str = "wafl.scrub.v1";

/// Scrub worker counts swept (the ISSUE's 1→16 range).
const WORKERS: [usize; 5] = [1, 2, 4, 8, 16];
const WORKERS_QUICK: [usize; 2] = [1, 4];

/// Foreground throughput retained while a scrub loops alongside must
/// stay above this on full runs. Deliberately generous: the gate is
/// "the scrubber does not starve the foreground", not a speed claim.
const INTERFERENCE_FLOOR: f64 = 0.20;

/// One point of the worker sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScanPoint {
    /// Scrub workers (wave width over the Waffinity pool).
    workers: u64,
    /// Wall-clock time of the full pass, milliseconds.
    scan_ms: f64,
    /// Scrub units in the pass.
    units: u64,
    /// Blocks examined (data + parity stripes + bitmap words).
    blocks: u64,
    /// Units scanned per second.
    units_per_sec: f64,
}

/// Seeded-corruption detection record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct DetectionRecord {
    /// Corruption instances seeded (one per class).
    seeded: u64,
    /// Seeded instances the scrub reported.
    detected: u64,
    /// `detected / seeded`.
    detection_rate: f64,
    /// Findings (seeds + physically entailed collaterals) repaired and
    /// re-verified.
    reverified: u64,
    /// Findings the repair engine gave up on (must be 0).
    unrepairable: u64,
    /// Did the post-repair re-scan come back clean?
    rescan_clean: bool,
}

/// Clean-image record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CleanRecord {
    /// Findings on an uncorrupted image (must be 0).
    findings: u64,
    /// Quarantine-dismissed candidates (informational).
    false_alarms: u64,
    /// Blocks examined.
    blocks: u64,
}

/// Foreground-interference record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct InterferenceRecord {
    /// Foreground write+CP ops/s with no scrub running.
    baseline_ops_per_sec: f64,
    /// The same workload with a scrub pass looping alongside.
    scrubbed_ops_per_sec: f64,
    /// `scrubbed / baseline`.
    retained: f64,
    /// Scrub passes completed during the workload window.
    scrub_passes: u64,
    /// Pressure-gate pause episodes across those passes.
    scrub_pauses: u64,
}

/// Checkpoint/resume record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ResumeRecord {
    /// Unit budget of the first slice.
    budget_units: u64,
    /// Units scanned by the first slice.
    first_scanned: u64,
    /// Units scanned by the resumed slice.
    second_scanned: u64,
    /// Units in the whole pass.
    total_units: u64,
    /// Did the second slice resume from the committed cursor?
    resumed_ok: bool,
    /// Findings re-reported after already being repaired (must be 0).
    rereported: u64,
}

/// The persisted record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ScrubDoc {
    /// Schema tag (`wafl.scrub.v1`).
    schema: String,
    /// Producing binary.
    bench: String,
    /// True under `--smoke` / `WAFL_BENCH_QUICK` (smaller sweep; the
    /// wall-clock-sensitive gate is skipped).
    quick: bool,
    /// Worker counts swept.
    workers: Vec<u64>,
    /// One point per worker count.
    scan: Vec<ScanPoint>,
    /// Seeded-corruption detection (gated).
    detection: DetectionRecord,
    /// Clean-image false-positive check (gated).
    clean: CleanRecord,
    /// Foreground interference (gated on full runs).
    interference: InterferenceRecord,
    /// Checkpoint/resume behavior (gated).
    resume: ResumeRecord,
}

/// Two RAID groups of (3 data + 1 parity) × `blocks` blocks, 64-stripe
/// AAs, running the Waffinity pool when `pool` is set.
fn mk_fs(pool: bool, blocks: u64) -> Filesystem {
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 16,
        ..FsConfig::default()
    };
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, blocks)
            .raid_group(3, 1, blocks)
            .build(),
        DriveKind::Ssd,
        if pool {
            ExecMode::Pool(4)
        } else {
            ExecMode::Inline
        },
    );
    fs.create_volume(VolumeId(0));
    fs
}

/// Write `files` × `fbns` blocks and commit a CP.
fn fill(fs: &Filesystem, files: u64, fbns: u64) {
    for f in 0..files {
        fs.create_file(VolumeId(0), FileId(f));
        for fbn in 0..fbns {
            fs.write(VolumeId(0), FileId(f), fbn, stamp(f, fbn, 1));
        }
    }
    fs.run_cp();
}

/// `(vbn, expected stamp)` for every committed file block.
fn file_refs(fs: &Filesystem) -> Vec<(u64, u128)> {
    let img = fs.committed_image().expect("CP committed");
    let mut refs = Vec::new();
    for vi in &img.volumes {
        for (_f, blocks) in &vi.files {
            for (_fbn, ptr) in blocks {
                refs.push((ptr.pvbn.0, ptr.stamp));
            }
        }
    }
    refs.sort_unstable();
    refs
}

/// Seed one instance of every corruption class; returns the keys the
/// scrub must report.
fn seed_all_classes(fs: &Filesystem) -> Vec<String> {
    let geo = fs.io().geometry();
    let aggmap = fs.allocator().infra().aggmap();
    let refs = file_refs(fs);
    let referenced: BTreeSet<u64> = refs.iter().map(|&(v, _)| v).collect();
    let mut required = Vec::new();

    // Media bit-flip on a referenced block.
    let (flip_vbn, flip_stamp) = refs[refs.len() / 3];
    let loc = geo.locate(Vbn(flip_vbn)).unwrap();
    fs.io().raid_group(loc.rg).data_drives()[loc.drive_in_rg as usize]
        .repair_write(loc.dbn, &[flip_stamp ^ 0xF00D]);
    required.push(format!("stamp:vbn={flip_vbn}"));

    // Bad parity on a fully referenced stripe (not the flipped one).
    'parity: for rg in geo.rg_ids() {
        let group = fs.io().raid_group(rg);
        let drives = group.data_drives().len() as u32;
        'dbn: for dbn in 0..group.geometry().blocks_per_drive {
            if (rg, Dbn(dbn)) == (loc.rg, loc.dbn) {
                continue;
            }
            for d in 0..drives {
                if !referenced.contains(&geo.vbn_at(rg, d, Dbn(dbn)).0) {
                    continue 'dbn;
                }
            }
            let cur = group.parity_drives()[0].peek(Dbn(dbn));
            group.parity_drives()[0].repair_write(Dbn(dbn), &[cur ^ 0xBAD]);
            required.push(format!("parity:rg={}:dbn={dbn}", rg.0));
            break 'parity;
        }
    }

    // Stale active bit on a free, unreferenced block.
    let stale_vbn = (0..geo.total_vbns())
        .rev()
        .find(|v| !referenced.contains(v) && !aggmap.is_used(Vbn(*v)))
        .expect("free block exists");
    aggmap.active_map().reserve(stale_vbn).expect("was free");
    required.push(format!("stalebit:vbn={stale_vbn}"));

    // Missing active bit on a referenced block (different AA than the
    // stale seed so their collateral skews stay distinct).
    let stale_aa = geo.aa_of(Vbn(stale_vbn));
    let (miss_vbn, _) = refs
        .iter()
        .find(|&&(v, _)| geo.aa_of(Vbn(v)) != stale_aa)
        .copied()
        .unwrap_or(refs[0]);
    aggmap.active_map().free(miss_vbn).expect("was used");
    required.push(format!("missbit:vbn={miss_vbn}"));

    // Refcount skew on an AA with no other seed in it.
    let dirty: BTreeSet<_> = [geo.aa_of(Vbn(flip_vbn)), stale_aa, geo.aa_of(Vbn(miss_vbn))]
        .into_iter()
        .collect();
    let skew_aa = geo
        .rg_ids()
        .flat_map(|rg| (0..geo.aa_count(rg)).map(move |i| wafl_blockdev::AaId { rg, index: i }))
        .find(|aa| !dirty.contains(aa))
        .expect("a clean AA exists");
    aggmap.aa_stats().on_release(skew_aa, 2);
    required.push(format!("aaskew:rg={}:aa={}", skew_aa.rg.0, skew_aa.index));

    required
}

/// Foreground workload: `rounds` rounds of re-writing `files` × `fbns`
/// blocks plus a CP. Returns client write ops/s.
fn foreground(fs: &Filesystem, rounds: u64, files: u64, fbns: u64) -> f64 {
    let start = Instant::now();
    let mut ops = 0u64;
    for round in 0..rounds {
        for f in 0..files {
            for fbn in 0..fbns {
                fs.write(VolumeId(0), FileId(f), fbn, stamp(f, fbn, round + 2));
                ops += 1;
            }
        }
        fs.run_cp();
    }
    ops as f64 / start.elapsed().as_secs_f64()
}

fn measure(quick: bool) -> ScrubDoc {
    let workers: Vec<usize> = if quick {
        WORKERS_QUICK.to_vec()
    } else {
        WORKERS.to_vec()
    };
    let (blocks, files, fbns) = if quick { (512, 4, 64) } else { (2048, 8, 256) };

    // Worker sweep: full pass over a pooled aggregate.
    let mut scan = Vec::new();
    for &w in &workers {
        let fs = mk_fs(true, blocks);
        fill(&fs, files, fbns);
        let store = ScrubCheckpointStore::new();
        let cfg = ScrubConfig {
            workers: w,
            ..ScrubConfig::default()
        };
        let start = Instant::now();
        let report = fs.scrub(&cfg, &store);
        let secs = start.elapsed().as_secs_f64();
        assert!(report.completed && report.is_clean());
        scan.push(ScanPoint {
            workers: w as u64,
            scan_ms: secs * 1e3,
            units: report.units_total,
            blocks: report.blocks_checked,
            units_per_sec: report.units_total as f64 / secs,
        });
    }

    // Detection: one seed of every class, then repair, then re-scan.
    let fs = mk_fs(false, 1024);
    fill(&fs, 4, 96);
    let required = seed_all_classes(&fs);
    let store = ScrubCheckpointStore::new();
    let report = fs.scrub(&ScrubConfig::default(), &store);
    let keys: BTreeSet<String> = report.findings.iter().map(|f| f.error.key()).collect();
    let detected = required.iter().filter(|k| keys.contains(*k)).count() as u64;
    let reverified = report
        .findings
        .iter()
        .filter(|f| matches!(f.state, FindingState::Repaired | FindingState::Reverified))
        .count() as u64;
    let unrepairable = report.findings.len() as u64 - reverified;
    let rescan = fs.scrub(&ScrubConfig::default(), &store);
    let detection = DetectionRecord {
        seeded: required.len() as u64,
        detected,
        detection_rate: detected as f64 / required.len() as f64,
        reverified,
        unrepairable,
        rescan_clean: rescan.is_clean(),
    };

    // Clean image: zero findings, whatever the fill.
    let fs = mk_fs(true, 1024);
    fill(&fs, 6, 128);
    let store = ScrubCheckpointStore::new();
    let report = fs.scrub(&ScrubConfig::default(), &store);
    let clean = CleanRecord {
        findings: report.findings.len() as u64,
        false_alarms: report.false_alarms,
        blocks: report.blocks_checked,
    };

    // Interference: the same foreground with and without a scrub loop.
    let rounds = if quick { 3 } else { 10 };
    let fs = mk_fs(true, blocks);
    fill(&fs, files, fbns);
    let baseline = foreground(&fs, rounds, files, fbns);
    let fs = mk_fs(true, blocks);
    fill(&fs, files, fbns);
    let stop = AtomicBool::new(false);
    let (scrubbed, passes, pauses) = std::thread::scope(|s| {
        let handle = s.spawn(|| {
            let store = ScrubCheckpointStore::new();
            let cfg = ScrubConfig::default();
            let (mut passes, mut pauses) = (0u64, 0u64);
            // ordering: shutdown flag; no data is published through it.
            while !stop.load(Ordering::Relaxed) {
                let r = fs.scrub(&cfg, &store);
                passes += u64::from(r.completed);
                pauses += r.pauses;
            }
            (passes, pauses)
        });
        let ops = foreground(&fs, rounds, files, fbns);
        // ordering: shutdown flag; no data is published through it.
        stop.store(true, Ordering::Relaxed);
        let (passes, pauses) = handle.join().expect("scrub loop");
        (ops, passes, pauses)
    });
    fs.verify_integrity().expect("scrubbed run verifies");
    let interference = InterferenceRecord {
        baseline_ops_per_sec: baseline,
        scrubbed_ops_per_sec: scrubbed,
        retained: scrubbed / baseline,
        scrub_passes: passes,
        scrub_pauses: pauses,
    };

    // Resume: budgeted slice, seeded repair, resumed remainder.
    let fs = mk_fs(false, 1024);
    fill(&fs, 4, 96);
    let refs = file_refs(&fs);
    let (early_vbn, early_stamp) = refs[0];
    let loc = fs.io().geometry().locate(Vbn(early_vbn)).unwrap();
    fs.io().raid_group(loc.rg).data_drives()[loc.drive_in_rg as usize]
        .repair_write(loc.dbn, &[early_stamp ^ 0xA5]);
    let store = ScrubCheckpointStore::new();
    let total: u64 = {
        let geo = fs.io().geometry();
        geo.rg_ids().map(|rg| geo.aa_count(rg) as u64).sum()
    };
    let budget = (total / 2).max(1);
    let first = fs.scrub(
        &ScrubConfig {
            unit_budget: Some(budget as usize),
            ..ScrubConfig::default()
        },
        &store,
    );
    let second = fs.scrub(&ScrubConfig::default(), &store);
    let early_key = format!("stamp:vbn={early_vbn}");
    let rereported = second
        .findings
        .iter()
        .filter(|f| f.error.key() == early_key)
        .count() as u64;
    let resume = ResumeRecord {
        budget_units: budget,
        first_scanned: first.units_scanned,
        second_scanned: second.units_scanned,
        total_units: total,
        resumed_ok: second.resumed_from == Some(first.units_scanned) && second.completed,
        rereported,
    };

    ScrubDoc {
        schema: SCHEMA.to_string(),
        bench: "exp_scrub".to_string(),
        quick,
        workers: workers.iter().map(|&w| w as u64).collect(),
        scan,
        detection,
        clean,
        interference,
        resume,
    }
}

/// Schema/gate check of a record. Returns the first violation.
fn validate(doc: &ScrubDoc) -> Result<(), String> {
    if doc.schema != SCHEMA {
        return Err(format!("schema: expected {SCHEMA:?}, got {:?}", doc.schema));
    }
    if doc.workers.is_empty() || !doc.workers.windows(2).all(|w| w[0] < w[1]) {
        return Err(format!(
            "workers not strictly increasing: {:?}",
            doc.workers
        ));
    }
    if !doc.quick && (doc.workers.first() != Some(&1) || doc.workers.last() != Some(&16)) {
        return Err(format!(
            "full run must sweep 1→16 workers: {:?}",
            doc.workers
        ));
    }
    if doc.scan.len() != doc.workers.len() {
        return Err(format!(
            "scan: {} points, {} workers",
            doc.scan.len(),
            doc.workers.len()
        ));
    }
    for (i, p) in doc.scan.iter().enumerate() {
        if p.workers != doc.workers[i] {
            return Err(format!(
                "scan[{i}]: workers {} ≠ {}",
                p.workers, doc.workers[i]
            ));
        }
        if p.units == 0 || p.blocks == 0 || !p.units_per_sec.is_finite() || p.units_per_sec <= 0.0 {
            return Err(format!("scan[{i}]: empty or non-positive point"));
        }
    }
    let d = &doc.detection;
    if d.seeded < 5 {
        return Err(format!("detection.seeded = {} (< 5 classes)", d.seeded));
    }
    if d.detected != d.seeded || d.detection_rate != 1.0 {
        return Err(format!(
            "detection rate {}/{} — the scrub must detect every seeded class",
            d.detected, d.seeded
        ));
    }
    if d.unrepairable != 0 {
        return Err(format!("{} findings unrepairable", d.unrepairable));
    }
    if !d.rescan_clean {
        return Err("post-repair re-scan not clean".into());
    }
    if doc.clean.findings != 0 {
        return Err(format!(
            "{} findings on a clean image (false positives)",
            doc.clean.findings
        ));
    }
    let r = &doc.resume;
    if !r.resumed_ok {
        return Err("second slice did not resume from the committed cursor".into());
    }
    if r.first_scanned + r.second_scanned != r.total_units {
        return Err(format!(
            "slices cover {} + {} ≠ {} units",
            r.first_scanned, r.second_scanned, r.total_units
        ));
    }
    if r.rereported != 0 {
        return Err(format!(
            "{} already-repaired findings re-reported after resume",
            r.rereported
        ));
    }
    let i = &doc.interference;
    if !i.retained.is_finite() || i.retained <= 0.0 {
        return Err(format!("interference.retained = {}", i.retained));
    }
    if !doc.quick && i.retained < INTERFERENCE_FLOOR {
        return Err(format!(
            "foreground retained {:.2} < {INTERFERENCE_FLOOR} while scrubbing",
            i.retained
        ));
    }
    Ok(())
}

fn run_validate(path: &str) -> ! {
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_scrub: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: ScrubDoc = match serde_json::from_str(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("exp_scrub: {path} does not parse as {SCHEMA}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_scrub: {path} invalid: {msg}");
        std::process::exit(1);
    }
    println!(
        "{path}: valid {SCHEMA} ({} worker points, detection {}/{}, \
         foreground retained {:.2})",
        doc.workers.len(),
        doc.detection.detected,
        doc.detection.seeded,
        doc.interference.retained
    );
    std::process::exit(0);
}

/// Directory receiving `BENCH_scrub.json`: `WAFL_BENCH_ROOT` if set,
/// else the repo root.
fn bench_root() -> std::path::PathBuf {
    match std::env::var_os("WAFL_BENCH_ROOT") {
        Some(d) => d.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        match args.get(2) {
            Some(path) => run_validate(path),
            None => {
                eprintln!("usage: exp_scrub [--smoke] [--validate <path>]");
                std::process::exit(2);
            }
        }
    }
    let quick =
        args.iter().any(|a| a == "--smoke") || std::env::var_os("WAFL_BENCH_QUICK").is_some();

    let doc = measure(quick);
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_scrub: produced record fails validation: {msg}");
        std::process::exit(1);
    }

    let mut t = FigureTable::new(
        "exp_scrub",
        "online scrub: worker scaling, detection power, foreground interference",
    );
    for p in &doc.scan {
        t.row_measured(
            format!("scrub pass @{} workers", p.workers),
            p.scan_ms,
            "ms",
        );
    }
    t.row(
        "seeded corruption classes detected",
        doc.detection.seeded as f64,
        doc.detection.detected as f64,
        "classes",
    );
    t.row_measured(
        "findings repaired and re-verified",
        doc.detection.reverified as f64,
        "findings",
    );
    t.row(
        "findings on a clean image",
        0.0,
        doc.clean.findings as f64,
        "findings",
    );
    t.row_measured(
        "foreground throughput retained under scrub",
        doc.interference.retained * 100.0,
        "%",
    );
    t.row_measured(
        "scrub passes completed alongside foreground",
        doc.interference.scrub_passes as f64,
        "passes",
    );
    t.row(
        "resume covers the pass exactly",
        doc.resume.total_units as f64,
        (doc.resume.first_scanned + doc.resume.second_scanned) as f64,
        "units",
    );

    let root = bench_root();
    let _ = std::fs::create_dir_all(&root);
    let path = root.join("BENCH_scrub.json");
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
    emit(&t);
    println!(
        "detection {}/{}, clean-image findings {}, foreground retained {:.2}",
        doc.detection.detected, doc.detection.seeded, doc.clean.findings, doc.interference.retained
    );
}
