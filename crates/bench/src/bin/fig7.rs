//! Figure 7: random-write throughput per client and core usage for the
//! four parallelization permutations (§V-A2).
//!
//! Paper: the result *inverts* relative to sequential write —
//! infrastructure-only +25 % beats cleaners-only +14 %, because random
//! frees scatter across the VBN-indexed allocation metafiles and dirty
//! many more metafile blocks; both together gain 50 %.

use wafl_bench::{emit, gain_pct, platform};
use wafl_simsrv::scenario::permutation_sweep;
use wafl_simsrv::{CleanerSetting, FigureTable, WorkloadKind};

fn main() {
    let cfg = platform(WorkloadKind::random_write());
    let rows = permutation_sweep(&cfg, CleanerSetting::dynamic_default(8));
    let base = rows[0].result.throughput_ops;

    let mut t = FigureTable::new(
        "fig7",
        "random write: parallelization permutations (gain vs serial/serial)",
    );
    t.row(
        "serial-cleaners/parallel-infra gain",
        25.0,
        gain_pct(rows[1].result.throughput_ops, base),
        "%",
    );
    t.row(
        "parallel-cleaners/serial-infra gain",
        14.0,
        gain_pct(rows[2].result.throughput_ops, base),
        "%",
    );
    t.row(
        "parallel/parallel gain",
        50.0,
        gain_pct(rows[3].result.throughput_ops, base),
        "%",
    );
    let full = &rows[3].result;
    t.row(
        "total cores at full parallelization",
        20.0,
        full.total_cores(),
        "cores",
    );
    t.row_measured(
        "metafile blocks dirtied by frees (full parallel)",
        full.free_mf_blocks as f64,
        "blocks",
    );
    for r in &rows {
        t.row_measured(
            format!("throughput {} ", r.label()),
            r.result.throughput_ops,
            "ops/s",
        );
    }
    emit(&t);
}
