//! Extension experiment — the paper's forward-looking claim: "all cores
//! in the system were saturated, which … suggests that White Alligator
//! will be able to scale even further on future platforms with more
//! cores" (§V-A). We sweep the simulated core count past the paper's
//! 20-core testbed and check that throughput keeps following the CPU.

use wafl_bench::{emit, platform};
use wafl_simsrv::{CleanerSetting, FigureTable, Simulator, WorkloadKind};

fn main() {
    let mut t = FigureTable::new(
        "exp_scaling",
        "future platforms: sequential-write throughput vs core count",
    );
    let mut base: Option<f64> = None;
    for cores in [8u32, 12, 16, 20, 28, 40] {
        let mut cfg = platform(WorkloadKind::sequential_write());
        cfg.cores = cores;
        // More cores need more offered load and more cleaner headroom.
        cfg.clients = cores * 2;
        cfg.cleaners = CleanerSetting::dynamic_default((cores as usize / 3).max(4));
        cfg.dirty_limit = 64 * cores as u64;
        cfg.total_buckets = 4 * cfg.drives as u64;
        let r = Simulator::new(cfg).run();
        let b = *base.get_or_insert(r.throughput_ops);
        t.row_measured(
            format!("throughput @{cores} cores"),
            r.throughput_ops,
            "ops/s",
        );
        t.row_measured(
            format!("speedup vs 8 cores @{cores} cores"),
            r.throughput_ops / b,
            "x",
        );
        t.row_measured(
            format!("write-alloc cores @{cores} cores"),
            r.write_alloc_cores(),
            "cores",
        );
        t.row_measured(
            format!("utilization @{cores} cores"),
            r.total_cores() / cores as f64 * 100.0,
            "%",
        );
    }
    emit(&t);
}
