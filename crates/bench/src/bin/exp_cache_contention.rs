//! Perf-trajectory experiment — bucket-cache contention under cleaner
//! scaling. The single-mutex cache serializes every GET (§IV-C's
//! amortization argument cuts the *frequency* of synchronization, not
//! its width); sharding gives cleaner *i* an uncontended home shard; the
//! lock-free Treiber hot path then removes the mutex from the common
//! GET entirely (one CAS pop plus the O(1) fullest-shard hint). This
//! bench sweeps cleaner threads 1→16 over four layouts in a GET-bound
//! microbenchmark configuration:
//!
//! - `single_lock`   — one mutex shard, every GET funnels through it;
//! - `mutex_sharded` — per-drive mutex+condvar shards (the PR-2 layout);
//! - `lockfree`      — per-drive Treiber shards, `get_many(1)`;
//! - `lockfree_get8` — per-drive Treiber shards, batched `get_many(8)`.
//!
//! Outputs:
//! - `BENCH_cache_contention.json` at the repo root (override the
//!   directory with `WAFL_BENCH_ROOT`) — the machine-readable scaling
//!   record the CI schema gate validates;
//! - `results/exp_cache_contention.json` via the standard [`emit`] path.
//!
//! A second, machine-tagged record (`real_thread`) measures the *real*
//! `alligator::BucketCache` with OS threads hammering GET/recycle on
//! both layouts. It is wall-clock and machine-dependent, so it carries
//! no perf gate and is `null` on single-core machines (the sweep needs
//! real parallelism to mean anything).
//!
//! `--validate <path>` re-parses a previously written record and checks
//! its schema and invariants (exit 1 on violation) so the trajectory
//! file can't silently rot.

use serde::{Deserialize, Serialize};
use wafl_bench::{configure_duration, emit};
use wafl_simsrv::{
    CleanerSetting, CostModel, FigureTable, SimConfig, SimResult, Simulator, WorkloadKind,
};

/// Schema tag for `BENCH_cache_contention.json`.
const SCHEMA: &str = "wafl.cache_contention.v2";

/// Thread counts swept (the ISSUE's 1→16 range).
const THREADS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// Acceptance floor: lock-free GET throughput vs the single lock at
/// ≥ 8 cleaner threads.
const SINGLE_LOCK_FLOOR: f64 = 1.5;

/// The lock-free layout may never lose to the mutex shards at any swept
/// thread count (small tolerance for integer-truncation noise in the
/// cost model).
const MUTEX_FLOOR: f64 = 0.999;

/// Batched `get_many(8)` must stay within 5% of `get_many(1)` — batching
/// amortizes synchronization and must never tank throughput.
const GET8_SANITY: f64 = 0.95;

/// One swept point of one cache layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CurvePoint {
    /// Cleaner threads at this point.
    threads: u64,
    /// Bucket GETs per second (home hits + steals over the window).
    gets_per_sec: f64,
    /// Client ops per second (context; the cache is the bottleneck).
    ops_per_sec: f64,
    /// Percentage of GETs served by the cleaner's home shard.
    home_hit_pct: f64,
    /// GETs that work-stole from another shard.
    steals: u64,
    /// Modeled time spent on contended shard sync, ms.
    lock_wait_ms: f64,
    /// GETs that found every shard empty.
    blocked_gets: u64,
    /// Extra buckets (beyond the first) granted by batched pops.
    batched_extras: u64,
}

/// The full sweep for one cache layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Curve {
    /// Shard count of this layout (1 = the forced single-lock baseline).
    shards: u64,
    /// Treiber-stack (CAS) hot path vs mutex shards.
    lockfree: bool,
    /// `get_many` batch bound used by this layout.
    get_batch: u64,
    /// One point per entry of `threads`.
    points: Vec<CurvePoint>,
}

/// One point of the wall-clock sweep over the real `BucketCache`.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RealThreadPoint {
    /// OS threads hammering the cache.
    threads: u64,
    /// GET/recycle cycles per second, Treiber layout.
    lockfree_gets_per_sec: f64,
    /// GET/recycle cycles per second, mutex-shard layout.
    mutex_gets_per_sec: f64,
    /// `lockfree / mutex` (informational; machine-dependent, ungated).
    speedup: f64,
}

/// Machine-tagged wall-clock record (no perf gate; `null` when the
/// machine cannot run ≥ 2 threads in parallel).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RealThreadRecord {
    /// `available_parallelism()` of the producing machine.
    cpus: u64,
    /// One point per swept thread count.
    points: Vec<RealThreadPoint>,
}

/// The persisted record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ContentionDoc {
    /// Schema tag (`wafl.cache_contention.v2`).
    schema: String,
    /// Producing binary.
    bench: String,
    /// True when run under `WAFL_BENCH_QUICK` (shorter windows; perf
    /// floors are not enforced on quick records).
    quick: bool,
    /// Cleaner thread counts swept.
    threads: Vec<u64>,
    /// Forced single-lock layout.
    single_lock: Curve,
    /// Per-drive mutex+condvar shards.
    mutex_sharded: Curve,
    /// Per-drive Treiber shards, `get_many(1)`.
    lockfree: Curve,
    /// Per-drive Treiber shards, batched `get_many(8)`.
    lockfree_get8: Curve,
    /// `lockfree.gets_per_sec / mutex_sharded.gets_per_sec` per point.
    speedup_lockfree_vs_mutex: Vec<f64>,
    /// `lockfree.gets_per_sec / single_lock.gets_per_sec` per point.
    speedup_lockfree_vs_single_lock: Vec<f64>,
    /// Minimum lockfree-vs-mutex speedup over the points ≥ 8 threads.
    min_vs_mutex_at_8_plus_threads: f64,
    /// Minimum lockfree-vs-single-lock speedup over the points ≥ 8
    /// threads.
    min_vs_single_lock_at_8_plus_threads: f64,
    /// Wall-clock sweep over the real cache, or `null` on single-core
    /// machines.
    real_thread: Option<RealThreadRecord>,
}

/// Cache layouts swept by the simulated record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Layout {
    SingleLock,
    MutexSharded,
    LockFree,
    LockFreeGet8,
}

impl Layout {
    fn single_shard(self) -> bool {
        self == Layout::SingleLock
    }
    fn lockfree(self) -> bool {
        matches!(self, Layout::LockFree | Layout::LockFreeGet8)
    }
    fn get_batch(self) -> u64 {
        match self {
            Layout::LockFreeGet8 => 8,
            _ => 1,
        }
    }
}

/// GET-bound microbenchmark platform. The full-system configs keep the
/// bucket cycle a small slice of cleaning (that is the point of §IV-C);
/// to measure the *cache*, this config strips everything around it:
/// tiny per-buffer work, small chunks (frequent GET/PUT), cheap client
/// and infrastructure paths with wide core headroom, and a deep dirty
/// backlog so cleaners never idle. The contention factors are raised
/// (0.12/sharer mutex, 0.04/sharer CAS): in a GET-saturated loop there
/// is no cleaning work to absorb the convoy, so each extra sharer costs
/// proportionally more than under the full-path defaults. The CAS:mutex
/// base-cost ratio (6 µs : 16 µs) matches the default model's
/// 1.5 µs : 4 µs.
fn microbench(threads: usize, layout: Layout) -> SimConfig {
    let mut cfg = SimConfig::paper_platform(WorkloadKind::sequential_write());
    configure_duration(&mut cfg);
    cfg.cores = 40;
    cfg.clients = 128;
    cfg.outstanding_per_client = 16;
    cfg.cleaners = CleanerSetting::Fixed(threads);
    cfg.chunk = 16;
    cfg.drives = 16;
    cfg.cache_shards = if layout.single_shard() { 1 } else { 0 };
    cfg.cache_lockfree = layout.lockfree();
    cfg.cache_get_batch = layout.get_batch();
    cfg.stage_capacity = 4096;
    cfg.dirty_limit = 100_000;
    cfg.cp_trigger_blocks = 1_000;
    cfg.bucket_low_watermark = 24;
    cfg.total_buckets = 96;
    cfg.costs = CostModel {
        protocol_per_op: 500,
        client_msg_fixed: 1_000,
        client_msg_per_block: 100,
        reply_latency: 10_000,
        read_media_latency: 250_000,
        cleaner_per_buffer: 200,
        cleaner_bucket_sync: 16_000,
        cleaner_contention_factor: 0.12,
        cleaner_cas_sync: 6_000,
        cas_contention_factor: 0.04,
        cleaner_msg_overhead: 1_000,
        cleaner_inode_overhead: 0,
        infra_refill_fixed: 500,
        infra_refill_per_vbn: 10,
        infra_commit_fixed: 500,
        infra_commit_per_vbn: 10,
        infra_frees_fixed: 500,
        infra_free_per_vbn: 10,
        infra_per_mf_block: 100,
    };
    cfg
}

fn point(threads: usize, r: &SimResult) -> CurvePoint {
    let pops = r.cache_get_fast + r.cache_get_steal;
    let secs = r.measured_ns as f64 / 1e9;
    CurvePoint {
        threads: threads as u64,
        gets_per_sec: pops as f64 / secs,
        ops_per_sec: r.throughput_ops,
        home_hit_pct: if pops > 0 {
            100.0 * r.cache_get_fast as f64 / pops as f64
        } else {
            0.0
        },
        steals: r.cache_get_steal,
        lock_wait_ms: r.cache_lock_waits_ns as f64 / 1e6,
        blocked_gets: r.cache_blocked_gets,
        batched_extras: r.cache_get_batched,
    }
}

fn sweep(layout: Layout) -> (Curve, Vec<SimResult>) {
    let mut results = Vec::new();
    let mut curve = Curve {
        shards: if layout.single_shard() {
            1
        } else {
            microbench(1, layout).drives as u64
        },
        lockfree: layout.lockfree(),
        get_batch: layout.get_batch(),
        points: Vec::new(),
    };
    for n in THREADS {
        let r = Simulator::new(microbench(n, layout)).run();
        curve.points.push(point(n, &r));
        results.push(r);
    }
    (curve, results)
}

/// Directory receiving `BENCH_cache_contention.json`: `WAFL_BENCH_ROOT`
/// if set (the CI smoke run points it at a temp dir), else the repo
/// root.
fn bench_root() -> std::path::PathBuf {
    match std::env::var_os("WAFL_BENCH_ROOT") {
        Some(d) => d.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Wall-clock sweep over the real `alligator::BucketCache`: OS threads
/// GET a bucket from their home shard and immediately recycle it, so
/// the loop body is exactly the synchronization under test (CAS pop +
/// keyed push vs mutex lock/unlock). Skipped (→ `None`) when the
/// machine cannot run two threads in parallel — an oversubscribed
/// single-core sweep measures the scheduler, not the cache.
mod real_thread {
    use super::{RealThreadPoint, RealThreadRecord};
    use alligator::{stats::AllocStats, Bucket, BucketCache, Tetris};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use wafl_blockdev::{AaId, DriveId, DriveKind, GeometryBuilder, IoEngine, RaidGroupId, Vbn};

    const NSHARDS: usize = 8;
    const BUCKETS_PER_SHARD: usize = 4;
    const SWEEP: [usize; 4] = [1, 2, 4, 8];

    fn mk_bucket(drive: u32, start: u64) -> Bucket {
        let engine = Arc::new(IoEngine::new(
            Arc::new(
                GeometryBuilder::new()
                    .aa_stripes(32)
                    .raid_group(1, 1, 4096)
                    .build(),
            ),
            DriveKind::Ssd,
        ));
        let t = Tetris::new(RaidGroupId(0), 1, engine, Arc::new(AllocStats::default()));
        Bucket::new(
            RaidGroupId(0),
            0,
            DriveId(drive),
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            (start..start + 4).map(Vbn).collect(),
            0,
            t,
            0,
        )
    }

    /// GET/recycle cycles per second with `threads` workers on one
    /// layout.
    fn run_layout(lockfree: bool, threads: usize, window: Duration) -> f64 {
        let stats = Arc::new(AllocStats::default());
        let cache = Arc::new(if lockfree {
            BucketCache::with_shards(NSHARDS, stats)
        } else {
            BucketCache::with_shards_mutex(NSHARDS, stats)
        });
        cache.insert_all(
            (0..NSHARDS * BUCKETS_PER_SHARD)
                .map(|i| mk_bucket((i % NSHARDS) as u32, i as u64 * 64)),
        );
        let stop = Arc::new(AtomicBool::new(false));
        let total = Arc::new(AtomicU64::new(0));
        let start = Instant::now();
        let handles: Vec<_> = (0..threads)
            .map(|i| {
                let cache = Arc::clone(&cache);
                let stop = Arc::clone(&stop);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    let mut local = 0u64;
                    // ordering: shutdown flag; no data is published through it.
                    while !stop.load(Ordering::Relaxed) {
                        match cache.try_get_from(i) {
                            Some(b) => {
                                local += 1;
                                cache.insert(b);
                            }
                            None => std::thread::yield_now(),
                        }
                    }
                    // ordering: statistics counter; staleness is acceptable.
                    total.fetch_add(local, Ordering::Relaxed);
                })
            })
            .collect();
        std::thread::sleep(window);
        // ordering: shutdown flag; no data is published through it.
        stop.store(true, Ordering::Relaxed);
        for h in handles {
            let _ = h.join();
        }
        let secs = start.elapsed().as_secs_f64();
        // ordering: statistics counter; staleness is acceptable.
        total.load(Ordering::Relaxed) as f64 / secs
    }

    pub fn measure(quick: bool) -> Option<RealThreadRecord> {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cpus < 2 {
            eprintln!(
                "note: available_parallelism = {cpus}; real-thread sweep skipped \
                 (real_thread: null)"
            );
            return None;
        }
        let window = Duration::from_millis(if quick { 30 } else { 150 });
        let points = SWEEP
            .iter()
            .map(|&t| {
                let lf = run_layout(true, t, window);
                let mx = run_layout(false, t, window);
                RealThreadPoint {
                    threads: t as u64,
                    lockfree_gets_per_sec: lf,
                    mutex_gets_per_sec: mx,
                    speedup: if mx > 0.0 { lf / mx } else { f64::INFINITY },
                }
            })
            .collect();
        Some(RealThreadRecord {
            cpus: cpus as u64,
            points,
        })
    }
}

/// Per-point speedup of curve `a` over curve `b`, plus the minimum over
/// points at ≥ 8 threads.
fn speedups(a: &Curve, b: &Curve) -> (Vec<f64>, f64) {
    let v: Vec<f64> = a
        .points
        .iter()
        .zip(&b.points)
        .map(|(pa, pb)| pa.gets_per_sec / pb.gets_per_sec)
        .collect();
    let min8 = a
        .points
        .iter()
        .zip(&v)
        .filter(|(p, _)| p.threads >= 8)
        .map(|(_, &s)| s)
        .fold(f64::INFINITY, f64::min);
    (v, min8)
}

/// Schema/invariant check of a written record. Returns a description of
/// the first violation.
fn validate(doc: &ContentionDoc) -> Result<(), String> {
    if doc.schema != SCHEMA {
        return Err(format!("schema: expected {SCHEMA:?}, got {:?}", doc.schema));
    }
    if doc.threads.is_empty() {
        return Err("threads: empty sweep".into());
    }
    if !doc.threads.windows(2).all(|w| w[0] < w[1]) {
        return Err(format!(
            "threads not strictly increasing: {:?}",
            doc.threads
        ));
    }
    if !doc.threads.iter().any(|&t| t >= 8) {
        return Err("threads: no point at ≥ 8 (acceptance range uncovered)".into());
    }
    let layouts = [
        ("single_lock", &doc.single_lock, 1u64, false, 1u64),
        ("mutex_sharded", &doc.mutex_sharded, 2, false, 1),
        ("lockfree", &doc.lockfree, 2, true, 1),
        ("lockfree_get8", &doc.lockfree_get8, 2, true, 8),
    ];
    let n = doc.threads.len();
    for (name, curve, min_shards, lockfree, batch) in layouts {
        if (min_shards == 1 && curve.shards != 1) || curve.shards < min_shards {
            return Err(format!("{name}.shards = {}", curve.shards));
        }
        if curve.lockfree != lockfree {
            return Err(format!("{name}.lockfree = {}", curve.lockfree));
        }
        if curve.get_batch != batch {
            return Err(format!("{name}.get_batch = {}", curve.get_batch));
        }
        if curve.points.len() != n {
            return Err(format!(
                "{name}: {} points, {n} threads",
                curve.points.len()
            ));
        }
        for (i, p) in curve.points.iter().enumerate() {
            if p.threads != doc.threads[i] {
                return Err(format!(
                    "{name}[{i}]: threads {} ≠ {}",
                    p.threads, doc.threads[i]
                ));
            }
            if !p.gets_per_sec.is_finite() || p.gets_per_sec <= 0.0 {
                return Err(format!("{name}[{i}]: gets_per_sec {}", p.gets_per_sec));
            }
        }
    }
    for (name, v, a, b) in [
        (
            "speedup_lockfree_vs_mutex",
            &doc.speedup_lockfree_vs_mutex,
            &doc.lockfree,
            &doc.mutex_sharded,
        ),
        (
            "speedup_lockfree_vs_single_lock",
            &doc.speedup_lockfree_vs_single_lock,
            &doc.lockfree,
            &doc.single_lock,
        ),
    ] {
        if v.len() != n {
            return Err(format!("{name}: {} entries, {n} threads", v.len()));
        }
        for (i, &s) in v.iter().enumerate() {
            let expect = a.points[i].gets_per_sec / b.points[i].gets_per_sec;
            if !s.is_finite() || (s - expect).abs() > 1e-6 * expect.abs() {
                return Err(format!(
                    "{name}[{i}] = {s} inconsistent with curves ({expect})"
                ));
            }
        }
    }
    let (_, min_mutex) = speedups(&doc.lockfree, &doc.mutex_sharded);
    let (_, min_single) = speedups(&doc.lockfree, &doc.single_lock);
    if (doc.min_vs_mutex_at_8_plus_threads - min_mutex).abs() > 1e-6 * min_mutex.abs() {
        return Err(format!(
            "min_vs_mutex_at_8_plus_threads = {} but curves give {min_mutex}",
            doc.min_vs_mutex_at_8_plus_threads
        ));
    }
    if (doc.min_vs_single_lock_at_8_plus_threads - min_single).abs() > 1e-6 * min_single.abs() {
        return Err(format!(
            "min_vs_single_lock_at_8_plus_threads = {} but curves give {min_single}",
            doc.min_vs_single_lock_at_8_plus_threads
        ));
    }
    if let Some(rt) = &doc.real_thread {
        if rt.cpus < 2 {
            return Err(format!("real_thread.cpus = {} (< 2 must be null)", rt.cpus));
        }
        if rt.points.is_empty() {
            return Err("real_thread: empty sweep".into());
        }
        for (i, p) in rt.points.iter().enumerate() {
            if !p.lockfree_gets_per_sec.is_finite()
                || p.lockfree_gets_per_sec <= 0.0
                || !p.mutex_gets_per_sec.is_finite()
                || p.mutex_gets_per_sec <= 0.0
            {
                return Err(format!("real_thread[{i}]: non-positive rate"));
            }
        }
    }
    if !doc.quick {
        for (i, &s) in doc.speedup_lockfree_vs_mutex.iter().enumerate() {
            if s < MUTEX_FLOOR {
                return Err(format!(
                    "lockfree loses to mutex shards at {} threads: {s:.3}x < {MUTEX_FLOOR}x",
                    doc.threads[i]
                ));
            }
            if doc.threads[i] >= 8 && s <= 1.0 {
                return Err(format!(
                    "lockfree not strictly faster at {} threads: {s:.3}x",
                    doc.threads[i]
                ));
            }
        }
        if min_single < SINGLE_LOCK_FLOOR {
            return Err(format!(
                "speedup floor: min {min_single:.3}x vs single lock at ≥ 8 threads \
                 < {SINGLE_LOCK_FLOOR}x"
            ));
        }
        for (i, (p8, p1)) in doc
            .lockfree_get8
            .points
            .iter()
            .zip(&doc.lockfree.points)
            .enumerate()
        {
            if p8.gets_per_sec < GET8_SANITY * p1.gets_per_sec {
                return Err(format!(
                    "get_many(8) tanks throughput at {} threads: {:.0} vs {:.0} GET/s",
                    doc.threads[i], p8.gets_per_sec, p1.gets_per_sec
                ));
            }
        }
    }
    Ok(())
}

fn run_validate(path: &str) -> ! {
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_cache_contention: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: ContentionDoc = match serde_json::from_str(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("exp_cache_contention: {path} does not parse as {SCHEMA}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_cache_contention: {path} invalid: {msg}");
        std::process::exit(1);
    }
    println!(
        "{path}: valid {SCHEMA} ({} points, min speedup at 8+ threads: \
         {:.2}x vs mutex, {:.2}x vs single lock, real_thread: {})",
        doc.threads.len(),
        doc.min_vs_mutex_at_8_plus_threads,
        doc.min_vs_single_lock_at_8_plus_threads,
        match &doc.real_thread {
            Some(rt) => format!("{} cpus", rt.cpus),
            None => "null".to_string(),
        }
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        match args.get(2) {
            Some(path) => run_validate(path),
            None => {
                eprintln!("usage: exp_cache_contention [--validate <path>]");
                std::process::exit(2);
            }
        }
    }

    let quick = std::env::var_os("WAFL_BENCH_QUICK").is_some();
    let mut t = FigureTable::new(
        "exp_cache_contention",
        "bucket-cache GET throughput: lock-free vs mutex shards vs single lock",
    );
    let (single, _) = sweep(Layout::SingleLock);
    let (mutex_sharded, r_mutex) = sweep(Layout::MutexSharded);
    let (lockfree, r_lf) = sweep(Layout::LockFree);
    let (lockfree_get8, _) = sweep(Layout::LockFreeGet8);

    for (i, &n) in THREADS.iter().enumerate() {
        t.row_measured(
            format!("GET/s lock-free @{n} threads"),
            lockfree.points[i].gets_per_sec,
            "GET/s",
        );
        t.row_measured(
            format!("GET/s mutex-sharded @{n} threads"),
            mutex_sharded.points[i].gets_per_sec,
            "GET/s",
        );
        t.row_measured(
            format!("GET/s single-lock @{n} threads"),
            single.points[i].gets_per_sec,
            "GET/s",
        );
        t.row_measured(
            format!("GET/s lock-free get_many(8) @{n} threads"),
            lockfree_get8.points[i].gets_per_sec,
            "GET/s",
        );
    }
    // Contention-counter detail at the widest point.
    if let (Some(rl), Some(rm)) = (r_lf.last(), r_mutex.last()) {
        t.cache_rows("lock-free @16", rl);
        t.cache_rows("mutex-sharded @16", rm);
    }

    let (speedup_mutex, min_mutex) = speedups(&lockfree, &mutex_sharded);
    let (speedup_single, min_single) = speedups(&lockfree, &single);
    for (i, &n) in THREADS.iter().enumerate() {
        t.row_measured(
            format!("lock-free speedup vs mutex @{n} threads"),
            speedup_mutex[i],
            "x",
        );
        t.row_measured(
            format!("lock-free speedup vs single-lock @{n} threads"),
            speedup_single[i],
            "x",
        );
    }

    let real = real_thread::measure(quick);
    let doc = ContentionDoc {
        schema: SCHEMA.to_string(),
        bench: "exp_cache_contention".to_string(),
        quick,
        threads: THREADS.iter().map(|&n| n as u64).collect(),
        single_lock: single,
        mutex_sharded,
        lockfree,
        lockfree_get8,
        speedup_lockfree_vs_mutex: speedup_mutex,
        speedup_lockfree_vs_single_lock: speedup_single,
        min_vs_mutex_at_8_plus_threads: min_mutex,
        min_vs_single_lock_at_8_plus_threads: min_single,
        real_thread: real,
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_cache_contention: produced record fails validation: {msg}");
        std::process::exit(1);
    }

    let root = bench_root();
    let _ = std::fs::create_dir_all(&root);
    let path = root.join("BENCH_cache_contention.json");
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
    emit(&t);
    println!(
        "min GET speedup at ≥ 8 cleaner threads: {min_mutex:.2}x vs mutex shards \
         (floor {MUTEX_FLOOR}x), {min_single:.2}x vs single lock (floor {SINGLE_LOCK_FLOOR}x)"
    );
}
