//! Perf-trajectory experiment — bucket-cache contention under cleaner
//! scaling. The single-mutex cache serializes every GET (§IV-C's
//! amortization argument cuts the *frequency* of synchronization, not
//! its width); the sharded cache gives cleaner *i* an uncontended home
//! shard. This bench sweeps cleaner threads 1→16 over both layouts in a
//! GET-bound microbenchmark configuration and records GET throughput,
//! home-shard hit rate, work-steals, and modeled lock-wait time.
//!
//! Outputs:
//! - `BENCH_cache_contention.json` at the repo root (override the
//!   directory with `WAFL_BENCH_ROOT`) — the machine-readable scaling
//!   record the CI schema gate validates;
//! - `results/exp_cache_contention.json` via the standard [`emit`] path.
//!
//! `--validate <path>` re-parses a previously written record and checks
//! its schema and invariants (exit 1 on violation) so the trajectory
//! file can't silently rot.

use serde::{Deserialize, Serialize};
use wafl_bench::{configure_duration, emit};
use wafl_simsrv::{
    CleanerSetting, CostModel, FigureTable, SimConfig, SimResult, Simulator, WorkloadKind,
};

/// Schema tag for `BENCH_cache_contention.json`.
const SCHEMA: &str = "wafl.cache_contention.v1";

/// Thread counts swept (the ISSUE's 1→16 range).
const THREADS: [usize; 6] = [1, 2, 4, 8, 12, 16];

/// Acceptance floor: sharded GET throughput vs single-lock at ≥ 8
/// cleaner threads.
const SPEEDUP_FLOOR: f64 = 1.5;

/// One swept point of one cache layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CurvePoint {
    /// Cleaner threads at this point.
    threads: u64,
    /// Bucket GETs per second (home hits + steals over the window).
    gets_per_sec: f64,
    /// Client ops per second (context; the cache is the bottleneck).
    ops_per_sec: f64,
    /// Percentage of GETs served by the cleaner's home shard.
    home_hit_pct: f64,
    /// GETs that work-stole from another shard.
    steals: u64,
    /// Modeled time spent on contended shard locks, ms.
    lock_wait_ms: f64,
    /// GETs that found every shard empty.
    blocked_gets: u64,
}

/// The full sweep for one cache layout.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Curve {
    /// Shard count of this layout (1 = the forced single-lock baseline).
    shards: u64,
    /// One point per entry of `threads`.
    points: Vec<CurvePoint>,
}

/// The persisted record.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ContentionDoc {
    /// Schema tag (`wafl.cache_contention.v1`).
    schema: String,
    /// Producing binary.
    bench: String,
    /// True when run under `WAFL_BENCH_QUICK` (shorter windows; the
    /// speedup floor is not enforced on quick records).
    quick: bool,
    /// Cleaner thread counts swept.
    threads: Vec<u64>,
    /// Per-drive sharded layout.
    sharded: Curve,
    /// Forced single-lock layout.
    single_lock: Curve,
    /// `sharded.gets_per_sec / single_lock.gets_per_sec` per point.
    get_speedup: Vec<f64>,
    /// Minimum speedup over the points with ≥ 8 threads.
    min_speedup_at_8_plus_threads: f64,
}

/// GET-bound microbenchmark platform. The full-system configs keep the
/// bucket cycle a small slice of cleaning (that is the point of §IV-C);
/// to measure the *cache*, this config strips everything around it:
/// tiny per-buffer work, small chunks (frequent GET/PUT), cheap client
/// and infrastructure paths with wide core headroom, and a deep dirty
/// backlog so cleaners never idle. The contention factor is raised to
/// 0.12/sharer: in a GET-saturated loop there is no cleaning work to
/// absorb the convoy, so each extra sharer costs proportionally more
/// than under the full-path default of 0.06.
fn microbench(threads: usize, single_lock: bool) -> SimConfig {
    let mut cfg = SimConfig::paper_platform(WorkloadKind::sequential_write());
    configure_duration(&mut cfg);
    cfg.cores = 40;
    cfg.clients = 128;
    cfg.outstanding_per_client = 16;
    cfg.cleaners = CleanerSetting::Fixed(threads);
    cfg.chunk = 16;
    cfg.drives = 16;
    cfg.cache_shards = if single_lock { 1 } else { 0 };
    cfg.stage_capacity = 4096;
    cfg.dirty_limit = 100_000;
    cfg.cp_trigger_blocks = 1_000;
    cfg.bucket_low_watermark = 24;
    cfg.total_buckets = 96;
    cfg.costs = CostModel {
        protocol_per_op: 500,
        client_msg_fixed: 1_000,
        client_msg_per_block: 100,
        reply_latency: 10_000,
        read_media_latency: 250_000,
        cleaner_per_buffer: 200,
        cleaner_bucket_sync: 16_000,
        cleaner_contention_factor: 0.12,
        cleaner_msg_overhead: 1_000,
        cleaner_inode_overhead: 0,
        infra_refill_fixed: 500,
        infra_refill_per_vbn: 10,
        infra_commit_fixed: 500,
        infra_commit_per_vbn: 10,
        infra_frees_fixed: 500,
        infra_free_per_vbn: 10,
        infra_per_mf_block: 100,
    };
    cfg
}

fn point(threads: usize, r: &SimResult) -> CurvePoint {
    let pops = r.cache_get_fast + r.cache_get_steal;
    let secs = r.measured_ns as f64 / 1e9;
    CurvePoint {
        threads: threads as u64,
        gets_per_sec: pops as f64 / secs,
        ops_per_sec: r.throughput_ops,
        home_hit_pct: if pops > 0 {
            100.0 * r.cache_get_fast as f64 / pops as f64
        } else {
            0.0
        },
        steals: r.cache_get_steal,
        lock_wait_ms: r.cache_lock_waits_ns as f64 / 1e6,
        blocked_gets: r.cache_blocked_gets,
    }
}

/// Directory receiving `BENCH_cache_contention.json`: `WAFL_BENCH_ROOT`
/// if set (the CI smoke run points it at a temp dir), else the repo
/// root.
fn bench_root() -> std::path::PathBuf {
    match std::env::var_os("WAFL_BENCH_ROOT") {
        Some(d) => d.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

/// Schema/invariant check of a written record. Returns a description of
/// the first violation.
fn validate(doc: &ContentionDoc) -> Result<(), String> {
    if doc.schema != SCHEMA {
        return Err(format!("schema: expected {SCHEMA:?}, got {:?}", doc.schema));
    }
    if doc.threads.is_empty() {
        return Err("threads: empty sweep".into());
    }
    if !doc.threads.windows(2).all(|w| w[0] < w[1]) {
        return Err(format!(
            "threads not strictly increasing: {:?}",
            doc.threads
        ));
    }
    if !doc.threads.iter().any(|&t| t >= 8) {
        return Err("threads: no point at ≥ 8 (acceptance range uncovered)".into());
    }
    if doc.single_lock.shards != 1 {
        return Err(format!("single_lock.shards = {}", doc.single_lock.shards));
    }
    if doc.sharded.shards < 2 {
        return Err(format!("sharded.shards = {} (< 2)", doc.sharded.shards));
    }
    let n = doc.threads.len();
    for (name, curve) in [("sharded", &doc.sharded), ("single_lock", &doc.single_lock)] {
        if curve.points.len() != n {
            return Err(format!(
                "{name}: {} points, {n} threads",
                curve.points.len()
            ));
        }
        for (i, p) in curve.points.iter().enumerate() {
            if p.threads != doc.threads[i] {
                return Err(format!(
                    "{name}[{i}]: threads {} ≠ {}",
                    p.threads, doc.threads[i]
                ));
            }
            if !p.gets_per_sec.is_finite() || p.gets_per_sec <= 0.0 {
                return Err(format!("{name}[{i}]: gets_per_sec {}", p.gets_per_sec));
            }
        }
    }
    if doc.get_speedup.len() != n {
        return Err(format!(
            "get_speedup: {} entries, {n} threads",
            doc.get_speedup.len()
        ));
    }
    let mut min8 = f64::INFINITY;
    for (i, &s) in doc.get_speedup.iter().enumerate() {
        let expect = doc.sharded.points[i].gets_per_sec / doc.single_lock.points[i].gets_per_sec;
        if !s.is_finite() || (s - expect).abs() > 1e-6 * expect.abs() {
            return Err(format!(
                "get_speedup[{i}] = {s} inconsistent with curves ({expect})"
            ));
        }
        if doc.threads[i] >= 8 {
            min8 = min8.min(s);
        }
    }
    if (doc.min_speedup_at_8_plus_threads - min8).abs() > 1e-6 * min8.abs() {
        return Err(format!(
            "min_speedup_at_8_plus_threads = {} but curves give {min8}",
            doc.min_speedup_at_8_plus_threads
        ));
    }
    if !doc.quick && min8 < SPEEDUP_FLOOR {
        return Err(format!(
            "speedup floor: min {min8:.3}x at ≥ 8 threads < {SPEEDUP_FLOOR}x"
        ));
    }
    Ok(())
}

fn run_validate(path: &str) -> ! {
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_cache_contention: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: ContentionDoc = match serde_json::from_str(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("exp_cache_contention: {path} does not parse as {SCHEMA}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_cache_contention: {path} invalid: {msg}");
        std::process::exit(1);
    }
    println!(
        "{path}: valid {SCHEMA} ({} points, min speedup at 8+ threads {:.2}x)",
        doc.threads.len(),
        doc.min_speedup_at_8_plus_threads
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        match args.get(2) {
            Some(path) => run_validate(path),
            None => {
                eprintln!("usage: exp_cache_contention [--validate <path>]");
                std::process::exit(2);
            }
        }
    }

    let quick = std::env::var_os("WAFL_BENCH_QUICK").is_some();
    let mut t = FigureTable::new(
        "exp_cache_contention",
        "bucket-cache GET throughput: per-drive shards vs single lock",
    );
    let mut sharded = Curve {
        shards: microbench(1, false).drives as u64,
        points: Vec::new(),
    };
    let mut single = Curve {
        shards: 1,
        points: Vec::new(),
    };
    let mut speedup = Vec::new();
    let mut last: Option<(SimResult, SimResult)> = None;
    for n in THREADS {
        let rs = Simulator::new(microbench(n, false)).run();
        let r1 = Simulator::new(microbench(n, true)).run();
        let ps = point(n, &rs);
        let p1 = point(n, &r1);
        let s = ps.gets_per_sec / p1.gets_per_sec;
        t.row_measured(
            format!("GET/s sharded @{n} threads"),
            ps.gets_per_sec,
            "GET/s",
        );
        t.row_measured(
            format!("GET/s single-lock @{n} threads"),
            p1.gets_per_sec,
            "GET/s",
        );
        t.row_measured(format!("GET speedup @{n} threads"), s, "x");
        sharded.points.push(ps);
        single.points.push(p1);
        speedup.push(s);
        last = Some((rs, r1));
    }
    // Contention-counter detail at the widest point.
    if let Some((rs, r1)) = &last {
        t.cache_rows("sharded @16", rs);
        t.cache_rows("single-lock @16", r1);
    }

    let min8 = THREADS
        .iter()
        .zip(&speedup)
        .filter(|(&n, _)| n >= 8)
        .map(|(_, &s)| s)
        .fold(f64::INFINITY, f64::min);
    let doc = ContentionDoc {
        schema: SCHEMA.to_string(),
        bench: "exp_cache_contention".to_string(),
        quick,
        threads: THREADS.iter().map(|&n| n as u64).collect(),
        sharded,
        single_lock: single,
        get_speedup: speedup,
        min_speedup_at_8_plus_threads: min8,
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_cache_contention: produced record fails validation: {msg}");
        std::process::exit(1);
    }

    let root = bench_root();
    let _ = std::fs::create_dir_all(&root);
    let path = root.join("BENCH_cache_contention.json");
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
    emit(&t);
    println!("min GET speedup at ≥ 8 cleaner threads: {min8:.2}x (floor {SPEEDUP_FLOOR}x)");
}
