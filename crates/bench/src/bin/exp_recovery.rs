//! Extension experiment — fault injection and crash recovery. WAFL's
//! durability story (§II-C): acknowledged operations survive a crash
//! because "the contents of NVRAM from before the CP are replayed", and
//! RAID parity lets the system serve (and later rebuild) a failed drive.
//! This binary runs the `recovery_sweep` cells against the real-thread
//! stack and, separately, measures the latency cost of injected media
//! faults in the discrete-event model.

use wafl_bench::{emit, platform};
use wafl_simsrv::{recovery_sweep, Simulator, WorkloadKind};

fn main() {
    let mut t = wafl_simsrv::FigureTable::new(
        "exp_recovery",
        "fault injection: degraded-mode RAID, crash + NVLog replay, retry absorption",
    );

    // Real-thread stack: every recovery cell must end verified.
    let rows = recovery_sweep(0xFA17, 64);
    let mut recovered = 0u64;
    for row in &rows {
        recovered += row.recovered as u64;
        t.row_measured(
            format!("{} recovered (1=yes)", row.scenario),
            row.recovered as u64 as f64,
            "",
        );
        if row.replayed_ops > 0 {
            t.row_measured(
                format!("{} NVLog ops replayed", row.scenario),
                row.replayed_ops as f64,
                "ops",
            );
        }
        if row.faults.reconstructed_reads > 0 {
            t.row_measured(
                format!("{} reads served by XOR reconstruction", row.scenario),
                row.faults.reconstructed_reads as f64,
                "blocks",
            );
        }
        if row.faults.io_retries > 0 {
            t.row_measured(
                format!("{} drive-op retries", row.scenario),
                row.faults.io_retries as f64,
                "retries",
            );
        }
        if row.blocks_rebuilt > 0 {
            t.row_measured(
                format!("{} blocks rebuilt from parity", row.scenario),
                row.blocks_rebuilt as f64,
                "blocks",
            );
        }
        t.row(
            format!("{} post-recovery scrub findings", row.scenario),
            0.0,
            row.scrub_findings as f64,
            "findings",
        );
    }
    t.row(
        "recovery cells verified (stamps + metafiles + online scrub)",
        rows.len() as f64,
        recovered as f64,
        "cells",
    );

    // Discrete-event model: the same fault bands as latency, under load.
    let quiet = platform(WorkloadKind::oltp());
    let mut noisy = quiet.clone();
    noisy.faults.read_error_ppm = 10_000;
    noisy.faults.write_error_ppm = 10_000;
    noisy.faults.latency_spike_ppm = 2_000;
    let rq = Simulator::new(quiet).run();
    let rn = Simulator::new(noisy).run();
    t.row_measured(
        "fault-free p99 latency",
        rq.latency.p99_ns as f64 / 1e6,
        "ms",
    );
    t.row_measured(
        "fault-free p99.9 latency",
        rq.latency.p999_ns as f64 / 1e6,
        "ms",
    );
    t.row_measured(
        "1% error rate p99 latency",
        rn.latency.p99_ns as f64 / 1e6,
        "ms",
    );
    t.row_measured(
        "1% error rate p99.9 latency",
        rn.latency.p999_ns as f64 / 1e6,
        "ms",
    );
    t.row_measured(
        "ops hit by injected faults",
        rn.injected_faults as f64,
        "ops",
    );
    t.row_measured("retry round-trips paid", rn.fault_retries as f64, "retries");
    t.row_measured(
        "throughput retained under faults",
        rn.throughput_ops / rq.throughput_ops * 100.0,
        "%",
    );

    emit(&t);
}
