//! Figure 8: OLTP throughput per client at peak load and latency at the
//! knee of the scalability curve, for increasing cleaner-thread counts
//! and for dynamic tuning (§V-B).
//!
//! Paper (20-core Flash Pool testbed): one cleaner cannot keep up; a
//! second raises peak throughput and lowers off-peak latency; more than
//! two threads *reduces* throughput ≈3 % and raises latency; dynamic
//! tuning matches the best static setting on both metrics.

use wafl_bench::{emit, platform};
use wafl_simsrv::scenario::knee_sweep;
use wafl_simsrv::{CleanerSetting, FigureTable, WorkloadKind};

fn main() {
    let mut cfg = platform(WorkloadKind::oltp());
    // Flash Pool (SAS + SSD) testbed: slower media reads.
    cfg.costs.read_media_latency = 900_000;
    let settings = vec![
        ("1".to_string(), CleanerSetting::Fixed(1)),
        ("2".to_string(), CleanerSetting::Fixed(2)),
        ("3".to_string(), CleanerSetting::Fixed(3)),
        ("4".to_string(), CleanerSetting::Fixed(4)),
        ("dynamic".to_string(), CleanerSetting::dynamic_default(4)),
    ];
    let levels = [2u32, 4, 8, 12, 16, 24, 32, 48, 64];
    let rows = knee_sweep(&cfg, &settings, &levels);

    let mut t = FigureTable::new(
        "fig8",
        "OLTP: peak throughput and knee latency vs cleaner-thread setting",
    );
    for r in &rows {
        t.row_measured(
            format!("peak throughput, {} cleaners", r.setting),
            r.peak_throughput,
            "ops/s",
        );
        t.row_measured(
            format!("knee latency, {} cleaners", r.setting),
            r.knee_latency_ns as f64 / 1e6,
            "ms",
        );
    }
    // Latency at a common off-peak load (the paper's knee methodology:
    // "latency at a lower load that represents the knee").
    let off_idx = 4; // 16 clients
    for r in &rows {
        t.row_measured(
            format!(
                "off-peak latency @{} clients, {} cleaners",
                r.curve[off_idx].load, r.setting
            ),
            r.curve[off_idx].latency_ns as f64 / 1e6,
            "ms",
        );
    }
    // Shape rows the paper asserts.
    let one = &rows[0];
    let two = &rows[1];
    let best_static = rows[..4]
        .iter()
        .map(|r| r.peak_throughput)
        .fold(0.0f64, f64::max);
    let dynamic = &rows[4];
    t.row_measured(
        "2-thread peak gain over 1 thread",
        (two.peak_throughput / one.peak_throughput - 1.0) * 100.0,
        "%",
    );
    t.row_measured(
        "dynamic peak vs best static",
        (dynamic.peak_throughput / best_static - 1.0) * 100.0,
        "%",
    );
    emit(&t);
}
