//! §III — the history of parallelism in WAFL, as one table: throughput of
//! the same sequential-write load under each era's execution constraints.
//!
//! * pre-Waffinity (§III-A): one domain, everything serial;
//! * Classical Waffinity, 2006 (§III-B): parallel user-file stripes, but
//!   inode cleaning still in the Serial affinity, excluding all client
//!   work while it runs (§III-C);
//! * single cleaner thread, 2008 (§III-C): cleaning moves to a dedicated
//!   thread that runs in parallel with Waffinity;
//! * White Alligator + Hierarchical Waffinity, 2011 (§IV): parallel
//!   cleaners and parallel infrastructure.
//!
//! The paper gives no absolute numbers for the historical systems; these
//! rows are measurement-only and demonstrate that each step relaxes a
//! real constraint.

use wafl_bench::{emit, gain_pct, platform};
use wafl_simsrv::config::Era;
use wafl_simsrv::{CleanerSetting, FigureTable, Simulator, WorkloadKind};

fn main() {
    let eras = [
        ("pre-Waffinity (serial WAFL)", Era::SerialWafl),
        (
            "Classical Waffinity, serial cleaning (2006)",
            Era::ClassicalSerialCleaning,
        ),
        (
            "Classical + 1 cleaner thread (2008)",
            Era::ClassicalCleanerThread,
        ),
        ("White Alligator (2011)", Era::WhiteAlligator),
    ];
    let mut t = FigureTable::new(
        "history",
        "§III evolution: sequential-write throughput per parallelization era",
    );
    let mut base = None;
    for (label, era) in eras {
        let mut cfg = platform(WorkloadKind::sequential_write());
        cfg.era = era;
        cfg.cleaners = CleanerSetting::dynamic_default(8);
        let r = Simulator::new(cfg).run();
        let b = *base.get_or_insert(r.throughput_ops);
        t.row_measured(format!("throughput — {label}"), r.throughput_ops, "ops/s");
        t.row_measured(
            format!("gain vs serial — {label}"),
            gain_pct(r.throughput_ops, b),
            "%",
        );
        t.row_measured(format!("total cores — {label}"), r.total_cores(), "cores");
    }
    emit(&t);
}
