//! Figure 5: sequential-write throughput per client and cleaner core
//! usage as the number of cleaner threads increases, with a parallelized
//! infrastructure (§V-A1).
//!
//! The paper reports a "nearly linear increase in system throughput up to
//! the point when system CPUs are saturated".

use wafl_bench::{emit, gain_pct, platform};
use wafl_simsrv::scenario::cleaner_thread_sweep;
use wafl_simsrv::{FigureTable, WorkloadKind};

fn main() {
    let cfg = platform(WorkloadKind::sequential_write());
    let counts = [1usize, 2, 3, 4, 5, 6];
    let rows = cleaner_thread_sweep(&cfg, &counts);
    let base = rows[0].1.throughput_ops;

    let mut t = FigureTable::new(
        "fig5",
        "sequential write: throughput and cleaner cores vs cleaner-thread count",
    );
    for (n, r) in &rows {
        t.row_measured(
            format!("throughput @{n} cleaners"),
            r.throughput_ops,
            "ops/s",
        );
        t.row_measured(
            format!("gain @{n} cleaners"),
            gain_pct(r.throughput_ops, base),
            "%",
        );
        t.row_measured(
            format!("cleaner cores @{n} cleaners"),
            r.usage.cleaner_cores(r.measured_ns),
            "cores",
        );
        t.row_measured(
            format!("total cores @{n} cleaners"),
            r.total_cores(),
            "cores",
        );
    }
    // Shape checks the paper states: near-linear at low counts.
    let two = rows[1].1.throughput_ops;
    t.row(
        "2-thread speedup (near-linear ≈ 2.0×)",
        2.0,
        two / base,
        "x",
    );
    emit(&t);
}
