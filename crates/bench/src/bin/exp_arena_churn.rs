//! Arena-churn profiler — the memory-boundedness evidence for the
//! bounded Treiber arena.
//!
//! Before the bounded arena, the bucket cache's node pool only ever
//! grew: every insert that missed the free list minted a new slab slot,
//! and the two exhaustion `assert!`s aborted the process when the index
//! space ran out. This bench drives the **real**
//! [`alligator::BucketCache`] (shared-arena layout) through a
//! grow → churn → shrink population cycle on OS threads and records the
//! arena's live-chunk level over time, proving:
//!
//! * **plateau** — under steady churn the live-chunk level is flat
//!   (second-half maximum ≤ first-half maximum): steady state recycles
//!   nodes instead of minting;
//! * **reuse** — `arena_reuse_hits > 0` and fresh mints stay within one
//!   chunk of the population (footprint tracks the working set, not the
//!   op count);
//! * **reclamation** — after the population shrinks, maintenance
//!   retires and frees chunks: the level drops below its peak;
//! * **conservation** — no bucket is lost or duplicated across the
//!   cycle, including any `ArenaFull` overflow episodes.
//!
//! Outputs `BENCH_arena_churn.json` at the repo root (`WAFL_BENCH_ROOT`
//! overrides the directory) — validated by the CI schema gate — plus
//! `results/exp_arena_churn.json` via the standard [`emit`] path.
//! `WAFL_BENCH_QUICK=1` shrinks the workload (gates still enforced:
//! they are structural, not wall-clock). `--validate <path>` re-parses
//! a previously written record and checks schema + gates (exit 1 on
//! violation).

use alligator::arena::CHUNK_NODES;
use alligator::{AllocStats, Bucket, BucketCache, Tetris};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Duration;
use wafl_bench::emit;
use wafl_blockdev::{AaId, DriveId, DriveKind, GeometryBuilder, IoEngine, RaidGroupId, Vbn};
use wafl_simsrv::FigureTable;

/// Schema tag for `BENCH_arena_churn.json`.
const SCHEMA: &str = "wafl.arena_churn.v1";

/// Cache shards (the arena is shared across all of them).
const NSHARDS: usize = 8;

/// Churn rounds; the live-chunk level is sampled after each, so the
/// series has one point per round and the flatness gate compares its
/// halves.
const ROUNDS: usize = 8;

/// One swept sample of the arena level.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChurnDoc {
    /// Schema tag (`wafl.arena_churn.v1`).
    schema: String,
    /// Producing binary.
    bench: String,
    /// True when run under `WAFL_BENCH_QUICK` (smaller workload; the
    /// gates are structural and stay enforced).
    quick: bool,
    /// `available_parallelism()` of the producing machine.
    cpus: u64,
    /// Worker threads churning the cache.
    threads: u64,
    /// Nodes per arena chunk (release builds: 64).
    chunk_nodes: u64,
    /// Peak bucket population of the grow phase.
    population: u64,
    /// Bucket population left resident for the churn + shrink phases.
    resident: u64,
    /// GET/reinsert iterations per thread per churn round.
    iters_per_round: u64,
    /// Live-chunk level sampled after each churn round.
    chunk_series: Vec<u64>,
    /// Live-chunk level right after the grow phase (the peak).
    peak_chunks: u64,
    /// Live-chunk level after the shrink phase's maintenance rounds.
    post_shrink_chunks: u64,
    /// Buckets recovered by the final drain (must equal `resident`).
    drained: u64,
    /// Arena nodes minted fresh over the whole cycle.
    arena_fresh_mints: u64,
    /// Allocations served by recycled nodes.
    arena_reuse_hits: u64,
    /// Allocations served by another pin slot's cached node.
    arena_donations: u64,
    /// Chunks retired into the reclamation limbo list.
    arena_chunks_retired: u64,
    /// Retired chunks whose slab was freed after the grace period.
    arena_chunks_freed: u64,
    /// Global reclamation-epoch advances.
    arena_epoch_advances: u64,
    /// Inserts that hit `ArenaFull` and took the overflow fallback.
    arena_full_fallbacks: u64,
    /// CAS retries across the Treiber heads and arena free lists.
    cache_cas_retries: u64,
}

/// A filled 4-VBN bucket with a unique identity, sharing one tetris.
fn mk_buckets(base: u64, n: usize, tetris: &Arc<Tetris>) -> Vec<Bucket> {
    (0..n)
        .map(|i| {
            Bucket::new(
                RaidGroupId(0),
                0,
                DriveId((i % NSHARDS) as u32),
                AaId {
                    rg: RaidGroupId(0),
                    index: 0,
                },
                ((base + i as u64) * 64..(base + i as u64) * 64 + 4)
                    .map(Vbn)
                    .collect(),
                0,
                Arc::clone(tetris),
                0,
            )
        })
        .collect()
}

fn shared_tetris() -> Arc<Tetris> {
    let engine = Arc::new(IoEngine::new(
        Arc::new(
            GeometryBuilder::new()
                .aa_stripes(32)
                .raid_group(1, 1, 1 << 22)
                .build(),
        ),
        DriveKind::Ssd,
    ));
    Tetris::new(RaidGroupId(0), 1, engine, Arc::new(AllocStats::default()))
}

/// Workload shape: (population, resident, iterations per round).
fn workload_shape(quick: bool) -> (usize, usize, u64) {
    if quick {
        (4 * CHUNK_NODES, CHUNK_NODES / 2, 100)
    } else {
        (8 * CHUNK_NODES, CHUNK_NODES, 400)
    }
}

/// One churn round: `threads` workers GET (with a timeout, so scarcity
/// cannot deadlock the round) and reinsert, alternating the single and
/// collective paths; the collective path runs arena maintenance
/// in-band, as production refill rounds do.
fn churn_round(cache: &Arc<BucketCache>, threads: usize, iters: u64) {
    let handles: Vec<_> = (0..threads)
        .map(|i| {
            let cache = Arc::clone(cache);
            std::thread::spawn(move || {
                let mut held = Vec::new();
                for iter in 0..iters {
                    if let Some(b) = cache.get_timeout_from(i, Duration::from_millis(50)) {
                        held.push(b);
                    }
                    if iter % 4 == 3 || held.len() >= 4 {
                        if iter % 8 < 4 {
                            for b in held.drain(..) {
                                cache.insert(b);
                            }
                        } else {
                            cache.insert_all(std::mem::take(&mut held));
                        }
                    }
                }
                for b in held {
                    cache.insert(b);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Run the grow → churn → shrink cycle and build the record.
fn run(quick: bool, cpus: u64) -> ChurnDoc {
    let threads = (cpus as usize).clamp(2, 8);
    let (population, resident, iters) = workload_shape(quick);
    let stats = Arc::new(AllocStats::default());
    let cache = Arc::new(BucketCache::with_shards_capped(
        NSHARDS,
        0,
        Arc::clone(&stats),
    ));
    let tetris = shared_tetris();

    // Grow.
    cache.insert_all(mk_buckets(0, population, &tetris));
    let peak_chunks = cache.arena().chunks_live() as u64;

    // Shrink the circulating set before churning, so the churn phase
    // exercises reuse against a mostly-free arena (the hard case for
    // the plateau: plenty of room to grow into if reuse were broken).
    let mut parked = Vec::new();
    while cache.len() > resident {
        parked.push(cache.try_get().expect("len > 0"));
    }

    // Churn, sampling the live-chunk level after each round.
    let mut chunk_series = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        churn_round(&cache, threads, iters);
        chunk_series.push(cache.arena().chunks_live() as u64);
    }

    // Shrink: the parked majority is gone for good; maintenance rounds
    // (each advances the reclamation epoch once) retire + free chunks.
    drop(parked);
    for _ in 0..6 {
        cache.arena().maintain();
    }
    let post_shrink_chunks = cache.arena().chunks_live() as u64;

    // Conservation drain.
    let mut drained = 0u64;
    while cache.try_get().is_some() {
        drained += 1;
    }

    let s = stats.snapshot();
    ChurnDoc {
        schema: SCHEMA.to_string(),
        bench: "exp_arena_churn".to_string(),
        quick,
        cpus,
        threads: threads as u64,
        chunk_nodes: CHUNK_NODES as u64,
        population: population as u64,
        resident: resident as u64,
        iters_per_round: iters,
        chunk_series,
        peak_chunks,
        post_shrink_chunks,
        drained,
        arena_fresh_mints: s.arena_fresh_mints,
        arena_reuse_hits: s.arena_reuse_hits,
        arena_donations: s.arena_donations,
        arena_chunks_retired: s.arena_chunks_retired,
        arena_chunks_freed: s.arena_chunks_freed,
        arena_epoch_advances: s.arena_epoch_advances,
        arena_full_fallbacks: s.arena_full_fallbacks,
        cache_cas_retries: s.cache_cas_retries,
    }
}

/// Schema + boundedness gates. All structural (counter identities and
/// level comparisons), so they hold on quick runs too.
fn validate(doc: &ChurnDoc) -> Result<(), String> {
    if doc.schema != SCHEMA {
        return Err(format!("schema: expected {SCHEMA:?}, got {:?}", doc.schema));
    }
    if doc.chunk_nodes == 0 || doc.population == 0 || doc.resident == 0 {
        return Err("degenerate workload (zero population/resident/chunk)".into());
    }
    if doc.resident >= doc.population {
        return Err(format!(
            "resident {} must be a strict shrink of population {}",
            doc.resident, doc.population
        ));
    }
    if doc.chunk_series.len() < 2 {
        return Err(format!(
            "chunk series needs ≥ 2 samples, got {}",
            doc.chunk_series.len()
        ));
    }
    if doc.peak_chunks * doc.chunk_nodes < doc.population {
        return Err(format!(
            "peak of {} chunks cannot hold the population of {}",
            doc.peak_chunks, doc.population
        ));
    }
    // Gate 1 — plateau: the level never grows through steady churn.
    let half = doc.chunk_series.len() / 2;
    let early = *doc.chunk_series[..half].iter().max().unwrap();
    let late = *doc.chunk_series[half..].iter().max().unwrap();
    if late > early {
        return Err(format!(
            "arena grew under steady churn: late max {late} > early max {early} \
             (series {:?})",
            doc.chunk_series
        ));
    }
    // Gate 2 — reuse: steady state recycles; minting tracks the
    // working set (population plus at most one transient chunk), not
    // the op count.
    if doc.arena_reuse_hits + doc.arena_donations == 0 {
        return Err("no reuse hit or donation: churn never recycled a node".into());
    }
    if doc.arena_fresh_mints > doc.population + doc.chunk_nodes {
        return Err(format!(
            "{} fresh mints for a population of {}: the arena is growing per-op",
            doc.arena_fresh_mints, doc.population
        ));
    }
    // Gate 3 — reclamation: the shrink must return chunks.
    if doc.post_shrink_chunks >= doc.peak_chunks {
        return Err(format!(
            "no reclamation: {} chunks live after shrink, peak {}",
            doc.post_shrink_chunks, doc.peak_chunks
        ));
    }
    if doc.arena_chunks_retired == 0 {
        return Err("arena_chunks_retired = 0: nothing was ever retired".into());
    }
    if doc.arena_chunks_freed == 0 {
        return Err("arena_chunks_freed = 0: no grace period ever completed".into());
    }
    if doc.arena_chunks_freed > doc.arena_chunks_retired {
        return Err(format!(
            "freed {} > retired {}: reclamation accounting broken",
            doc.arena_chunks_freed, doc.arena_chunks_retired
        ));
    }
    if doc.arena_epoch_advances == 0 {
        return Err("arena_epoch_advances = 0 despite completed grace periods".into());
    }
    // Gate 4 — conservation: the final drain recovers exactly the
    // resident set (the parked majority was consumed, not lost).
    if doc.drained != doc.resident {
        return Err(format!(
            "drained {} buckets but {} were resident",
            doc.drained, doc.resident
        ));
    }
    Ok(())
}

/// Directory receiving `BENCH_arena_churn.json`: `WAFL_BENCH_ROOT` if
/// set (the CI smoke run points it at a temp dir), else the repo root.
fn bench_root() -> std::path::PathBuf {
    match std::env::var_os("WAFL_BENCH_ROOT") {
        Some(d) => d.into(),
        None => std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../.."),
    }
}

fn run_validate(path: &str) -> ! {
    let raw = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("exp_arena_churn: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc: ChurnDoc = match serde_json::from_str(&raw) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("exp_arena_churn: {path} does not parse as {SCHEMA}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_arena_churn: {path} invalid: {msg}");
        std::process::exit(1);
    }
    println!(
        "{path}: valid {SCHEMA} (peak {} chunks, post-shrink {}, {} reuse hits, {} freed)",
        doc.peak_chunks, doc.post_shrink_chunks, doc.arena_reuse_hits, doc.arena_chunks_freed
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) == Some("--validate") {
        match args.get(2) {
            Some(path) => run_validate(path),
            None => {
                eprintln!("usage: exp_arena_churn [--validate <path>]");
                std::process::exit(2);
            }
        }
    }

    let quick = std::env::var_os("WAFL_BENCH_QUICK").is_some();
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    let doc = run(quick, cpus);
    if let Err(msg) = validate(&doc) {
        eprintln!("exp_arena_churn: produced record fails validation: {msg}");
        std::process::exit(1);
    }

    let mut t = FigureTable::new(
        "exp_arena_churn",
        "bounded-arena memory plateau under grow/churn/shrink",
    );
    t.row_measured("peak live chunks", doc.peak_chunks as f64, "chunks");
    t.row_measured(
        "post-shrink live chunks",
        doc.post_shrink_chunks as f64,
        "chunks",
    );
    t.row_measured("fresh mints", doc.arena_fresh_mints as f64, "nodes");
    t.row_measured("reuse hits", doc.arena_reuse_hits as f64, "nodes");
    t.row_measured("donations", doc.arena_donations as f64, "nodes");
    t.row_measured("chunks retired", doc.arena_chunks_retired as f64, "chunks");
    t.row_measured("chunks freed", doc.arena_chunks_freed as f64, "chunks");
    t.row_measured("epoch advances", doc.arena_epoch_advances as f64, "count");
    t.row_measured(
        "overflow fallbacks",
        doc.arena_full_fallbacks as f64,
        "count",
    );

    let root = bench_root();
    let _ = std::fs::create_dir_all(&root);
    let path = root.join("BENCH_arena_churn.json");
    let json = serde_json::to_string_pretty(&doc).expect("doc serializes");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[saved {}]", path.display());
    }
    emit(&t);
    println!(
        "live chunks: peak {} → churn plateau {:?} → post-shrink {} \
         ({} recycled allocs vs {} fresh mints; {} chunks freed)",
        doc.peak_chunks,
        doc.chunk_series,
        doc.post_shrink_chunks,
        doc.arena_reuse_hits + doc.arena_donations,
        doc.arena_fresh_mints,
        doc.arena_chunks_freed
    );
}
