//! Figure 6: infrastructure core usage and throughput with and without
//! infrastructure parallelization, in the presence of parallel cleaner
//! threads (§V-A1).
//!
//! Paper: infrastructure core usage rises from 0.94 to 2.35 cores and
//! throughput rises 106 %.

use wafl_bench::{emit, gain_pct, platform};
use wafl_simsrv::scenario::infra_comparison;
use wafl_simsrv::{FigureTable, WorkloadKind};

fn main() {
    let cfg = platform(WorkloadKind::sequential_write());
    let (serial, parallel) = infra_comparison(&cfg, 4);

    let mut t = FigureTable::new(
        "fig6",
        "sequential write: serialized vs parallel infrastructure (4 cleaners)",
    );
    t.row(
        "infra cores, serialized infrastructure",
        0.94,
        serial.usage.infra_cores(serial.measured_ns),
        "cores",
    );
    t.row(
        "infra cores, parallel infrastructure",
        2.35,
        parallel.usage.infra_cores(parallel.measured_ns),
        "cores",
    );
    t.row(
        "throughput gain from infra parallelization",
        106.0,
        gain_pct(parallel.throughput_ops, serial.throughput_ops),
        "%",
    );
    t.row_measured("throughput serialized", serial.throughput_ops, "ops/s");
    t.row_measured("throughput parallel", parallel.throughput_ops, "ops/s");
    t.row_measured(
        "bucket stalls serialized",
        serial.bucket_stalls as f64,
        "count",
    );
    t.row_measured(
        "bucket stalls parallel",
        parallel.bucket_stalls as f64,
        "count",
    );
    emit(&t);
}
