//! # wafl-bench — the benchmark harness
//!
//! One binary per paper artifact (run with `cargo run --release -p
//! wafl-bench --bin <name>`):
//!
//! | binary | paper artifact |
//! |--------|----------------|
//! | `fig4` | Fig 4 — sequential write, 4 parallelization permutations |
//! | `fig5` | Fig 5 — throughput vs number of cleaner threads |
//! | `fig6` | Fig 6 — infrastructure serial vs parallel core usage |
//! | `fig7` | Fig 7 — random write, 4 parallelization permutations |
//! | `fig8` | Fig 8 — OLTP peak throughput and knee latency vs cleaners |
//! | `fig9` | Fig 9 — throughput vs latency curves, static vs dynamic |
//! | `table_batching` | §V-C — batched inode cleaning on/off |
//! | `ablation_reinsert` | collective vs immediate bucket reinsertion (real allocator) |
//! | `ablation_chunk` | bucket chunk-size sweep |
//! | `probe` | raw calibration dump (not a paper artifact) |
//!
//! Criterion micro-benchmarks (`cargo bench -p wafl-bench`) cover the
//! mechanism-level claims: bucket amortization, bitmap scans, Waffinity
//! scheduling, loose accounting, tetris construction, and CP cycles.
//!
//! Each `fig*` binary prints a paper-vs-measured table and writes the
//! same rows as JSON under `results/` (next to the workspace root, or
//! `$WAFL_RESULTS_DIR`). Set `WAFL_BENCH_QUICK=1` to run shorter
//! simulations (CI-friendly; noisier numbers).

#![warn(missing_docs)]

use wafl_simsrv::{FigureTable, SimConfig, WorkloadKind};

/// Simulation length knobs honoring `WAFL_BENCH_QUICK`.
pub fn configure_duration(cfg: &mut SimConfig) {
    if std::env::var_os("WAFL_BENCH_QUICK").is_some() {
        cfg.duration_ns = 250_000_000;
        cfg.warmup_ns = 50_000_000;
    } else {
        cfg.duration_ns = 1_000_000_000;
        cfg.warmup_ns = 200_000_000;
    }
}

/// The standard 20-core platform config for a workload, with durations
/// applied.
pub fn platform(workload: WorkloadKind) -> SimConfig {
    let mut cfg = SimConfig::paper_platform(workload);
    configure_duration(&mut cfg);
    cfg
}

/// Print a table and persist its JSON under the results directory.
pub fn emit(table: &FigureTable) {
    println!("{}", table.render());
    let dir = std::env::var("WAFL_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    if std::fs::create_dir_all(&dir).is_ok() {
        let path = format!("{dir}/{}.json", table.id);
        if let Err(e) = std::fs::write(&path, table.to_json()) {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("[saved {path}]");
        }
    }
}

/// Percentage gain of `x` over `base`.
pub fn gain_pct(x: f64, base: f64) -> f64 {
    (x / base - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_env_shortens_runs() {
        std::env::set_var("WAFL_BENCH_QUICK", "1");
        let cfg = platform(WorkloadKind::sequential_write());
        assert!(cfg.duration_ns <= 250_000_000);
        std::env::remove_var("WAFL_BENCH_QUICK");
    }

    #[test]
    fn gain_math() {
        assert!((gain_pct(3.74, 1.0) - 274.0).abs() < 1e-9);
    }
}
