//! Property tests: allocator-level invariants under random GET/USE/PUT
//! schedules (DESIGN.md §8.1–8.3, 8.6–8.7).

use alligator::{AllocConfig, Allocator, InlineExecutor, ReinsertPolicy};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::Arc;
use waffinity::{Model, Topology};
use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine, Vbn};
use wafl_metafile::AggregateMap;

fn mk(chunk: usize, reinsert: ReinsertPolicy) -> (Arc<Allocator>, Arc<IoEngine>) {
    let geo = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, 2048)
            .build(),
    );
    let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
    let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
    let mut cfg = AllocConfig::with_chunk(chunk);
    cfg.reinsert = reinsert;
    let alloc = Allocator::new(
        cfg,
        aggmap,
        Arc::clone(&io),
        Arc::new(InlineExecutor),
        Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 2, 4)),
        0,
    );
    (alloc, io)
}

#[derive(Debug, Clone, Copy)]
enum AllocOp {
    /// GET a bucket and USE this many VBNs (possibly 0) before PUT.
    Cycle(u8),
    /// Free this many of the oldest live VBNs through a stage.
    Free(u8),
}

fn ops() -> impl Strategy<Value = Vec<AllocOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..255).prop_map(AllocOp::Cycle),
            (1u8..64).prop_map(AllocOp::Free),
        ],
        1..60,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn no_double_allocation_and_conservation(
        schedule in ops(),
        chunk in 1usize..100,
        collective in prop::bool::ANY,
    ) {
        let reinsert = if collective {
            ReinsertPolicy::Collective
        } else {
            ReinsertPolicy::Immediate
        };
        let (alloc, io) = mk(chunk, reinsert);
        let mut live: Vec<Vbn> = Vec::new();
        let mut ever_used: HashSet<u64> = HashSet::new();
        let mut stage = alloc.new_stage();
        let mut stamp = 1u128;
        for op in schedule {
            match op {
                AllocOp::Cycle(n) => {
                    let Some(mut b) = alloc.get_bucket() else { continue };
                    for _ in 0..n {
                        let Some(v) = b.use_vbn(stamp) else { break };
                        stamp += 1;
                        // A USE'd VBN must never be live twice at once.
                        prop_assert!(
                            !live.contains(&v),
                            "VBN {v:?} allocated while still live"
                        );
                        live.push(v);
                        ever_used.insert(v.0);
                    }
                    alloc.put_bucket(b);
                }
                AllocOp::Free(n) => {
                    for _ in 0..n.min(live.len() as u8) {
                        let v = live.remove(0);
                        alloc.free_vbn(&mut stage, v);
                    }
                }
            }
        }
        alloc.flush_stage(&mut stage);
        // Retire cached buckets so reservations settle, then audit.
        alloc.flush_cache();
        let am = alloc.infra().aggmap();
        am.verify().unwrap();
        let s = alloc.stats();
        s.check_conservation(0).unwrap();
        // Exactly the live VBNs are marked used.
        let used_count = am.geometry().total_vbns() - am.free_count();
        prop_assert_eq!(used_count, live.len() as u64);
        for v in &live {
            prop_assert!(am.is_used(*v));
        }
        // Data integrity: the media holds a nonzero stamp wherever we
        // wrote.
        for v in live.iter().take(20) {
            prop_assert_ne!(io.read_vbn(*v).unwrap(), 0, "written block must be on media");
        }
    }

    #[test]
    fn fresh_bucket_vbns_are_contiguous_and_drive_local(
        chunk in 1usize..64,
        cycles in 1usize..12,
    ) {
        // §IV-C: buckets are contiguous VBN runs on one drive.
        let (alloc, _) = mk(chunk, ReinsertPolicy::Collective);
        let geo = Arc::clone(alloc.infra().aggmap().geometry());
        for _ in 0..cycles {
            let Some(mut b) = alloc.get_bucket() else { break };
            prop_assert!(b.is_contiguous(), "fresh-AA buckets are contiguous");
            prop_assert!(b.len() <= chunk);
            let drive = geo.locate(b.start_vbn()).unwrap().drive;
            let mut prev: Option<Vbn> = None;
            while let Some(v) = b.use_vbn(1) {
                prop_assert_eq!(geo.locate(v).unwrap().drive, drive, "bucket stays on one drive");
                if let Some(p) = prev {
                    prop_assert_eq!(v.0, p.0 + 1, "USE yields consecutive VBNs");
                }
                prev = Some(v);
            }
            alloc.put_bucket(b);
        }
        alloc.drain();
    }

    #[test]
    fn equal_progress_across_drives_under_collective_policy(
        rounds in 1usize..8,
        chunk in 8usize..64,
    ) {
        // DESIGN.md invariant 7: after full consumption of each round,
        // per-drive fill offsets differ by at most one chunk.
        let (alloc, _) = mk(chunk, ReinsertPolicy::Collective);
        let geo = Arc::clone(alloc.infra().aggmap().geometry());
        let mut max_dbn = vec![0u64; 3];
        for _ in 0..rounds {
            for _ in 0..3 {
                let Some(mut b) = alloc.get_bucket() else { break };
                let d = b.drive_in_rg() as usize;
                while let Some(v) = b.use_vbn(2) {
                    max_dbn[d] = max_dbn[d].max(geo.locate(v).unwrap().dbn.0);
                }
                alloc.put_bucket(b);
            }
        }
        alloc.drain();
        let hi = *max_dbn.iter().max().unwrap();
        let lo = *max_dbn.iter().min().unwrap();
        prop_assert!(
            hi - lo <= chunk as u64,
            "drive progress diverged: {max_dbn:?} (chunk {chunk})"
        );
    }
}
