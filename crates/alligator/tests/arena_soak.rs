//! Arena boundedness soak tests: the bucket cache's shared Treiber
//! arena must (a) refuse growth past its configured node cap with typed
//! backpressure — never the PR-3 exhaustion abort — while conserving
//! every bucket through the mutex overflow fallback, and (b) hold a
//! flat live-chunk plateau under churn, recycling nodes instead of
//! minting and returning slabs after a population shrink.
//!
//! CI runs this file with `-C debug-assertions=on` so the arena's
//! internal accounting checks (chunk free counts, tag monotonicity,
//! null-slab pin discipline) are armed during the hammering.

use alligator::arena::CHUNK_NODES;
use alligator::{AllocStats, Bucket, BucketCache, Tetris};
use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};
use std::time::Duration;
use wafl_blockdev::{AaId, DriveId, DriveKind, GeometryBuilder, IoEngine, RaidGroupId, Vbn};

/// A filled 4-VBN bucket with a unique identity (`start`), all sharing
/// one tetris — the cache only looks at identity and shard routing.
fn mk_buckets(n: usize) -> Vec<Bucket> {
    let engine = Arc::new(IoEngine::new(
        Arc::new(
            GeometryBuilder::new()
                .aa_stripes(32)
                .raid_group(1, 1, 1 << 20)
                .build(),
        ),
        DriveKind::Ssd,
    ));
    let t = Tetris::new(RaidGroupId(0), 1, engine, Arc::new(AllocStats::default()));
    (0..n)
        .map(|i| {
            Bucket::new(
                RaidGroupId(0),
                0,
                DriveId((i % 4) as u32),
                AaId {
                    rg: RaidGroupId(0),
                    index: 0,
                },
                (i as u64 * 64..i as u64 * 64 + 4).map(Vbn).collect(),
                0,
                Arc::clone(&t),
                0,
            )
        })
        .collect()
}

/// Regression for the exhaustion aborts: filling a cache whose arena is
/// capped at a single chunk with 3× more buckets must not panic — the
/// overage rides the mutex overflow queue (`ArenaFull` backpressure),
/// every bucket survives the episode, and once the queue drains the
/// lock-free path resumes.
#[test]
fn tiny_capped_arena_backpressures_instead_of_aborting() {
    const POPULATION: usize = 3 * CHUNK_NODES;
    let stats = Arc::new(AllocStats::default());
    let cache = BucketCache::with_shards_capped(2, CHUNK_NODES, Arc::clone(&stats));
    assert_eq!(cache.arena().capacity(), CHUNK_NODES);

    let mut buckets = mk_buckets(POPULATION);
    let ids: HashSet<u64> = buckets.iter().map(|b| b.start_vbn().0).collect();
    // Half through single inserts, half through a collective round, so
    // both the `insert` and `insert_all` fallback paths see the cap.
    let tail = buckets.split_off(POPULATION / 2);
    for b in buckets {
        cache.insert(b);
    }
    cache.insert_all(tail);
    assert_eq!(cache.len(), POPULATION, "a bucket was dropped at the cap");
    let snap = stats.snapshot();
    assert!(
        snap.arena_full_fallbacks > 0,
        "a 3x-overcommitted arena must have taken the overflow fallback"
    );

    // Conservation through the episode: every identity drains exactly
    // once, in spite of the stack/queue split.
    let mut drained = HashSet::new();
    while let Some(b) = cache.try_get() {
        assert!(drained.insert(b.start_vbn().0), "duplicate bucket");
    }
    assert_eq!(drained, ids, "buckets lost under ArenaFull backpressure");

    // The episode over (nodes freed, queue empty), the lock-free path
    // must work again: a chunk's worth of reinserts then lands on the
    // stack without growing the fallback count.
    let before = stats.snapshot().arena_full_fallbacks;
    cache.insert_all(mk_buckets(CHUNK_NODES));
    assert_eq!(cache.len(), CHUNK_NODES);
    assert_eq!(
        stats.snapshot().arena_full_fallbacks,
        before,
        "recovered arena still taking the mutex fallback"
    );
}

/// Memory-boundedness soak: grow the population to a multi-chunk
/// working set, churn it across threads (steady-state must recycle
/// nodes, not mint), then shrink and let maintenance reclaim — the
/// live-chunk level must fall below its peak and the peak itself must
/// match the working set, not the op count.
#[test]
fn churn_soak_holds_a_flat_chunk_plateau_and_reclaims_on_shrink() {
    const THREADS: usize = 8;
    const ITERS: usize = 250;
    const POPULATION: usize = 4 * CHUNK_NODES; // 4 chunks at peak
    const RESIDENT: usize = CHUNK_NODES / 2; // working set after shrink

    let stats = Arc::new(AllocStats::default());
    let cache = Arc::new(BucketCache::with_shards_capped(4, 0, Arc::clone(&stats)));

    // Grow: the full population mints its chunks.
    cache.insert_all(mk_buckets(POPULATION));
    let peak = cache.arena().chunks_live();
    assert_eq!(peak, POPULATION / CHUNK_NODES, "grow phase chunk count");

    // Shrink: drain down to the resident working set.
    let mut parked = Vec::new();
    while cache.len() > RESIDENT {
        parked.push(cache.try_get().expect("len > 0"));
    }

    // Churn the resident set: GET, occasionally hold, reinsert —
    // singles and collective rounds (the latter run arena maintenance
    // in-band, as production refills do).
    let mints_before_churn = stats.snapshot().arena_fresh_mints;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut held = Vec::new();
                for iter in 0..ITERS {
                    if let Some(b) = cache.get_timeout_from(i, Duration::from_millis(50)) {
                        held.push(b);
                    }
                    // Deterministic per-thread cadence: reinsert the
                    // hoard every few iterations, alternating between
                    // the single and collective paths.
                    if iter % 4 == 3 || held.len() >= 4 {
                        if iter % 8 < 4 {
                            for b in held.drain(..) {
                                cache.insert(b);
                            }
                        } else {
                            cache.insert_all(std::mem::take(&mut held));
                        }
                    }
                }
                for b in held {
                    cache.insert(b);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(cache.len(), RESIDENT, "churn lost a bucket");

    let snap = stats.snapshot();
    assert!(
        snap.arena_reuse_hits + snap.arena_donations > 0,
        "steady-state churn must recycle nodes"
    );
    // Plateau: churning a half-chunk working set may mint at most one
    // further chunk beyond the grow-phase peak (a node is transiently
    // in flight per thread), never one per operation.
    assert!(
        snap.arena_fresh_mints - mints_before_churn <= CHUNK_NODES as u64,
        "churn minted {} fresh nodes — the arena is growing per-op",
        snap.arena_fresh_mints - mints_before_churn
    );
    assert!(
        // ordering: post-join gauge read; staleness is acceptable.
        stats.arena_chunks_live.load(Ordering::Relaxed) as usize <= peak + 1,
        "live chunks exceeded the grow-phase peak"
    );

    // Reclaim: with the population shrunk, maintenance rounds (each
    // advances the reclamation epoch once) must retire and then free
    // the now-empty chunks — the level drops below the peak.
    drop(parked);
    for _ in 0..6 {
        cache.arena().maintain();
    }
    let live = cache.arena().chunks_live();
    assert!(
        live < peak,
        "no reclamation: {live} chunks still live after shrink (peak {peak})"
    );
    let snap = stats.snapshot();
    assert!(snap.arena_chunks_retired > 0, "no chunk was ever retired");
    assert!(
        snap.arena_chunks_freed > 0,
        "retired chunks never finished their grace period"
    );
    // The survivors still serve traffic: a full drain conserves the
    // resident set.
    let mut n = 0;
    while cache.try_get().is_some() {
        n += 1;
    }
    assert_eq!(n, RESIDENT);
}
