//! Allocator integration tests: full Figure 2 cycles against the real
//! substrate, immediate-refill mode, and starvation/exhaustion edges.

use alligator::{AllocConfig, Allocator, InlineExecutor, PoolExecutor, ReinsertPolicy};
use std::sync::Arc;
use waffinity::{Affinity, Model, Topology, WaffinityPool};
use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine, Vbn};
use wafl_metafile::AggregateMap;

fn stack(cfg: AllocConfig, blocks_per_drive: u64) -> (Arc<Allocator>, Arc<IoEngine>) {
    let geo = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(3, 1, blocks_per_drive)
            .build(),
    );
    let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
    let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
    let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
    let a = Allocator::new(
        cfg,
        aggmap,
        Arc::clone(&io),
        Arc::new(InlineExecutor),
        topo,
        0,
    );
    (a, io)
}

#[test]
fn figure2_cycle_step_by_step() {
    // Walk the exact steps of Figure 2 and observe each one.
    let (alloc, io) = stack(AllocConfig::with_chunk(16), 4096);

    // Step 1: infrastructure fills buckets into the bucket cache.
    alloc.request_refill();
    alloc.drain();
    assert!(alloc.cache().len() >= 3, "one bucket per data drive");

    // Step 2: GET.
    let mut bucket = alloc.get_bucket().expect("cache warm");
    let before_stats = alloc.stats();
    assert!(before_stats.gets >= 1);

    // Step 3: USE assigns VBNs and records buffers for the tetris.
    let mut vbns = Vec::new();
    while let Some(v) = bucket.use_vbn(0xD00D + vbns.len() as u128) {
        vbns.push(v);
    }
    assert_eq!(vbns.len(), 16);

    // Steps 4–5: PUT deposits into the tetris and queues the commit.
    alloc.put_bucket(bucket);

    // Step 4 completes when the tetris's sibling buckets finish: retire
    // the cached siblings to close the round.
    // Step 6: infrastructure commits the metafile updates.
    alloc.flush_cache();
    let s = alloc.stats();
    assert_eq!(s.vbns_committed, 16);
    assert!(s.tetris_ios >= 1, "the round's write I/O was sent to RAID");
    for (i, v) in vbns.iter().enumerate() {
        assert_eq!(io.read_vbn(*v).unwrap(), 0xD00D + i as u128);
        assert!(alloc.infra().aggmap().is_used(*v));
    }
    alloc.infra().aggmap().verify().unwrap();
}

#[test]
fn immediate_mode_full_cycle_is_functionally_correct() {
    let mut cfg = AllocConfig::with_chunk(32);
    cfg.reinsert = ReinsertPolicy::Immediate;
    let (alloc, io) = stack(cfg, 4096);
    let mut total = 0u64;
    for round in 0..20 {
        let Some(mut b) = alloc.get_bucket() else {
            break;
        };
        while b.use_vbn(round as u128 + 1).is_some() {
            total += 1;
        }
        alloc.put_bucket(b);
        alloc.drain();
    }
    assert!(total >= 20 * 32);
    // Retire cached buckets (plain PUT would re-refill forever in
    // Immediate mode), then audit.
    alloc.flush_cache();
    alloc.stats().check_conservation(0).unwrap();
    io.scrub().unwrap();
}

#[test]
fn frees_reopen_an_exhausted_aggregate() {
    let (alloc, _) = stack(AllocConfig::with_chunk(64), 128);
    let mut live: Vec<Vbn> = Vec::new();
    while let Some(mut b) = alloc.get_bucket() {
        while let Some(v) = b.use_vbn(7) {
            live.push(v);
        }
        alloc.put_bucket(b);
    }
    alloc.drain();
    assert_eq!(live.len(), 3 * 128, "every block consumed");
    assert!(alloc.get_bucket().is_none());
    // Free half; allocation resumes.
    let mut stage = alloc.new_stage();
    for v in live.drain(..192) {
        alloc.free_vbn(&mut stage, v);
    }
    alloc.flush_stage(&mut stage);
    alloc.drain();
    let b = alloc.get_bucket().expect("space recovered");
    assert!(!b.is_empty());
    alloc.put_bucket(b);
    alloc.drain();
    alloc.infra().aggmap().verify().unwrap();
}

#[test]
fn parallel_infra_uses_multiple_range_affinities() {
    let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 8));
    let pool = Arc::new(WaffinityPool::new(Arc::clone(&topo), 2));
    let geo = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(512)
            // Big drives so commit messages span several metafile blocks.
            .raid_group(3, 1, 400_000)
            .build(),
    );
    let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
    let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
    let alloc = Allocator::new(
        AllocConfig::with_chunk(64),
        aggmap,
        io,
        Arc::new(PoolExecutor::new(Arc::clone(&pool))),
        Arc::clone(&topo),
        0,
    );
    for _ in 0..40 {
        let Some(mut b) = alloc.get_bucket() else {
            break;
        };
        while b.use_vbn(1).is_some() {}
        alloc.put_bucket(b);
    }
    alloc.drain();
    let used_ranges = (0..8)
        .filter(|&r| pool.messages_in(Affinity::AggrVbnRange(0, r)) > 0)
        .count();
    assert!(
        used_ranges >= 2,
        "commits for different metafile regions spread over ranges: {used_ranges}"
    );
    assert_eq!(pool.messages_in(Affinity::Serial), 0);
}

#[test]
fn get_timeout_starvation_returns_none_quickly() {
    // An exhausted tiny aggregate: GET must give up, not hang.
    let (alloc, _) = stack(AllocConfig::with_chunk(64), 64);
    let mut all = Vec::new();
    while let Some(mut b) = alloc.get_bucket() {
        while let Some(v) = b.use_vbn(1) {
            all.push(v);
        }
        alloc.put_bucket(b);
    }
    alloc.drain();
    let t0 = std::time::Instant::now();
    assert!(alloc.get_bucket().is_none());
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(2),
        "exhaustion detection is prompt"
    );
}

#[test]
fn stats_snapshot_serializes() {
    let (alloc, _) = stack(AllocConfig::with_chunk(8), 1024);
    let mut b = alloc.get_bucket().unwrap();
    b.use_vbn(1);
    alloc.put_bucket(b);
    alloc.drain();
    let s = alloc.stats();
    let json = serde_json::to_string(&s).unwrap();
    assert!(json.contains("vbns_committed"));
}
