//! Sharded bucket-cache stress tests: N cleaner threads hammering M
//! buckets across shards must never lose or duplicate a bucket — through
//! the home-shard fast path (a lock-free CAS pop on the default layout),
//! the work-steal path, batched `get_many` pops, concurrent collective
//! `insert_all` rounds, and `get_timeout` expiry under scarcity. Every
//! scenario runs against both layouts: the Treiber-stack hot path and
//! the mutex+condvar baseline (`with_shards_mutex`).
//!
//! CI runs this file with `-C debug-assertions=on` so the cache's and
//! Treiber stack's internal invariant checks (fill accounting, arena
//! bounds, tag monotonicity) are armed during the hammering.

use alligator::{AllocConfig, AllocStats, BucketCache, Infrastructure, TreiberStack};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;
use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine};
use wafl_metafile::AggregateMap;

/// Build a cache with `shards` shards over `data_drives` drives and fill
/// it with `rounds` collective refill rounds (one bucket per drive per
/// round). Returns the cache, its stats, and the identity set of every
/// bucket in circulation (start VBNs are unique per bucket).
fn warm_cache(
    data_drives: u32,
    rounds: usize,
    shards: usize,
    lockfree: bool,
) -> (Arc<BucketCache>, Arc<AllocStats>, HashSet<u64>) {
    let geo = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(data_drives, 1, 65_536)
            .build(),
    );
    let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
    let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
    let stats = Arc::new(AllocStats::default());
    let cache = Arc::new(if lockfree {
        BucketCache::with_shards(shards, Arc::clone(&stats))
    } else {
        BucketCache::with_shards_mutex(shards, Arc::clone(&stats))
    });
    assert_eq!(cache.is_lock_free(), lockfree);
    let infra = Infrastructure::new(AllocConfig::with_chunk(8), aggmap, io, Arc::clone(&stats));
    for _ in 0..rounds {
        assert_eq!(infra.refill_round(&cache), data_drives as usize);
    }
    // Drain once to learn every bucket's identity, then reinsert the
    // whole population collectively (§IV-D).
    let mut ids = HashSet::new();
    let mut all = Vec::new();
    while let Some(b) = cache.try_get() {
        assert!(ids.insert(b.start_vbn().0), "refill produced a duplicate");
        all.push(b);
    }
    assert_eq!(ids.len(), data_drives as usize * rounds);
    cache.insert_all(all);
    (cache, stats, ids)
}

/// N threads GET (home fast path + steals), hold, and reinsert; no
/// bucket may be lost, duplicated, or held by two threads at once.
fn no_bucket_lost_or_duplicated(lockfree: bool) {
    const THREADS: usize = 12;
    const ITERS: usize = 600;
    let (cache, stats, ids) = warm_cache(8, 3, 8, lockfree); // 24 buckets, 8 shards
    let population = ids.len();

    // Any bucket held by two threads at once trips this set.
    let in_flight: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let successes = Arc::new(AtomicU64::new(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let cache = Arc::clone(&cache);
            let in_flight = Arc::clone(&in_flight);
            let successes = Arc::clone(&successes);
            let timeouts = Arc::clone(&timeouts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for iter in 0..ITERS {
                    match cache.get_timeout_from(i, Duration::from_millis(20)) {
                        Some(b) => {
                            let id = b.start_vbn().0;
                            assert!(
                                in_flight.lock().unwrap().insert(id),
                                "bucket {id} held by two threads at once"
                            );
                            if iter % 8 == i % 8 {
                                // Hold across a reschedule so other
                                // cleaners miss their home shard and
                                // must steal.
                                std::thread::yield_now();
                            }
                            assert!(in_flight.lock().unwrap().remove(&id));
                            cache.insert(b);
                            // ordering: statistics counter; staleness is acceptable.
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            // ordering: statistics counter; staleness is acceptable.
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Conservation: every bucket is back in the cache, each exactly once.
    assert_eq!(cache.len(), population);
    let mut drained = HashSet::new();
    while let Some(b) = cache.try_get() {
        assert!(
            drained.insert(b.start_vbn().0),
            "bucket {} came back twice",
            b.start_vbn().0
        );
    }
    assert_eq!(drained, ids, "the surviving population changed");
    assert!(cache.is_empty());

    // Accounting: every successful GET hit exactly one of the fast or
    // steal counters (the warm-up drain above also popped; include it).
    let s = stats.snapshot();
    // ordering: statistics counter; staleness is acceptable.
    let pops = successes.load(Ordering::Relaxed) + 2 * population as u64;
    assert_eq!(s.cache_get_fast + s.cache_get_steal, pops);
    assert!(
        s.cache_get_steal > 0,
        "12 threads over 8 shards never stole — steal path unexercised"
    );
    // 24 buckets among 12 threads: the cache never runs dry.
    // ordering: test readback.
    assert_eq!(timeouts.load(Ordering::Relaxed), 0);
}

#[test]
fn stress_no_bucket_lost_or_duplicated_lockfree() {
    no_bucket_lost_or_duplicated(true);
}

#[test]
fn stress_no_bucket_lost_or_duplicated_mutex() {
    no_bucket_lost_or_duplicated(false);
}

/// Getters run batched `get_many` pops while a publisher keeps feeding
/// retired buckets back through collective `insert_all` rounds — the
/// §IV-D visibility barrier runs concurrently with lock-free pops, and
/// nothing may be lost or duplicated across the gate.
fn concurrent_insert_all_preserves_population(lockfree: bool) {
    const GETTERS: usize = 6;
    const DRIVES: u32 = 8;
    const ROUNDS: usize = 2;
    const TARGET_ROUNDS: u64 = 120;
    let (cache, stats, ids) = warm_cache(DRIVES, ROUNDS, DRIVES as usize, lockfree);

    // Workers retire what they pop here; the publisher re-publishes it
    // in drive-sized collective rounds.
    let retired: Arc<Mutex<Vec<alligator::Bucket>>> = Arc::new(Mutex::new(Vec::new()));
    let stop = Arc::new(AtomicBool::new(false));
    let rounds_published = Arc::new(AtomicU64::new(0));
    let in_flight: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));

    let publisher = {
        let cache = Arc::clone(&cache);
        let retired = Arc::clone(&retired);
        let stop = Arc::clone(&stop);
        let rounds_published = Arc::clone(&rounds_published);
        std::thread::spawn(move || loop {
            let batch: Vec<_> = {
                let mut r = retired.lock().unwrap();
                if r.len() >= DRIVES as usize {
                    r.drain(..DRIVES as usize).collect()
                // ordering: shutdown flag; no data is published through it.
                } else if stop.load(Ordering::Relaxed) {
                    r.drain(..).collect()
                } else {
                    drop(r);
                    std::thread::yield_now();
                    continue;
                }
            };
            // ordering: shutdown flag; no data is published through it.
            let done = stop.load(Ordering::Relaxed) && batch.is_empty();
            if !batch.is_empty() {
                cache.insert_all(batch);
                // ordering: statistics counter; staleness is acceptable.
                rounds_published.fetch_add(1, Ordering::Relaxed);
            }
            if done {
                break;
            }
        })
    };

    let getters: Vec<_> = (0..GETTERS)
        .map(|i| {
            let cache = Arc::clone(&cache);
            let retired = Arc::clone(&retired);
            let stop = Arc::clone(&stop);
            let rounds_published = Arc::clone(&rounds_published);
            let in_flight = Arc::clone(&in_flight);
            std::thread::spawn(move || {
                // ordering: statistics counter; staleness is acceptable.
                while rounds_published.load(Ordering::Relaxed) < TARGET_ROUNDS
                    // ordering: shutdown flag; no data is published through it.
                    && !stop.load(Ordering::Relaxed)
                {
                    let got = cache.get_many_from(i, 3);
                    if got.is_empty() {
                        std::thread::yield_now();
                        continue;
                    }
                    {
                        let mut f = in_flight.lock().unwrap();
                        for b in &got {
                            assert!(
                                f.insert(b.start_vbn().0),
                                "bucket {} held twice",
                                b.start_vbn().0
                            );
                        }
                    }
                    {
                        let mut f = in_flight.lock().unwrap();
                        for b in &got {
                            assert!(f.remove(&b.start_vbn().0));
                        }
                    }
                    retired.lock().unwrap().extend(got);
                }
            })
        })
        .collect();
    for h in getters {
        h.join().unwrap();
    }
    // ordering: shutdown flag; no data is published through it.
    stop.store(true, Ordering::Relaxed);
    publisher.join().unwrap();

    // Conservation across every concurrent insert_all round.
    assert_eq!(cache.len(), ids.len());
    let mut drained = HashSet::new();
    while let Some(b) = cache.try_get() {
        assert!(
            drained.insert(b.start_vbn().0),
            "bucket {} came back twice",
            b.start_vbn().0
        );
    }
    assert_eq!(drained, ids, "the surviving population changed");
    let s = stats.snapshot();
    assert!(
        s.cache_get_fast + s.cache_get_steal > 0,
        "getters never popped"
    );
}

#[test]
fn stress_concurrent_insert_all_lockfree() {
    concurrent_insert_all_preserves_population(true);
}

#[test]
fn stress_concurrent_insert_all_mutex() {
    concurrent_insert_all_preserves_population(false);
}

/// Batched pops on a deep single shard: `get_many` must return whole
/// buckets exactly once each and actually batch (one synchronization
/// hands out several same-generation buckets).
fn batched_get_many_conserves(lockfree: bool) {
    const THREADS: usize = 4;
    const DRIVES: u32 = 8;
    let (cache, stats, ids) = warm_cache(DRIVES, 1, 1, lockfree); // 8 buckets, one shard
    let population = ids.len();

    let held: Arc<Mutex<Vec<alligator::Bucket>>> = Arc::new(Mutex::new(Vec::new()));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let cache = Arc::clone(&cache);
            let held = Arc::clone(&held);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                loop {
                    let got = cache.get_many_from(i, 3);
                    if got.is_empty() {
                        break;
                    }
                    held.lock().unwrap().extend(got);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert!(cache.is_empty());
    let held = Arc::try_unwrap(held).unwrap().into_inner().unwrap();
    assert_eq!(held.len(), population, "buckets lost or duplicated");
    let drained: HashSet<u64> = held.iter().map(|b| b.start_vbn().0).collect();
    assert_eq!(drained, ids);
    let s = stats.snapshot();
    assert!(
        s.cache_get_batched > 0,
        "a deep single shard of one generation must yield batches"
    );
}

#[test]
fn stress_batched_get_many_conserves_lockfree() {
    batched_get_many_conserves(true);
}

#[test]
fn stress_batched_get_many_conserves_mutex() {
    batched_get_many_conserves(false);
}

#[test]
fn stress_get_timeout_expires_under_scarcity() {
    const THREADS: usize = 6;
    const ITERS: usize = 40;
    let (cache, stats, ids) = warm_cache(2, 1, 2, true); // 2 buckets, 6 threads

    // An empty-adjacent cache still answers a bounded-time GET miss.
    let successes = Arc::new(AtomicU64::new(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let cache = Arc::clone(&cache);
            let successes = Arc::clone(&successes);
            let timeouts = Arc::clone(&timeouts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..ITERS {
                    match cache.get_timeout_from(i, Duration::from_millis(1)) {
                        Some(b) => {
                            // Hold well past the other getters' timeout.
                            std::thread::sleep(Duration::from_millis(3));
                            cache.insert(b);
                            // ordering: statistics counter; staleness is acceptable.
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            // ordering: statistics counter; staleness is acceptable.
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert!(
        // ordering: statistics counter; staleness is acceptable.
        timeouts.load(Ordering::Relaxed) > 0,
        "6 threads over 2 long-held buckets must see expiries"
    );
    // ordering: test readback.
    assert!(successes.load(Ordering::Relaxed) > 0);

    // Expiries lose nothing: both buckets are back.
    let mut drained = HashSet::new();
    while let Some(b) = cache.try_get() {
        drained.insert(b.start_vbn().0);
    }
    assert_eq!(drained, ids);
    let s = stats.snapshot();
    assert!(
        // ordering: statistics counter; staleness is acceptable.
        s.cache_blocked_gets >= timeouts.load(Ordering::Relaxed),
        "every expiry went through the blocked-GET path"
    );
}

/// ABA regression on the raw Treiber stack: threads race pop/push-back
/// cycles designed to recycle nodes under each other's CAS windows (pop
/// A, pop B, push A back — the classic ABA shape). The tagged head and
/// per-pop tag bump must keep the element multiset intact; under
/// `debug-assertions` the arena's internal checks are armed too.
#[test]
fn stress_treiber_aba_regression() {
    const THREADS: usize = 8;
    const ITERS: usize = 2_000;
    const POPULATION: u64 = 16;
    let stack = Arc::new(TreiberStack::new());
    for v in 0..POPULATION {
        stack.push(v);
    }
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let stack = Arc::clone(&stack);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for iter in 0..ITERS {
                    // Alternate single pops with two-pop/reordered-push
                    // cycles so a slow thread's stale head snapshot sees
                    // the same node address reappear with new contents.
                    if (iter + i) % 3 == 0 {
                        let a = stack.pop();
                        let b = stack.pop();
                        if let Some(a) = a {
                            stack.push(a);
                        }
                        if let Some(b) = b {
                            stack.push(b);
                        }
                    } else {
                        let got = stack.pop_many(2);
                        if iter % 2 == 0 {
                            std::thread::yield_now();
                        }
                        stack.push_many(got);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut survivors: Vec<u64> = std::iter::from_fn(|| stack.pop()).collect();
    survivors.sort_unstable();
    assert_eq!(
        survivors,
        (0..POPULATION).collect::<Vec<_>>(),
        "ABA recycling corrupted the stack"
    );
    assert!(stack.is_empty());
}
