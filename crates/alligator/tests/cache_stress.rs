//! Sharded bucket-cache stress tests: N cleaner threads hammering M
//! buckets across shards must never lose or duplicate a bucket — through
//! the home-shard fast path, the work-steal path, and `get_timeout`
//! expiry under scarcity.

use alligator::{AllocConfig, AllocStats, BucketCache, Infrastructure};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::time::Duration;
use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine};
use wafl_metafile::AggregateMap;

/// Build a sharded cache over `data_drives` drives and fill it with
/// `rounds` collective refill rounds (one bucket per drive per round).
/// Returns the cache, its stats, and the identity set of every bucket
/// in circulation (start VBNs are unique per bucket).
fn warm_cache(
    data_drives: u32,
    rounds: usize,
) -> (Arc<BucketCache>, Arc<AllocStats>, HashSet<u64>) {
    let geo = Arc::new(
        GeometryBuilder::new()
            .aa_stripes(64)
            .raid_group(data_drives, 1, 65_536)
            .build(),
    );
    let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
    let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
    let stats = Arc::new(AllocStats::default());
    let cache = Arc::new(BucketCache::with_shards(
        data_drives as usize,
        Arc::clone(&stats),
    ));
    let infra = Infrastructure::new(AllocConfig::with_chunk(8), aggmap, io, Arc::clone(&stats));
    for _ in 0..rounds {
        assert_eq!(infra.refill_round(&cache), data_drives as usize);
    }
    // Drain once to learn every bucket's identity, then reinsert the
    // whole population collectively (§IV-D).
    let mut ids = HashSet::new();
    let mut all = Vec::new();
    while let Some(b) = cache.try_get() {
        assert!(ids.insert(b.start_vbn().0), "refill produced a duplicate");
        all.push(b);
    }
    assert_eq!(ids.len(), data_drives as usize * rounds);
    cache.insert_all(all);
    (cache, stats, ids)
}

#[test]
fn stress_no_bucket_lost_or_duplicated() {
    const THREADS: usize = 12;
    const ITERS: usize = 600;
    let (cache, stats, ids) = warm_cache(8, 3); // 24 buckets, 8 shards
    let population = ids.len();

    // Any bucket held by two threads at once trips this set.
    let in_flight: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let successes = Arc::new(AtomicU64::new(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let cache = Arc::clone(&cache);
            let in_flight = Arc::clone(&in_flight);
            let successes = Arc::clone(&successes);
            let timeouts = Arc::clone(&timeouts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for iter in 0..ITERS {
                    match cache.get_timeout_from(i, Duration::from_millis(20)) {
                        Some(b) => {
                            let id = b.start_vbn().0;
                            assert!(
                                in_flight.lock().unwrap().insert(id),
                                "bucket {id} held by two threads at once"
                            );
                            if iter % 8 == i % 8 {
                                // Hold across a reschedule so other
                                // cleaners miss their home shard and
                                // must steal.
                                std::thread::yield_now();
                            }
                            assert!(in_flight.lock().unwrap().remove(&id));
                            cache.insert(b);
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Conservation: every bucket is back in the cache, each exactly once.
    assert_eq!(cache.len(), population);
    let mut drained = HashSet::new();
    while let Some(b) = cache.try_get() {
        assert!(
            drained.insert(b.start_vbn().0),
            "bucket {} came back twice",
            b.start_vbn().0
        );
    }
    assert_eq!(drained, ids, "the surviving population changed");
    assert!(cache.is_empty());

    // Accounting: every successful GET hit exactly one of the fast or
    // steal counters (the warm-up drain above also popped; include it).
    let s = stats.snapshot();
    let pops = successes.load(Ordering::Relaxed) + 2 * population as u64;
    assert_eq!(s.cache_get_fast + s.cache_get_steal, pops);
    assert!(
        s.cache_get_steal > 0,
        "12 threads over 8 shards never stole — steal path unexercised"
    );
    // 24 buckets among 12 threads: the cache never runs dry.
    assert_eq!(timeouts.load(Ordering::Relaxed), 0);
}

#[test]
fn stress_get_timeout_expires_under_scarcity() {
    const THREADS: usize = 6;
    const ITERS: usize = 40;
    let (cache, stats, ids) = warm_cache(2, 1); // 2 buckets, 6 threads

    // An empty-adjacent cache still answers a bounded-time GET miss.
    let successes = Arc::new(AtomicU64::new(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|i| {
            let cache = Arc::clone(&cache);
            let successes = Arc::clone(&successes);
            let timeouts = Arc::clone(&timeouts);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..ITERS {
                    match cache.get_timeout_from(i, Duration::from_millis(1)) {
                        Some(b) => {
                            // Hold well past the other getters' timeout.
                            std::thread::sleep(Duration::from_millis(3));
                            cache.insert(b);
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        None => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert!(
        timeouts.load(Ordering::Relaxed) > 0,
        "6 threads over 2 long-held buckets must see expiries"
    );
    assert!(successes.load(Ordering::Relaxed) > 0);

    // Expiries lose nothing: both buckets are back.
    let mut drained = HashSet::new();
    while let Some(b) = cache.try_get() {
        drained.insert(b.start_vbn().0);
    }
    assert_eq!(drained, ids);
    let s = stats.snapshot();
    assert!(
        s.cache_blocked_gets >= timeouts.load(Ordering::Relaxed),
        "every expiry went through the blocked-GET path"
    );
}
