//! # alligator — the White Alligator scalable write allocator
//!
//! This crate is the reproduction of the paper's primary contribution
//! (§IV): a write-allocation architecture that scales on many cores by
//! separating
//!
//! * the **infrastructure** ([`infra`]) — which "processes allocation
//!   metafiles to find available VBNs that meet the write allocator's
//!   objectives and uses them to construct a set of buckets", running as
//!   messages in Waffinity so the scheduler coordinates concurrent
//!   metadata access — from
//! * the **cleaner threads** (clients of this crate, see the `wafl`
//!   crate), which assign VBNs to dirty buffers through a narrow MP-safe
//!   API and "do not directly perform any metafile accesses".
//!
//! ## The API (Figure 2)
//!
//! The API is composed of **GET**, **USE**, and **PUT** operations that
//! execute in the context of cleaner threads:
//!
//! 1. the infrastructure enqueues filled buckets to the lock-protected
//!    **bucket cache** ([`cache::BucketCache`]);
//! 2. **GET** ([`Allocator::get_bucket`]) acquires a bucket of VBNs;
//! 3. **USE** ([`bucket::Bucket::use_vbn`]) assigns one VBN from the
//!    bucket to a dirty buffer and enqueues the buffer toward the
//!    per-RAID-group **tetris** ([`tetris::Tetris`]);
//! 4. when a tetris has collected all its outstanding buckets, the write
//!    I/O is constructed and sent to RAID;
//! 5. **PUT** ([`Allocator::put_bucket`]) returns the bucket to the
//!    **used bucket queue**;
//! 6. the infrastructure drains the used bucket queue and updates
//!    allocation metafiles to reflect the consumed VBNs, then refills the
//!    bucket.
//!
//! A parallel path handles **frees** of overwritten VBNs through
//! [`stage::Stage`] structures ("analogous to a bucket").
//!
//! ## Configuration knobs (used by the evaluation)
//!
//! [`config::AllocConfig`] exposes the paper's experimental dimensions:
//! chunk size (bucket length, §IV-C), serialized vs parallel
//! infrastructure (Figs 4, 6, 7), and collective vs immediate bucket
//! reinsertion (the equal-progress ablation).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocator;
pub mod arena;
pub mod bucket;
pub mod cache;
pub mod config;
pub mod executor;
pub mod infra;
pub mod stage;
pub mod stats;
pub mod sync;
pub mod tetris;
pub mod treiber;

pub use allocator::Allocator;
pub use arena::{Arena, ArenaFull};
pub use bucket::Bucket;
pub use cache::BucketCache;
pub use config::{AllocConfig, InfraMode, ReinsertPolicy};
pub use executor::{Executor, InlineExecutor, InstrumentedExecutor, PoolExecutor};
pub use infra::Infrastructure;
pub use stage::Stage;
pub use stats::{AllocStats, StatsSnapshot};
pub use tetris::Tetris;
pub use treiber::TreiberStack;
