//! Stages: batched frees of overwritten VBNs.
//!
//! "A similar, though simpler, process … occurs for overwritten blocks
//! whose VBNs must be freed in the file system. The cleaner thread stores
//! the freed VBNs to a structure called a stage, which is analogous to a
//! bucket. When a stage is full, the cleaner thread sends a message to the
//! infrastructure to commit those frees to the metafiles" (§IV-A).

use wafl_blockdev::Vbn;

/// A per-cleaner staging buffer for freed VBNs.
#[derive(Debug)]
pub struct Stage {
    frees: Vec<Vbn>,
    capacity: usize,
}

impl Stage {
    /// Empty stage holding up to `capacity` frees before it reports full.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "stage capacity must be positive");
        Self {
            frees: Vec::with_capacity(capacity),
            capacity,
        }
    }

    /// Record a freed VBN. Returns `true` when the stage just became full
    /// and should be committed to the infrastructure.
    #[inline]
    pub fn push(&mut self, vbn: Vbn) -> bool {
        debug_assert!(self.frees.len() < self.capacity, "push to a full stage");
        self.frees.push(vbn);
        self.frees.len() >= self.capacity
    }

    /// Number of staged frees.
    #[inline]
    pub fn len(&self) -> usize {
        self.frees.len()
    }

    /// True when no frees are staged.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.frees.is_empty()
    }

    /// True when the stage is at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.frees.len() >= self.capacity
    }

    /// Drain the staged frees for a commit message, leaving the stage
    /// empty and reusable.
    pub fn drain(&mut self) -> Vec<Vbn> {
        std::mem::replace(&mut self.frees, Vec::with_capacity(self.capacity))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_reports_full() {
        let mut s = Stage::new(3);
        assert!(!s.push(Vbn(1)));
        assert!(!s.push(Vbn(2)));
        assert!(s.push(Vbn(3)), "third push fills a capacity-3 stage");
        assert!(s.is_full());
    }

    #[test]
    fn drain_resets() {
        let mut s = Stage::new(2);
        s.push(Vbn(10));
        s.push(Vbn(20));
        let got = s.drain();
        assert_eq!(got, vec![Vbn(10), Vbn(20)]);
        assert!(s.is_empty());
        assert!(!s.is_full());
        assert!(!s.push(Vbn(30)));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        Stage::new(0);
    }
}
