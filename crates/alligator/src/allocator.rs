//! [`Allocator`] — the facade cleaner threads program against.
//!
//! This type owns the bucket cache and routes infrastructure work (refills
//! and commits) to the configured [`Executor`] under the right Waffinity
//! affinity:
//!
//! * with [`config::InfraMode::Parallel`](crate::config::InfraMode),
//!   messages run in Aggregate-VBN **Range** affinities chosen by the
//!   metafile block they touch, so refills/commits against different
//!   metafile regions parallelize (§IV-B2);
//! * with [`config::InfraMode::Serial`](crate::config::InfraMode), every
//!   message maps to the **Serial** affinity — the pre-White-Alligator
//!   baseline measured in Figures 4, 6, and 7.
//!
//! The cleaner-side operations are exactly the Figure 2 API: GET
//! ([`Allocator::get_bucket`]), USE ([`Bucket::use_vbn`] — no allocator
//! involvement at all), PUT ([`Allocator::put_bucket`]), plus the staged
//! free path ([`Allocator::free_vbn`] / [`Allocator::flush_stage`]).

use crate::bucket::Bucket;
use crate::cache::BucketCache;
use crate::config::{AllocConfig, InfraMode};
use crate::executor::Executor;
use crate::infra::Infrastructure;
use crate::stage::Stage;
use crate::stats::{AllocStats, StatsSnapshot};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use waffinity::{Affinity, Topology};
use wafl_blockdev::{IoEngine, Vbn};
use wafl_metafile::{AggregateMap, BITS_PER_MF_BLOCK};

/// The White Alligator write allocator for one aggregate.
///
/// ```
/// use alligator::{AllocConfig, Allocator, InlineExecutor};
/// use std::sync::Arc;
/// use waffinity::{Model, Topology};
/// use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine};
/// use wafl_metafile::AggregateMap;
///
/// let geo = Arc::new(GeometryBuilder::new().aa_stripes(64).raid_group(3, 1, 4096).build());
/// let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
/// let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
/// let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
/// let alloc = Allocator::new(
///     AllocConfig::with_chunk(64), aggmap, io, Arc::new(InlineExecutor), topo, 0,
/// );
///
/// // The Figure 2 cycle: GET a bucket, USE VBNs, PUT it back.
/// let mut bucket = alloc.get_bucket().unwrap();
/// let v1 = bucket.use_vbn(0xAA).unwrap();
/// let v2 = bucket.use_vbn(0xBB).unwrap();
/// assert_eq!(v2.0, v1.0 + 1, "consecutive USEs get contiguous VBNs");
/// alloc.put_bucket(bucket);
/// alloc.drain();
/// assert_eq!(alloc.stats().vbns_committed, 2);
/// ```
pub struct Allocator {
    cfg: AllocConfig,
    infra: Arc<Infrastructure>,
    cache: Arc<BucketCache>,
    executor: Arc<dyn Executor>,
    topo: Arc<Topology>,
    /// Index of this aggregate in the Waffinity topology.
    aggr: u32,
    /// Deduplicates concurrent async refill requests.
    refill_inflight: Arc<AtomicBool>,
    /// Rotates the affinity shard handed to identity-less GETs
    /// ([`Allocator::get_bucket`]) so they spread over shards instead of
    /// all contending on shard 0.
    anon_rr: AtomicUsize,
    stats: Arc<AllocStats>,
}

impl Allocator {
    /// Assemble an allocator.
    ///
    /// `topo` must contain aggregate index `aggr`; its Range affinities
    /// are used for parallel-infrastructure messages.
    pub fn new(
        cfg: AllocConfig,
        aggmap: Arc<AggregateMap>,
        io: Arc<IoEngine>,
        executor: Arc<dyn Executor>,
        topo: Arc<Topology>,
        aggr: u32,
    ) -> Arc<Self> {
        let stats = Arc::new(AllocStats::default());
        // cache_shards == 0 → one shard per data drive, so every bucket
        // built by a refill round has a dedicated queue and cleaners with
        // distinct affinities never share a lock on the GET fast path.
        let nshards = match cfg.cache_shards {
            0 => aggmap.geometry().total_data_drives() as usize,
            n => n,
        };
        let cache = if cfg.cache_lockfree {
            Arc::new(BucketCache::with_shards_capped(
                nshards,
                cfg.cache_arena_cap,
                Arc::clone(&stats),
            ))
        } else {
            Arc::new(BucketCache::with_shards_mutex(nshards, Arc::clone(&stats)))
        };
        let infra = Infrastructure::new(cfg, aggmap, io, Arc::clone(&stats));
        Arc::new(Self {
            cfg,
            infra,
            cache,
            executor,
            topo,
            aggr,
            refill_inflight: Arc::new(AtomicBool::new(false)),
            anon_rr: AtomicUsize::new(0),
            stats,
        })
    }

    /// The infrastructure half (for inspection and tests).
    #[inline]
    pub fn infra(&self) -> &Arc<Infrastructure> {
        &self.infra
    }

    /// The allocator configuration.
    #[inline]
    pub fn config(&self) -> &AllocConfig {
        &self.cfg
    }

    /// Index of this aggregate in the Waffinity topology (used by callers
    /// that schedule their own Range-affinity messages, e.g. the scrubber).
    #[inline]
    pub fn aggr(&self) -> u32 {
        self.aggr
    }

    /// The bucket cache (for inspection).
    #[inline]
    pub fn cache(&self) -> &Arc<BucketCache> {
        &self.cache
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The live statistics atomics — for reading *gauges* (levels such
    /// as `arena_chunks_live`), which a [`StatsSnapshot`] deliberately
    /// omits because they are not monotone counters.
    pub fn raw_stats(&self) -> &Arc<AllocStats> {
        &self.stats
    }

    /// A fresh free-stage sized per configuration.
    pub fn new_stage(&self) -> Stage {
        Stage::new(self.cfg.stage_capacity)
    }

    /// The affinity an infrastructure message touching metafile block
    /// `mf_block` runs in, honoring [`InfraMode`].
    fn infra_affinity(&self, mf_block: u64) -> Affinity {
        match self.cfg.infra_mode {
            InfraMode::Serial => Affinity::Serial,
            InfraMode::Parallel => self.topo.aggr_range_for(self.aggr, mf_block),
        }
    }

    /// Request an asynchronous refill round if none is in flight.
    pub fn request_refill(&self) {
        if self
            .refill_inflight
            // ordering: AcqRel CAS claims the single-refiller slot; failure
            // Acquire sees the winner's refill; pairs-with: alloc.refill-slot.
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let infra = Arc::clone(&self.infra);
        let cache = Arc::clone(&self.cache);
        let inflight = Arc::clone(&self.refill_inflight);
        let rg0 = self.infra.aggmap().geometry().raid_groups()[0].id;
        let affinity = self.infra_affinity(self.infra.refill_mf_block(rg0));
        self.executor.submit(
            affinity,
            Box::new(move || {
                infra.refill_round(&cache);
                // ordering: Release — publishes the refilled cache before
                // reopening the slot; pairs-with: alloc.refill-slot.
                inflight.store(false, Ordering::Release);
            }),
        );
    }

    /// **GET** (step 2 of Figure 2): acquire a bucket of VBNs from the
    /// bucket cache. Triggers refills as needed and keeps the cache warm
    /// (low-watermark prefetch). Returns `None` when the aggregate is out
    /// of space.
    ///
    /// Paths without a stable cleaner identity (CP-end allocation, tests)
    /// use this; the affinity shard rotates with a relaxed counter so
    /// anonymous GETs spread over all shards instead of convoying on
    /// shard 0.
    pub fn get_bucket(&self) -> Option<Bucket> {
        // ordering: statistics counter; staleness is acceptable.
        self.get_bucket_from(self.anon_rr.fetch_add(1, Ordering::Relaxed))
    }

    /// **GET** with shard affinity: cleaner `cleaner` pops from shard
    /// `cleaner % nshards` first and work-steals from the other shards on
    /// a miss, so concurrent cleaners with distinct indices take disjoint
    /// locks on the common path (§IV-C's synchronization amortization,
    /// divided per drive).
    pub fn get_bucket_from(&self, cleaner: usize) -> Option<Bucket> {
        self.get_bucket_many(cleaner, 1)
            .map(|mut batch| batch.pop().expect("non-empty batch"))
    }

    /// Batched **GET**: acquire up to `max` buckets with a single cache
    /// synchronization event (one CAS pop of the home shard's chain, or
    /// one lock acquisition in the mutex layout) — §IV-C's amortization
    /// applied to GET itself. Returns at least one bucket, or `None`
    /// when the aggregate is out of space; a deep cleaner queue holds
    /// the extras and returns unused ones via
    /// [`requeue_bucket`](Self::requeue_bucket).
    pub fn get_bucket_many(&self, cleaner: usize, max: usize) -> Option<Vec<Bucket>> {
        let t0 = std::time::Instant::now();
        let mut sp = obs::trace_span!(obs::EventKind::Get);
        let out = self.get_bucket_many_inner(cleaner, max);
        sp.set_arg(out.as_ref().map_or(0, |b| b.len() as u64));
        self.stats
            .get_wait_ns
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        out
    }

    fn get_bucket_many_inner(&self, cleaner: usize, max: usize) -> Option<Vec<Bucket>> {
        let max = max.max(1);
        let mut stalled = false;
        loop {
            let batch = self.cache.get_many_from(cleaner, max);
            if !batch.is_empty() {
                self.stats
                    .gets
                    // ordering: statistics counter; staleness is acceptable.
                    .fetch_add(batch.len() as u64, Ordering::Relaxed);
                if self.cache.len() < self.cfg.low_watermark {
                    self.request_refill();
                }
                return Some(batch);
            }
            if !stalled {
                // ordering: statistics counter; staleness is acceptable.
                self.stats.get_stalls.fetch_add(1, Ordering::Relaxed);
                obs::trace_instant!(obs::EventKind::GetStall, max as u64);
                stalled = true;
            }
            self.request_refill();
            // Give the executor a chance to run the refill; the inline
            // executor has already completed it by now.
            if let Some(b) = self
                .cache
                .get_timeout_from(cleaner, Duration::from_millis(2))
            {
                // ordering: statistics counter; staleness is acceptable.
                self.stats.gets.fetch_add(1, Ordering::Relaxed);
                return Some(vec![b]);
            }
            if self.infra.is_exhausted()
                // ordering: Acquire — pairs with the Release reopen; a clear slot implies the refill is visible.
                && !self.refill_inflight.load(Ordering::Acquire)
                && self.cache.is_empty()
            {
                return None;
            }
        }
    }

    /// Return a bucket acquired by GET but never used: it re-enters the
    /// cache untouched (reservations intact), with no commit and no
    /// PUT accounting. This is how a cleaner hands back the unconsumed
    /// tail of a [`get_bucket_many`](Self::get_bucket_many) batch.
    pub fn requeue_bucket(&self, bucket: Bucket) {
        debug_assert!(
            bucket.consumed().is_empty(),
            "requeue is only for untouched buckets; PUT partially used ones"
        );
        self.cache.insert(bucket);
    }

    /// **PUT** (step 5 of Figure 2): return a bucket. The bucket's
    /// recorded writes are deposited into its tetris (possibly sending the
    /// RAID I/O), and a commit message is sent to the infrastructure to
    /// update the metafiles (step 6).
    pub fn put_bucket(&self, bucket: Bucket) {
        // ordering: statistics counter; staleness is acceptable.
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        let consumed = bucket.consumed().len() as u64;
        self.stats
            .uses
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(consumed, Ordering::Relaxed);
        // The per-block USE path has zero synchronization and stays
        // untraced (§IV-C); record its activity at bucket granularity.
        obs::trace_instant!(obs::EventKind::Use, consumed);
        obs::trace_instant!(obs::EventKind::Put, consumed);
        let mf_block = bucket.start_vbn().0 / BITS_PER_MF_BLOCK;
        let affinity = self.infra_affinity(mf_block);
        let rg = bucket.rg();
        let drive = bucket.drive_in_rg();
        let fin = bucket.finish();
        let infra = Arc::clone(&self.infra);
        let stats = Arc::clone(&self.stats);
        stats.commit_enqueued();
        let submitted = std::time::Instant::now();
        match self.cfg.reinsert {
            crate::config::ReinsertPolicy::Collective => {
                self.executor.submit(
                    affinity,
                    Box::new(move || {
                        stats
                            .commit_queue_wait_ns
                            // ordering: statistics counter; staleness is acceptable.
                            .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        infra.commit_bucket(fin);
                        stats.commit_dequeued();
                    }),
                );
            }
            crate::config::ReinsertPolicy::Immediate => {
                // The ablation path: commit, then refill this drive's
                // bucket right away without waiting for its peers.
                let cache = Arc::clone(&self.cache);
                self.executor.submit(
                    affinity,
                    Box::new(move || {
                        stats
                            .commit_queue_wait_ns
                            // ordering: statistics counter; staleness is acceptable.
                            .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        infra.commit_bucket(fin);
                        stats.commit_dequeued();
                        infra.refill_drive(rg, drive, &cache);
                    }),
                );
            }
        }
    }

    /// Return a bucket *without* triggering the Immediate-mode per-drive
    /// refill: the commit still runs, but the bucket leaves circulation.
    /// Used when draining the cache at CP end (and by test harnesses) —
    /// with [`ReinsertPolicy::Immediate`](crate::config::ReinsertPolicy),
    /// a plain [`put_bucket`](Self::put_bucket) loop over the cache would
    /// refill forever.
    pub fn retire_bucket(&self, bucket: Bucket) {
        // ordering: statistics counter; staleness is acceptable.
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        let consumed = bucket.consumed().len() as u64;
        self.stats
            .uses
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(consumed, Ordering::Relaxed);
        obs::trace_instant!(obs::EventKind::Put, consumed);
        let mf_block = bucket.start_vbn().0 / BITS_PER_MF_BLOCK;
        let affinity = self.infra_affinity(mf_block);
        let fin = bucket.finish();
        let infra = Arc::clone(&self.infra);
        let stats = Arc::clone(&self.stats);
        stats.commit_enqueued();
        let submitted = std::time::Instant::now();
        self.executor.submit(
            affinity,
            Box::new(move || {
                stats
                    .commit_queue_wait_ns
                    // ordering: statistics counter; staleness is acceptable.
                    .fetch_add(submitted.elapsed().as_nanos() as u64, Ordering::Relaxed);
                infra.commit_bucket(fin);
                stats.commit_dequeued();
            }),
        );
    }

    /// Drain the bucket cache, retiring every bucket (completing all
    /// in-flight tetrises) — the CP-end flush.
    pub fn flush_cache(&self) {
        // Settle any in-flight refill first so it cannot insert after we
        // empty the cache.
        self.drain();
        while let Some(b) = self.cache.try_get() {
            self.retire_bucket(b);
        }
        self.drain();
    }

    /// Record an overwritten VBN into `stage`; sends a commit message to
    /// the infrastructure when the stage fills.
    pub fn free_vbn(&self, stage: &mut Stage, vbn: Vbn) {
        if stage.push(vbn) {
            self.flush_stage(stage);
        }
    }

    /// Commit whatever is staged, even if the stage is not full (CP end).
    pub fn flush_stage(&self, stage: &mut Stage) {
        if stage.is_empty() {
            return;
        }
        let vbns = stage.drain();
        let mf_block = vbns[0].0 / BITS_PER_MF_BLOCK;
        let affinity = self.infra_affinity(mf_block);
        let infra = Arc::clone(&self.infra);
        self.executor
            .submit(affinity, Box::new(move || infra.commit_frees(vbns)));
    }

    /// Wait for all outstanding infrastructure messages to complete.
    pub fn drain(&self) {
        self.executor.drain();
    }
}

impl std::fmt::Debug for Allocator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Allocator")
            .field("cache_len", &self.cache.len())
            .field("cfg", &self.cfg)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{InlineExecutor, PoolExecutor};
    use waffinity::{Model, WaffinityPool};
    use wafl_blockdev::{DriveKind, GeometryBuilder};

    fn mk(cfg: AllocConfig, executor: Arc<dyn Executor>) -> Arc<Allocator> {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 1024)
                .build(),
        );
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
        let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
        Allocator::new(cfg, aggmap, io, executor, topo, 0)
    }

    #[test]
    fn get_use_put_cycle_inline() {
        let a = mk(AllocConfig::with_chunk(16), Arc::new(InlineExecutor));
        let mut b = a.get_bucket().unwrap();
        let mut vbns = Vec::new();
        while let Some(v) = b.use_vbn(0xfeed) {
            vbns.push(v);
        }
        assert_eq!(vbns.len(), 16);
        a.put_bucket(b);
        a.drain();
        let s = a.stats();
        assert_eq!(s.gets, 1);
        assert_eq!(s.puts, 1);
        assert_eq!(s.uses, 16);
        assert_eq!(s.vbns_committed, 16);
        a.infra().aggmap().verify().unwrap();
    }

    #[test]
    fn consecutive_uses_yield_contiguous_vbns() {
        // §IV-C objective: consecutive file blocks land contiguously on
        // one drive.
        let a = mk(AllocConfig::with_chunk(64), Arc::new(InlineExecutor));
        let mut b = a.get_bucket().unwrap();
        let v1 = b.use_vbn(1).unwrap();
        let v2 = b.use_vbn(2).unwrap();
        let v3 = b.use_vbn(3).unwrap();
        assert_eq!(v2.0, v1.0 + 1);
        assert_eq!(v3.0, v2.0 + 1);
        a.put_bucket(b);
    }

    #[test]
    fn free_stage_commits_when_full() {
        let mut cfg = AllocConfig::with_chunk(8);
        cfg.stage_capacity = 4;
        let a = mk(cfg, Arc::new(InlineExecutor));
        let mut b = a.get_bucket().unwrap();
        let vbns: Vec<Vbn> = std::iter::from_fn(|| b.use_vbn(9)).collect();
        a.put_bucket(b);
        a.drain();
        let mut stage = a.new_stage();
        for v in &vbns[..4] {
            a.free_vbn(&mut stage, *v);
        }
        a.drain();
        assert!(stage.is_empty(), "full stage auto-committed");
        let s = a.stats();
        assert_eq!(s.vbns_freed, 4);
        assert_eq!(s.stage_commits, 1);
    }

    #[test]
    fn flush_partial_stage() {
        let a = mk(AllocConfig::with_chunk(8), Arc::new(InlineExecutor));
        let mut b = a.get_bucket().unwrap();
        let v = b.use_vbn(1).unwrap();
        a.put_bucket(b);
        a.drain();
        let mut stage = a.new_stage();
        a.free_vbn(&mut stage, v);
        assert_eq!(stage.len(), 1);
        a.flush_stage(&mut stage);
        a.drain();
        assert_eq!(a.stats().vbns_freed, 1);
    }

    #[test]
    fn exhaustion_returns_none_then_recovers() {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(8)
                .raid_group(1, 1, 32)
                .build(),
        );
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
        let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 2, 2));
        let a = Allocator::new(
            AllocConfig::with_chunk(32),
            aggmap,
            io,
            Arc::new(InlineExecutor),
            topo,
            0,
        );
        // Buckets are AA-bound (8 stripes here), so draining the 32-block
        // drive takes several GET/USE/PUT cycles.
        let mut vbns: Vec<Vbn> = Vec::new();
        while let Some(mut b) = a.get_bucket() {
            while let Some(v) = b.use_vbn(5) {
                vbns.push(v);
            }
            a.put_bucket(b);
            a.drain();
        }
        assert_eq!(vbns.len(), 32);
        assert!(a.get_bucket().is_none(), "aggregate exhausted");
        let mut stage = a.new_stage();
        for v in vbns {
            a.free_vbn(&mut stage, v);
        }
        a.flush_stage(&mut stage);
        a.drain();
        assert!(a.get_bucket().is_some(), "space recovered after frees");
    }

    #[test]
    fn pool_backed_parallel_cleaners_never_share_vbns() {
        // DESIGN.md invariant 1 at the allocator level, with a real
        // Waffinity pool and 4 concurrent cleaner threads.
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
        let pool = Arc::new(WaffinityPool::new(Arc::clone(&topo), 3));
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(4, 1, 2048)
                .build(),
        );
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
        let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
        let a = Allocator::new(
            AllocConfig::with_chunk(64),
            aggmap,
            io,
            Arc::new(PoolExecutor::new(pool)),
            topo,
            0,
        );
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..10 {
                    let Some(mut b) = a.get_bucket() else { break };
                    while let Some(v) = b.use_vbn(t as u128 + 1) {
                        got.push(v.0);
                    }
                    a.put_bucket(b);
                }
                got
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        assert!(n > 0);
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), n, "no VBN handed to two cleaners");
        a.drain();
        // Buckets still sitting in the cache hold reserved-but-unused
        // VBNs; retire them so everything is committed or released,
        // then the conservation identity must hold exactly.
        a.flush_cache();
        a.infra().aggmap().verify().unwrap();
        a.stats().check_conservation(0).unwrap();
    }

    #[test]
    fn serial_infra_mode_runs_messages_in_serial_affinity() {
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 4, 4));
        let pool = Arc::new(WaffinityPool::new(Arc::clone(&topo), 2));
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(2, 1, 512)
                .build(),
        );
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
        let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
        let a = Allocator::new(
            AllocConfig::with_chunk(16).serial_infra(),
            aggmap,
            io,
            Arc::new(PoolExecutor::new(Arc::clone(&pool))),
            topo,
            0,
        );
        let mut b = a.get_bucket().unwrap();
        while b.use_vbn(3).is_some() {}
        a.put_bucket(b);
        a.drain();
        assert!(
            pool.messages_in(Affinity::Serial) >= 2,
            "refill + commit in Serial"
        );
        assert_eq!(pool.messages_in(Affinity::AggrVbnRange(0, 0)), 0);
    }
}
