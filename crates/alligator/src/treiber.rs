//! A lock-free Treiber stack with tagged indices — the bucket cache's
//! GET fast path.
//!
//! The classic Treiber stack CASes a head pointer; its classic failure
//! mode is **ABA**: a popper reads head `A` and `A.next == B`, stalls,
//! and meanwhile other threads pop `A` and `B`, then push `A` back. The
//! stale popper's CAS on `A` now succeeds and installs the long-gone
//! `B` as head. This implementation closes ABA the way the non-blocking
//! allocator literature does (Marotta et al.; Blelloch & Wei): nodes
//! live in an index-addressed [`Arena`], and the head word packs
//! `(tag32, index32)` where the tag increments on **every** successful
//! head CAS. A stale CAS therefore always fails — the tag has moved —
//! regardless of which node sits on top.
//!
//! Because the tag changes on every push *and* pop, a successful CAS
//! also proves the stack was untouched between the read and the CAS.
//! That makes **multi-node operations single-CAS atomic**:
//!
//! * [`TreiberStack::pop_many`] walks up to `k` nodes from the head and
//!   detaches the whole chain with one CAS (the batched `get_many`
//!   amortization of §IV-C);
//! * [`TreiberStack::push_many`] links a batch into a private chain and
//!   publishes it with one CAS, so a refill batch lands on a shard
//!   atomically (§IV-D collective visibility, per shard).
//!
//! Nodes come from a **bounded, shared, epoch-reclaimed** [`Arena`]
//! (see `arena.rs` — this PR's replacement for the old append-only
//! per-stack chunks). Consequences for this module:
//!
//! * Many stacks can share one arena (`with_arena`), so a node freed by
//!   any shard is allocatable by any other — cross-shard donation.
//! * Allocation can fail: [`TreiberStack::try_push_keyed`] and
//!   [`TreiberStack::try_push_many_keyed`] surface
//!   [`ArenaFull`](crate::arena::ArenaFull) as typed backpressure
//!   (hand the items back) instead of the old process abort. The
//!   infallible `push*` wrappers remain for tests/benches and panic on
//!   capacity — documented, and unreachable at the default cap.
//! * Every operation runs inside an epoch [`Pin`](crate::arena::Pin):
//!   the speculative `next`/`key` walks below may read indices whose
//!   chunk is being retired, and the pin is what guarantees the slab
//!   cannot be *freed* under the walk (stale values are still discarded
//!   by the tag CAS, as before).
//!
//! All synchronization comes through [`crate::sync`], so under
//! `--features mc` every access below is a model-checker yield point;
//! `crates/mc/tests/treiber_invariants.rs` model-checks conservation,
//! LIFO batching, and the ABA defense over all interleavings, and
//! `crates/mc/tests/arena_reclaim.rs` covers the reclamation protocol.
//! The happens-before contract these orderings implement is documented
//! in DESIGN.md §"Memory-ordering contract" and §13.

use crate::arena::{Arena, ArenaFull, DEFAULT_ARENA_CAP, NIL};
use crate::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[inline]
fn pack(tag: u32, idx: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(idx)
}

#[inline]
fn idx_of(word: u64) -> u32 {
    word as u32
}

#[inline]
fn tag_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// An ABA-safe lock-free stack of `T` over a bounded arena.
///
/// All operations are non-blocking CAS loops; there is no mutex
/// anywhere. `pop_many`/`push_many` move whole chains with a single
/// head CAS.
pub struct TreiberStack<T> {
    /// Packed `(tag, index)` of the top node. The tag increments on
    /// every successful CAS, defeating ABA.
    head: AtomicU64,
    /// The node arena — possibly shared with other stacks (the bucket
    /// cache gives every shard the same arena).
    arena: Arc<Arena<T>>,
}

// SAFETY: `T` crosses threads through the arena's nodes; see the
// Send/Sync argument on `Arena`. The head word is a plain atomic.
unsafe impl<T: Send> Send for TreiberStack<T> {}
// SAFETY: as above — shared references only perform CAS-mediated access.
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TreiberStack<T> {
    /// New empty stack over a private arena at [`DEFAULT_ARENA_CAP`]
    /// (no slab allocated until the first push).
    pub fn new() -> Self {
        Self::with_arena(Arc::new(Arena::new(DEFAULT_ARENA_CAP)))
    }

    /// New empty stack drawing nodes from `arena`. Passing the same
    /// arena to several stacks pools their capacity and free lists
    /// (cross-shard donation in the bucket cache).
    pub fn with_arena(arena: Arc<Arena<T>>) -> Self {
        Self {
            head: AtomicU64::new(pack(0, NIL)),
            arena,
        }
    }

    /// The arena this stack allocates from.
    pub fn arena(&self) -> &Arc<Arena<T>> {
        &self.arena
    }

    /// CAS retries paid so far on this stack's arena (head + free-list
    /// loops, pooled across every stack sharing the arena) — a direct
    /// measure of pop/push contention.
    pub fn retries(&self) -> u64 {
        self.arena.retries()
    }

    /// Is the stack empty right now? (Advisory under concurrency.)
    pub fn is_empty(&self) -> bool {
        // ordering: Acquire pairs with the AcqRel publish CAS in
        // `attach`, so a non-NIL head implies the node is initialized;
        // pairs-with: treiber.head.
        idx_of(self.head.load(Ordering::Acquire)) == NIL
    }

    /// Publish the privately linked chain `first..=last` (already joined
    /// via `next`) with one CAS. Caller must hold a pin (node derefs).
    fn attach(&self, first: u32, last: u32) {
        loop {
            // ordering: Acquire pairs with the AcqRel head CAS of
            // concurrent push/pop so the observed top node is valid;
            // pairs-with: treiber.head.
            let h = self.head.load(Ordering::Acquire);
            // ordering: Release — the tail link must be visible before
            // the publish CAS makes the chain reachable;
            // pairs-with: treiber.link.
            self.arena
                .node(last)
                .next
                .store(idx_of(h), Ordering::Release);
            if self
                .head
                // ordering: AcqRel — Release publishes the chain's items,
                // keys, and links to poppers (the stack's core
                // happens-before edge); tag bump defeats ABA;
                // pairs-with: treiber.head.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), first),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
            self.arena.note_retry();
        }
    }

    /// Push one item (one CAS on the uncontended path).
    ///
    /// # Panics
    /// Panics if the arena is at capacity — use
    /// [`TreiberStack::try_push_keyed`] where backpressure matters (the
    /// bucket cache does); this wrapper serves tests/benches running
    /// far below the default cap.
    pub fn push(&self, item: T) {
        self.push_keyed(item, 0);
    }

    /// Push one item stamped with a batch `key` (see
    /// [`TreiberStack::pop_many_same_key`]).
    ///
    /// # Panics
    /// Panics if the arena is at capacity (see [`TreiberStack::push`]).
    pub fn push_keyed(&self, item: T, key: u64) {
        if self.try_push_keyed(item, key).is_err() {
            panic!("treiber push: arena at capacity (use try_push_keyed for backpressure)");
        }
    }

    /// Push one item stamped with a batch `key`, returning it on
    /// [`ArenaFull`] so the caller can fall back (the bucket cache
    /// reroutes to its mutex overflow queue).
    pub fn try_push_keyed(&self, item: T, key: u64) -> Result<(), T> {
        let pin = self.arena.pin();
        let idx = match self.arena.alloc(&pin) {
            Ok(idx) => idx,
            Err(ArenaFull) => return Err(item),
        };
        let node = self.arena.node(idx);
        // SAFETY: the node is detached — we are its only owner until the
        // `attach` publish CAS below.
        node.item.with_mut(|p| unsafe { *p = Some(item) });
        // ordering: Release — the key stamp must be visible before
        // `attach` publishes the node (speculative key walks may read
        // it as soon as the head CAS lands); pairs-with: treiber.key.
        node.key.store(key, Ordering::Release);
        self.attach(idx, idx);
        Ok(())
    }

    /// Push a batch, publishing it **atomically** (one CAS): a
    /// concurrent popper sees either none of the batch or all of it.
    /// Items pop back out in iteration order (first item on top).
    /// Returns the batch size.
    ///
    /// # Panics
    /// Panics if the arena is at capacity (see [`TreiberStack::push`]).
    pub fn push_many(&self, items: impl IntoIterator<Item = T>) -> usize {
        self.push_many_keyed(items.into_iter().map(|i| (i, 0)))
    }

    /// [`TreiberStack::push_many`] with a per-item batch key.
    ///
    /// # Panics
    /// Panics if the arena is at capacity (see [`TreiberStack::push`]).
    pub fn push_many_keyed(&self, items: impl IntoIterator<Item = (T, u64)>) -> usize {
        match self.try_push_many_keyed(items.into_iter().collect()) {
            Ok(n) => n,
            Err(_) => {
                panic!("treiber push: arena at capacity (use try_push_many_keyed for backpressure)")
            }
        }
    }

    /// Push a batch atomically, or hand **all** of it back on
    /// [`ArenaFull`]. All-or-nothing: if allocation fails mid-batch,
    /// the nodes already built are stripped and freed, and the returned
    /// `Vec` holds every item in the original order — the caller can
    /// reroute the whole batch to its fallback path without losing
    /// ordering (the bucket cache's overflow queue relies on this).
    pub fn try_push_many_keyed(&self, items: Vec<(T, u64)>) -> Result<usize, Vec<(T, u64)>> {
        if items.is_empty() {
            return Ok(0);
        }
        let pin = self.arena.pin();
        let mut chain: Vec<u32> = Vec::with_capacity(items.len());
        let mut iter = items.into_iter();
        for (item, key) in iter.by_ref() {
            let idx = match self.arena.alloc(&pin) {
                Ok(idx) => idx,
                Err(ArenaFull) => {
                    // Unwind: pull the staged items back out of their
                    // nodes (we still exclusively own the private
                    // chain), free the nodes, and return everything.
                    let mut out: Vec<(T, u64)> = Vec::with_capacity(chain.len() + 1);
                    for &staged in &chain {
                        let node = self.arena.node(staged);
                        // SAFETY: the chain is private (never attached);
                        // we are still the exclusive owner of each node.
                        let it = node.item.with_mut(|p| unsafe { (*p).take() });
                        // ordering: Acquire — our own Release stamp from
                        // this same (private) chain build;
                        // pairs-with: treiber.key.
                        let k = node.key.load(Ordering::Acquire);
                        debug_assert!(it.is_some(), "staged chain node lost its item");
                        if let Some(it) = it {
                            out.push((it, k));
                        }
                        self.arena.free(&pin, staged);
                    }
                    out.push((item, key));
                    out.extend(iter);
                    return Err(out);
                }
            };
            let node = self.arena.node(idx);
            // SAFETY: detached node, exclusively owned until `attach`.
            node.item.with_mut(|p| unsafe { *p = Some(item) });
            // ordering: Release — stamp visible before the publish CAS
            // (see `try_push_keyed`); pairs-with: treiber.key.
            node.key.store(key, Ordering::Release);
            if let Some(&prev) = chain.last() {
                // ordering: Release — private chain link, published
                // wholesale by `attach`'s CAS; pairs-with: treiber.link.
                self.arena.node(prev).next.store(idx, Ordering::Release);
            }
            chain.push(idx);
        }
        let count = chain.len();
        self.attach(chain[0], *chain.last().unwrap());
        Ok(count)
    }

    /// Pop the top item (one CAS on the uncontended path).
    pub fn pop(&self) -> Option<T> {
        let pin = self.arena.pin();
        loop {
            // ordering: Acquire pairs with `attach`'s AcqRel publish CAS:
            // a non-NIL head implies its item/key/next writes are visible;
            // pairs-with: treiber.head.
            let h = self.head.load(Ordering::Acquire);
            let idx = idx_of(h);
            if idx == NIL {
                return None;
            }
            let node = self.arena.node(idx);
            // ordering: Acquire — the link was Release-stored before the
            // node became reachable; a stale value is discarded by the
            // tag CAS below; pairs-with: treiber.link.
            let next = node.next.load(Ordering::Acquire);
            if self
                .head
                // ordering: AcqRel — Acquire takes ownership of the
                // detached node (pusher's writes happen-before our take);
                // Release orders the detach for the next head reader;
                // tag bump defeats ABA; pairs-with: treiber.head.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), next),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // SAFETY: the tag CAS transferred exclusive ownership.
                let item = node.item.with_mut(|p| unsafe { (*p).take() });
                debug_assert!(item.is_some(), "popped a node with no item");
                self.arena.free(&pin, idx);
                return item;
            }
            self.arena.note_retry();
        }
    }

    /// Pop up to `max` items with **one CAS**: the whole chain detaches
    /// atomically, so a batch costs the same synchronization as a
    /// single pop (§IV-C's amortization, applied to GET itself).
    ///
    /// The walk reads `next` links that concurrent operations may be
    /// recycling; any such interference bumps the head tag and fails
    /// the CAS, so a successful detach proves the chain was exactly the
    /// stack's top-`k` at CAS time. Returns top-first order.
    pub fn pop_many(&self, max: usize) -> Vec<T> {
        self.pop_chain(max, false)
    }

    /// [`TreiberStack::pop_many`], additionally bounded to nodes sharing
    /// the top node's batch key: the walk stops before the first node
    /// whose key differs. The bucket cache keys nodes by refill
    /// generation, so a batched GET can never straddle two refill
    /// rounds — consuming round N+1's buckets while round N is still
    /// outstanding would leave round N's tetris permanently partial
    /// (the §IV-D equal-progress invariant, applied to batched pops).
    pub fn pop_many_same_key(&self, max: usize) -> Vec<T> {
        self.pop_chain(max, true)
    }

    fn pop_chain(&self, max: usize, same_key: bool) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        // The pin covers the whole speculative walk: chunks referenced
        // by stale indices may be retired meanwhile, but cannot be
        // *reclaimed* (slab freed) until two epochs after our pin.
        let pin = self.arena.pin();
        loop {
            // ordering: Acquire pairs with `attach`'s publish CAS (see
            // `pop`); pairs-with: treiber.head.
            let h = self.head.load(Ordering::Acquire);
            if idx_of(h) == NIL {
                return Vec::new();
            }
            // Speculative walk: keys/links may be mutated by concurrent
            // recycling, but any interference bumps the head tag and
            // fails the CAS below, discarding whatever was read.
            // ordering: Acquire — stamped with Release before publish;
            // stale reads are discarded by the tag CAS;
            // pairs-with: treiber.key.
            let key0 = self.arena.node(idx_of(h)).key.load(Ordering::Acquire);
            let mut indices = Vec::with_capacity(max.min(16));
            indices.push(idx_of(h));
            while indices.len() < max {
                let nx = self
                    .arena
                    .node(*indices.last().unwrap())
                    .next
                    // ordering: Acquire — speculative link read; stale
                    // values are discarded by the tag CAS;
                    // pairs-with: treiber.link.
                    .load(Ordering::Acquire);
                if nx == NIL {
                    break;
                }
                // ordering: Acquire — speculative key read (see `key0`);
                // pairs-with: treiber.key.
                if same_key && self.arena.node(nx).key.load(Ordering::Acquire) != key0 {
                    break;
                }
                indices.push(nx);
            }
            let after = self
                .arena
                .node(*indices.last().unwrap())
                .next
                // ordering: Acquire — speculative link read; validated by
                // the tag CAS; pairs-with: treiber.link.
                .load(Ordering::Acquire);
            if self
                .head
                // ordering: AcqRel — same contract as `pop`'s CAS: the
                // tag bump proves the walked chain was the authentic
                // top-k and transfers its exclusive ownership;
                // pairs-with: treiber.head.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), after),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                self.arena.note_retry();
                continue;
            }
            let mut out = Vec::with_capacity(indices.len());
            for idx in indices {
                // SAFETY: tag unchanged across the CAS ⇒ no head CAS
                // interleaved ⇒ the walked chain is the authentic top-k
                // and now exclusively ours.
                let item = self
                    .arena
                    .node(idx)
                    .item
                    .with_mut(|p| unsafe { (*p).take() });
                debug_assert!(item.is_some(), "pop_many chain node with no item");
                if let Some(item) = item {
                    out.push(item);
                }
                self.arena.free(&pin, idx);
            }
            return out;
        }
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        // Drain any remaining items so their nodes return to the arena
        // (other stacks may share it and outlive us). The arena drops
        // parked items itself when *it* drops, so this is about node
        // accounting, not leaks.
        while self.pop().is_some() {}
    }
}

impl<T> std::fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreiberStack")
            .field("empty", &self.is_empty())
            .field("retries", &self.retries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order_and_reuse() {
        let s = TreiberStack::new();
        s.push(1u64);
        s.push(2);
        s.push(3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        s.push(9); // reuses a freed node
        assert_eq!(s.pop(), Some(9));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn push_many_pops_in_batch_order() {
        let s = TreiberStack::new();
        assert_eq!(s.push_many([10u64, 20, 30]), 3);
        assert_eq!(s.pop(), Some(10), "first item of the batch is on top");
        assert_eq!(s.pop(), Some(20));
        assert_eq!(s.pop(), Some(30));
    }

    #[test]
    fn pop_many_detaches_the_top_chain() {
        let s = TreiberStack::new();
        for i in 0..5u64 {
            s.push(i);
        }
        assert_eq!(s.pop_many(3), vec![4, 3, 2]);
        assert_eq!(s.pop_many(99), vec![1, 0], "short chain still drains");
        assert!(s.pop_many(4).is_empty());
        assert!(s.pop_many(0).is_empty());
    }

    #[test]
    fn pop_many_same_key_stops_at_batch_boundary() {
        let s = TreiberStack::new();
        assert_eq!(s.push_many_keyed([(1u64, 7), (2, 7)]), 2);
        s.push_keyed(3, 8);
        s.push_keyed(4, 8);
        // Top-down the stack is [4(k8), 3(k8), 1(k7), 2(k7)].
        assert_eq!(s.pop_many_same_key(10), vec![4, 3], "stops before key 7");
        assert_eq!(s.pop_many_same_key(1), vec![1], "max still caps the batch");
        assert_eq!(s.pop_many_same_key(10), vec![2]);
        assert!(s.pop_many_same_key(10).is_empty());
    }

    #[test]
    fn tiny_arena_push_returns_items_instead_of_aborting() {
        use crate::arena::CHUNK_NODES;
        let s: TreiberStack<u64> = TreiberStack::with_arena(Arc::new(Arena::new(CHUNK_NODES)));
        let mut pushed = 0u64;
        let rejected = loop {
            match s.try_push_keyed(pushed, 0) {
                Ok(()) => pushed += 1,
                Err(item) => break item,
            }
        };
        assert_eq!(rejected, pushed, "the rejected item comes back intact");
        assert_eq!(pushed as usize, CHUNK_NODES, "cap honored exactly");
        // Batch push on the full arena hands back the whole batch.
        let batch: Vec<(u64, u64)> = (100..105).map(|v| (v, 9)).collect();
        let returned = s.try_push_many_keyed(batch.clone()).unwrap_err();
        assert_eq!(returned, batch, "all-or-nothing, original order");
        // Draining makes room again; nothing was lost.
        let mut drained = Vec::new();
        while let Some(v) = s.pop() {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(drained, (0..pushed).collect::<Vec<_>>());
        assert!(s.try_push_keyed(42, 0).is_ok());
    }

    #[test]
    fn stacks_sharing_an_arena_donate_capacity() {
        use crate::arena::CHUNK_NODES;
        let arena = Arc::new(Arena::new(CHUNK_NODES));
        let a: TreiberStack<u64> = TreiberStack::with_arena(Arc::clone(&arena));
        let b: TreiberStack<u64> = TreiberStack::with_arena(Arc::clone(&arena));
        // Fill the whole shared arena through `a`...
        let mut n = 0u64;
        while a.try_push_keyed(n, 0).is_ok() {
            n += 1;
        }
        assert!(b.try_push_keyed(99, 0).is_err(), "shared cap is global");
        // ...then free through `a` and allocate through `b`: donation.
        assert!(a.pop().is_some());
        assert!(
            b.try_push_keyed(99, 0).is_ok(),
            "a node freed by one stack serves another"
        );
        assert_eq!(b.pop(), Some(99));
    }

    #[test]
    fn concurrent_push_pop_conserves_items() {
        const THREADS: usize = 8;
        const PER: u64 = 2_000;
        let s = Arc::new(TreiberStack::new());
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut kept = Vec::new();
                    for i in 0..PER {
                        s.push(t * PER + i);
                        if i % 3 == 0 {
                            if let Some(v) = s.pop() {
                                kept.push(v);
                            }
                        }
                    }
                    kept
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        while let Some(v) = s.pop() {
            all.push(v);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            THREADS * PER as usize,
            "no item lost or duplicated"
        );
    }
}
