//! A lock-free Treiber stack with tagged indices — the bucket cache's
//! GET fast path.
//!
//! The classic Treiber stack CASes a head pointer; its classic failure
//! mode is **ABA**: a popper reads head `A` and `A.next == B`, stalls,
//! and meanwhile other threads pop `A` and `B`, then push `A` back. The
//! stale popper's CAS on `A` now succeeds and installs the long-gone
//! `B` as head. This implementation closes ABA the way the non-blocking
//! allocator literature does (Marotta et al.; Blelloch & Wei): nodes
//! live in an **append-only arena** addressed by index, and the head
//! word packs `(tag32, index32)` where the tag increments on **every**
//! successful head CAS. A stale CAS therefore always fails — the tag
//! has moved — regardless of which node sits on top.
//!
//! Because the tag changes on every push *and* pop, a successful CAS
//! also proves the stack was untouched between the read and the CAS.
//! That makes **multi-node operations single-CAS atomic**:
//!
//! * [`TreiberStack::pop_many`] walks up to `k` nodes from the head and
//!   detaches the whole chain with one CAS (the batched `get_many`
//!   amortization of §IV-C);
//! * [`TreiberStack::push_many`] links a batch into a private chain and
//!   publishes it with one CAS, so a refill batch lands on a shard
//!   atomically (§IV-D collective visibility, per shard).
//!
//! The arena grows in doubling chunks behind `AtomicPtr`s, so node
//! addresses never move and a stale `next` read can never dereference
//! freed memory — it is caught by the tag CAS instead. Nodes are
//! recycled through an internal free list (same tagged-CAS discipline).
//!
//! All synchronization comes through [`crate::sync`], so under
//! `--features mc` every access below is a model-checker yield point;
//! `crates/mc/tests/treiber_invariants.rs` model-checks conservation,
//! LIFO batching, and the ABA defense over all interleavings. The
//! happens-before contract these orderings implement is documented in
//! DESIGN.md §"Memory-ordering contract".

use crate::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, Ordering};
use crate::sync::cell::UnsafeCell;
use std::ptr;

/// Sentinel index: "no node".
const NIL: u32 = u32::MAX;
/// Size of the first arena chunk; chunk `c` holds `CHUNK0 << c` nodes.
const CHUNK0: usize = 32;
/// Number of chunk slots; total capacity `CHUNK0 * (2^NCHUNKS - 1)`
/// (≈ one billion nodes — far beyond any bucket population).
const NCHUNKS: usize = 25;

#[inline]
fn pack(tag: u32, idx: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(idx)
}

#[inline]
fn idx_of(word: u64) -> u32 {
    word as u32
}

#[inline]
fn tag_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// Map a node index to its (chunk, offset) coordinates.
#[inline]
fn chunk_of(idx: u32) -> (usize, usize) {
    let n = idx as usize / CHUNK0 + 1;
    let c = (usize::BITS - 1 - n.leading_zeros()) as usize;
    let base = CHUNK0 * ((1usize << c) - 1);
    (c, idx as usize - base)
}

struct Node<T> {
    /// Index of the node below this one (in the stack or the free list).
    next: AtomicU32,
    /// The payload. Written/taken only by the node's exclusive owner:
    /// the pusher before the publish CAS, the popper after winning the
    /// detach CAS.
    item: UnsafeCell<Option<T>>,
    /// Batch key stamped by `push_keyed`/`push_many_keyed` before the
    /// publish CAS. `pop_many_same_key` walks it speculatively; any
    /// stale read is discarded when the tag CAS fails, so a batch
    /// never mixes keys. The bucket cache keys by refill generation to
    /// keep one GET batch within one refill round (§IV-D equal
    /// progress).
    key: AtomicU64,
}

/// An ABA-safe lock-free stack of `T`.
///
/// All operations are non-blocking CAS loops; there is no mutex
/// anywhere. `pop_many`/`push_many` move whole chains with a single
/// head CAS.
pub struct TreiberStack<T> {
    /// Packed `(tag, index)` of the top node. The tag increments on
    /// every successful CAS, defeating ABA.
    head: AtomicU64,
    /// Packed `(tag, index)` of the free-node list.
    free: AtomicU64,
    /// Next never-used node index.
    next_fresh: AtomicU32,
    /// Doubling arena chunks (chunk `c` holds `CHUNK0 << c` nodes).
    chunks: [AtomicPtr<Node<T>>; NCHUNKS],
    /// CAS retries observed (head and free-list loops) — the stack's
    /// contention meter.
    retries: AtomicU64,
}

// SAFETY: `T` crosses threads through the stack; the `UnsafeCell` is
// only touched by the exclusive owner of a detached node (see `Node`).
unsafe impl<T: Send> Send for TreiberStack<T> {}
// SAFETY: as above — shared references only perform CAS-mediated access;
// payload cells are reached only with exclusive node ownership.
unsafe impl<T: Send> Sync for TreiberStack<T> {}

impl<T> Default for TreiberStack<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TreiberStack<T> {
    /// New empty stack (no arena allocated until the first push).
    pub fn new() -> Self {
        Self {
            head: AtomicU64::new(pack(0, NIL)),
            free: AtomicU64::new(pack(0, NIL)),
            next_fresh: AtomicU32::new(0),
            chunks: std::array::from_fn(|_| AtomicPtr::new(ptr::null_mut())),
            retries: AtomicU64::new(0),
        }
    }

    /// CAS retries paid so far on the head and free-list loops — a
    /// direct measure of pop/push contention.
    pub fn retries(&self) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.retries.load(Ordering::Relaxed)
    }

    /// Is the stack empty right now? (Advisory under concurrency.)
    pub fn is_empty(&self) -> bool {
        // ordering: Acquire pairs with the AcqRel publish CAS in
        // `attach`, so a non-NIL head implies the node is initialized.
        idx_of(self.head.load(Ordering::Acquire)) == NIL
    }

    /// Dereference a node index. The index must have been allocated
    /// (all indices ever stored in `head`/`free`/`next` are).
    #[inline]
    fn node(&self, idx: u32) -> &Node<T> {
        let (c, off) = chunk_of(idx);
        // ordering: Acquire pairs with the AcqRel chunk-install CAS in
        // `ensure_chunk`, so the pointed-to nodes are fully constructed.
        let base = self.chunks[c].load(Ordering::Acquire);
        debug_assert!(!base.is_null(), "node index {idx} in unallocated chunk");
        // SAFETY: `idx` was handed out by `alloc_node`, which called
        // `ensure_chunk` first; chunks are append-only and never freed
        // before Drop, so `base` is valid and `off` is in bounds.
        unsafe { &*base.add(off) }
    }

    /// Make sure the chunk containing `idx` exists. Lock-free: racers
    /// both allocate and the CAS loser frees its copy.
    fn ensure_chunk(&self, idx: u32) {
        let (c, _) = chunk_of(idx);
        assert!(c < NCHUNKS, "TreiberStack arena exhausted");
        // ordering: Acquire pairs with the install CAS below so an
        // already-installed chunk's contents are visible.
        if !self.chunks[c].load(Ordering::Acquire).is_null() {
            return;
        }
        let size = CHUNK0 << c;
        let mut nodes: Vec<Node<T>> = Vec::with_capacity(size);
        for _ in 0..size {
            nodes.push(Node {
                next: AtomicU32::new(NIL),
                item: UnsafeCell::new(None),
                key: AtomicU64::new(0),
            });
        }
        let raw = Box::into_raw(nodes.into_boxed_slice()) as *mut Node<T>;
        if self.chunks[c]
            // ordering: AcqRel — Release publishes the constructed nodes
            // to `node()`'s Acquire load; Acquire on failure observes the
            // winner's install before we free our copy.
            .compare_exchange(ptr::null_mut(), raw, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            // Lost the install race; reconstitute and drop our copy.
            // SAFETY: `raw` came from `Box::into_raw` of a `size`-length
            // boxed slice we still exclusively own (the CAS rejected it).
            unsafe { drop(Box::from_raw(ptr::slice_from_raw_parts_mut(raw, size))) };
        }
    }

    /// Take a node off the free list, or mint a fresh one.
    fn alloc_node(&self) -> u32 {
        loop {
            // ordering: Acquire pairs with the free-list AcqRel CAS in
            // `release_node`, making the released node's writes visible.
            let f = self.free.load(Ordering::Acquire);
            let idx = idx_of(f);
            if idx == NIL {
                break;
            }
            // ordering: Acquire — the link was Release-stored by
            // `release_node` before its publish CAS.
            let next = self.node(idx).next.load(Ordering::Acquire);
            if self
                .free
                // ordering: AcqRel — Acquire synchronizes with the
                // releasing thread (its item take happens-before our
                // reuse); Release orders our detach for the next CAS.
                // The tag bump defeats free-list ABA.
                .compare_exchange(
                    f,
                    pack(tag_of(f).wrapping_add(1), next),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return idx;
            }
            // ordering: statistics counter; no synchronization needed.
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
        // ordering: Relaxed — only atomicity is needed to mint a unique
        // index; `ensure_chunk` below synchronizes the storage itself.
        let idx = self.next_fresh.fetch_add(1, Ordering::Relaxed);
        assert!(idx != NIL, "TreiberStack node indices exhausted");
        self.ensure_chunk(idx);
        idx
    }

    /// Return a detached node to the free list.
    fn release_node(&self, idx: u32) {
        let node = self.node(idx);
        loop {
            // ordering: Acquire pairs with the AcqRel CAS below run by
            // concurrent free-list users.
            let f = self.free.load(Ordering::Acquire);
            // ordering: Release — the link must be visible before the
            // CAS publishes this node as the free head.
            node.next.store(idx_of(f), Ordering::Release);
            if self
                .free
                // ordering: AcqRel — Release publishes our item `take`
                // (in the popper) before the node can be reused; tag bump
                // defeats ABA. Acquire on the failure path refreshes `f`.
                .compare_exchange(
                    f,
                    pack(tag_of(f).wrapping_add(1), idx),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
            // ordering: statistics counter; no synchronization needed.
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Publish the privately linked chain `first..=last` (already joined
    /// via `next`) with one CAS.
    fn attach(&self, first: u32, last: u32) {
        loop {
            // ordering: Acquire pairs with the AcqRel head CAS of
            // concurrent push/pop so the observed top node is valid.
            let h = self.head.load(Ordering::Acquire);
            // ordering: Release — the tail link must be visible before
            // the publish CAS makes the chain reachable.
            self.node(last).next.store(idx_of(h), Ordering::Release);
            if self
                .head
                // ordering: AcqRel — Release publishes the chain's items,
                // keys, and links to poppers (the stack's core
                // happens-before edge); tag bump defeats ABA.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), first),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
            // ordering: statistics counter; no synchronization needed.
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Push one item (one CAS on the uncontended path).
    pub fn push(&self, item: T) {
        self.push_keyed(item, 0);
    }

    /// Push one item stamped with a batch `key` (see
    /// [`TreiberStack::pop_many_same_key`]).
    pub fn push_keyed(&self, item: T, key: u64) {
        let idx = self.alloc_node();
        // SAFETY: the node is detached — we are its only owner until the
        // `attach` publish CAS below.
        self.node(idx).item.with_mut(|p| unsafe { *p = Some(item) });
        // ordering: Release — the key stamp must be visible before
        // `attach` publishes the node (speculative key walks may read
        // it as soon as the head CAS lands).
        self.node(idx).key.store(key, Ordering::Release);
        self.attach(idx, idx);
    }

    /// Push a batch, publishing it **atomically** (one CAS): a
    /// concurrent popper sees either none of the batch or all of it.
    /// Items pop back out in iteration order (first item on top).
    /// Returns the batch size.
    pub fn push_many(&self, items: impl IntoIterator<Item = T>) -> usize {
        self.push_many_keyed(items.into_iter().map(|i| (i, 0)))
    }

    /// [`TreiberStack::push_many`] with a per-item batch key.
    pub fn push_many_keyed(&self, items: impl IntoIterator<Item = (T, u64)>) -> usize {
        let mut first = NIL;
        let mut prev = NIL;
        let mut count = 0usize;
        for (item, key) in items {
            let idx = self.alloc_node();
            // SAFETY: detached node, exclusively owned until `attach`.
            self.node(idx).item.with_mut(|p| unsafe { *p = Some(item) });
            // ordering: Release — stamp visible before the publish CAS
            // (see `push_keyed`).
            self.node(idx).key.store(key, Ordering::Release);
            if first == NIL {
                first = idx;
            } else {
                // ordering: Release — private chain link, published
                // wholesale by `attach`'s CAS.
                self.node(prev).next.store(idx, Ordering::Release);
            }
            prev = idx;
            count += 1;
        }
        if first != NIL {
            self.attach(first, prev);
        }
        count
    }

    /// Pop the top item (one CAS on the uncontended path).
    pub fn pop(&self) -> Option<T> {
        loop {
            // ordering: Acquire pairs with `attach`'s AcqRel publish CAS:
            // a non-NIL head implies its item/key/next writes are visible.
            let h = self.head.load(Ordering::Acquire);
            let idx = idx_of(h);
            if idx == NIL {
                return None;
            }
            let node = self.node(idx);
            // ordering: Acquire — the link was Release-stored before the
            // node became reachable; a stale value is discarded by the
            // tag CAS below.
            let next = node.next.load(Ordering::Acquire);
            if self
                .head
                // ordering: AcqRel — Acquire takes ownership of the
                // detached node (pusher's writes happen-before our take);
                // Release orders the detach for the next head reader;
                // tag bump defeats ABA.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), next),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // SAFETY: the tag CAS transferred exclusive ownership.
                let item = node.item.with_mut(|p| unsafe { (*p).take() });
                debug_assert!(item.is_some(), "popped a node with no item");
                self.release_node(idx);
                return item;
            }
            // ordering: statistics counter; no synchronization needed.
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Pop up to `max` items with **one CAS**: the whole chain detaches
    /// atomically, so a batch costs the same synchronization as a
    /// single pop (§IV-C's amortization, applied to GET itself).
    ///
    /// The walk reads `next` links that concurrent operations may be
    /// recycling; any such interference bumps the head tag and fails
    /// the CAS, so a successful detach proves the chain was exactly the
    /// stack's top-`k` at CAS time. Returns top-first order.
    pub fn pop_many(&self, max: usize) -> Vec<T> {
        self.pop_chain(max, false)
    }

    /// [`TreiberStack::pop_many`], additionally bounded to nodes sharing
    /// the top node's batch key: the walk stops before the first node
    /// whose key differs. The bucket cache keys nodes by refill
    /// generation, so a batched GET can never straddle two refill
    /// rounds — consuming round N+1's buckets while round N is still
    /// outstanding would leave round N's tetris permanently partial
    /// (the §IV-D equal-progress invariant, applied to batched pops).
    pub fn pop_many_same_key(&self, max: usize) -> Vec<T> {
        self.pop_chain(max, true)
    }

    fn pop_chain(&self, max: usize, same_key: bool) -> Vec<T> {
        if max == 0 {
            return Vec::new();
        }
        loop {
            // ordering: Acquire pairs with `attach`'s publish CAS (see
            // `pop`).
            let h = self.head.load(Ordering::Acquire);
            if idx_of(h) == NIL {
                return Vec::new();
            }
            // Speculative walk: keys/links may be mutated by concurrent
            // recycling, but any interference bumps the head tag and
            // fails the CAS below, discarding whatever was read.
            // ordering: Acquire — stamped with Release before publish;
            // stale reads are discarded by the tag CAS.
            let key0 = self.node(idx_of(h)).key.load(Ordering::Acquire);
            let mut indices = Vec::with_capacity(max.min(16));
            indices.push(idx_of(h));
            while indices.len() < max {
                let nx = self
                    .node(*indices.last().unwrap())
                    .next
                    // ordering: Acquire — speculative link read; stale
                    // values are discarded by the tag CAS.
                    .load(Ordering::Acquire);
                if nx == NIL {
                    break;
                }
                // ordering: Acquire — speculative key read (see `key0`).
                if same_key && self.node(nx).key.load(Ordering::Acquire) != key0 {
                    break;
                }
                indices.push(nx);
            }
            let after = self
                .node(*indices.last().unwrap())
                .next
                // ordering: Acquire — speculative link read; validated by
                // the tag CAS.
                .load(Ordering::Acquire);
            if self
                .head
                // ordering: AcqRel — same contract as `pop`'s CAS: the
                // tag bump proves the walked chain was the authentic
                // top-k and transfers its exclusive ownership.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), after),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_err()
            {
                // ordering: statistics counter; no synchronization needed.
                self.retries.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let mut out = Vec::with_capacity(indices.len());
            for idx in indices {
                // SAFETY: tag unchanged across the CAS ⇒ no head CAS
                // interleaved ⇒ the walked chain is the authentic top-k
                // and now exclusively ours.
                let item = self.node(idx).item.with_mut(|p| unsafe { (*p).take() });
                debug_assert!(item.is_some(), "pop_many chain node with no item");
                if let Some(item) = item {
                    out.push(item);
                }
                self.release_node(idx);
            }
            return out;
        }
    }
}

impl<T> Drop for TreiberStack<T> {
    fn drop(&mut self) {
        let fresh = *self.next_fresh.get_mut();
        for idx in 0..fresh {
            let (c, off) = chunk_of(idx);
            let base = *self.chunks[c].get_mut();
            if base.is_null() {
                continue;
            }
            // SAFETY: &mut self — no concurrent access; drop any item
            // still parked in the node.
            unsafe { (*(*base.add(off)).item.get()).take() };
        }
        for (c, chunk) in self.chunks.iter_mut().enumerate() {
            let base = *chunk.get_mut();
            if !base.is_null() {
                let size = CHUNK0 << c;
                // SAFETY: `base` came from `Box::into_raw` of a
                // `size`-length boxed slice in `ensure_chunk`; &mut self
                // guarantees nobody else can still reach it.
                unsafe { drop(Box::from_raw(ptr::slice_from_raw_parts_mut(base, size))) };
            }
        }
    }
}

impl<T> std::fmt::Debug for TreiberStack<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TreiberStack")
            .field("empty", &self.is_empty())
            .field("retries", &self.retries())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn chunk_coordinates_partition_the_index_space() {
        // Every index maps into exactly one in-bounds chunk slot, and
        // consecutive indices tile chunks without gaps.
        let mut prev = (0usize, usize::MAX);
        for idx in 0..100_000u32 {
            let (c, off) = chunk_of(idx);
            assert!(off < CHUNK0 << c, "idx {idx} offset {off} out of chunk {c}");
            if c == prev.0 {
                assert_eq!(off, prev.1.wrapping_add(1));
            } else {
                assert_eq!(c, prev.0 + 1);
                assert_eq!(off, 0);
            }
            prev = (c, off);
        }
    }

    #[test]
    fn lifo_order_and_reuse() {
        let s = TreiberStack::new();
        s.push(1u64);
        s.push(2);
        s.push(3);
        assert_eq!(s.pop(), Some(3));
        assert_eq!(s.pop(), Some(2));
        s.push(9); // reuses a freed node
        assert_eq!(s.pop(), Some(9));
        assert_eq!(s.pop(), Some(1));
        assert_eq!(s.pop(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn push_many_pops_in_batch_order() {
        let s = TreiberStack::new();
        assert_eq!(s.push_many([10u64, 20, 30]), 3);
        assert_eq!(s.pop(), Some(10), "first item of the batch is on top");
        assert_eq!(s.pop(), Some(20));
        assert_eq!(s.pop(), Some(30));
    }

    #[test]
    fn pop_many_detaches_the_top_chain() {
        let s = TreiberStack::new();
        for i in 0..5u64 {
            s.push(i);
        }
        assert_eq!(s.pop_many(3), vec![4, 3, 2]);
        assert_eq!(s.pop_many(99), vec![1, 0], "short chain still drains");
        assert!(s.pop_many(4).is_empty());
        assert!(s.pop_many(0).is_empty());
    }

    #[test]
    fn pop_many_same_key_stops_at_batch_boundary() {
        let s = TreiberStack::new();
        assert_eq!(s.push_many_keyed([(1u64, 7), (2, 7)]), 2);
        s.push_keyed(3, 8);
        s.push_keyed(4, 8);
        // Top-down the stack is [4(k8), 3(k8), 1(k7), 2(k7)].
        assert_eq!(s.pop_many_same_key(10), vec![4, 3], "stops before key 7");
        assert_eq!(s.pop_many_same_key(1), vec![1], "max still caps the batch");
        assert_eq!(s.pop_many_same_key(10), vec![2]);
        assert!(s.pop_many_same_key(10).is_empty());
    }

    #[test]
    fn concurrent_push_pop_conserves_items() {
        const THREADS: usize = 8;
        const PER: u64 = 2_000;
        let s = Arc::new(TreiberStack::new());
        let handles: Vec<_> = (0..THREADS as u64)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut kept = Vec::new();
                    for i in 0..PER {
                        s.push(t * PER + i);
                        if i % 3 == 0 {
                            if let Some(v) = s.pop() {
                                kept.push(v);
                            }
                        }
                    }
                    kept
                })
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        while let Some(v) = s.pop() {
            all.push(v);
        }
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            THREADS * PER as usize,
            "no item lost or duplicated"
        );
    }
}
