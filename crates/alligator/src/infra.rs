//! The write-allocation infrastructure.
//!
//! "The infrastructure processes allocation metafiles to find available
//! VBNs that meet the write allocator's objectives and uses them to
//! construct a set of buckets" (§IV-A). Its duties (§IV-B2):
//!
//! 1. read allocation bitmap files to find free VBNs with which to fill
//!    buckets ([`Infrastructure::refill_round`]);
//! 2. write to allocation bitmap files to reflect VBN allocations and
//!    frees performed by cleaner threads
//!    ([`Infrastructure::commit_bucket`], [`Infrastructure::commit_frees`]).
//!
//! ## Fill policy (§IV-D, Figure 3)
//!
//! Per RAID group, the infrastructure selects the Allocation Area with the
//! most free blocks and walks the bitmaps from the top of the AA; *each
//! data drive contributes one bucket* filled with the next chunk of free
//! VBNs on that drive. All buckets of a refill round share one
//! [`Tetris`], whose outstanding-bucket count is the number of buckets
//! built. When every drive's progress reaches the end of the AA, a new AA
//! is selected from the same RAID group. Collective reinsertion — buckets
//! only entering the cache once *all* drives have a refilled bucket —
//! "ensures equal progress on each drive".

use crate::bucket::{Bucket, FinishedBucket};
use crate::cache::BucketCache;
use crate::config::{AllocConfig, ReinsertPolicy};
use crate::stats::AllocStats;
use crate::tetris::Tetris;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wafl_blockdev::{AaId, IoEngine, RaidGroupId, Vbn};
use wafl_metafile::AggregateMap;

/// Per-RAID-group fill cursor: the current AA and each drive's progress
/// (absolute DBN of the next block to scan) within it.
#[derive(Debug, Clone)]
struct RgCursor {
    aa: Option<AaId>,
    /// Next DBN to scan, per data drive of the group.
    next_dbn: Vec<u64>,
}

/// The infrastructure half of White Alligator.
pub struct Infrastructure {
    cfg: AllocConfig,
    aggmap: Arc<AggregateMap>,
    io: Arc<IoEngine>,
    stats: Arc<AllocStats>,
    cursors: Mutex<Vec<RgCursor>>, // lock-rank: infra.cursors 40
    generation: AtomicU64,
    /// Set when the most recent refill round produced zero buckets —
    /// i.e., the aggregate has no allocatable space left.
    exhausted: AtomicBool,
}

impl Infrastructure {
    /// Build the infrastructure over an aggregate's metadata and media.
    pub fn new(
        cfg: AllocConfig,
        aggmap: Arc<AggregateMap>,
        io: Arc<IoEngine>,
        stats: Arc<AllocStats>,
    ) -> Arc<Self> {
        let cursors = aggmap
            .geometry()
            .raid_groups()
            .iter()
            .map(|g| RgCursor {
                aa: None,
                next_dbn: vec![0; g.width() as usize],
            })
            .collect();
        Arc::new(Self {
            cfg,
            aggmap,
            io,
            stats,
            cursors: Mutex::new(cursors),
            generation: AtomicU64::new(0),
            exhausted: AtomicBool::new(false),
        })
    }

    /// The allocator configuration.
    #[inline]
    pub fn config(&self) -> &AllocConfig {
        &self.cfg
    }

    /// Shared statistics.
    #[inline]
    pub fn stats(&self) -> &Arc<AllocStats> {
        &self.stats
    }

    /// The aggregate's free-space metadata.
    #[inline]
    pub fn aggmap(&self) -> &Arc<AggregateMap> {
        &self.aggmap
    }

    /// The aggregate's I/O engine.
    #[inline]
    pub fn io(&self) -> &Arc<IoEngine> {
        &self.io
    }

    /// Did the last refill round find no space anywhere?
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        // ordering: Acquire — pairs with the Release stores of the fill
        // outcome; pairs-with: infra.exhausted.
        self.exhausted.load(Ordering::Acquire)
    }

    /// Harvest async write completions without blocking (a no-op when no
    /// [`wafl_blockdev::AioEngine`] is attached). Accounts latency,
    /// decrements the inflight gauge, and — crucially for the fault
    /// machinery under depth > 1 — counts terminal I/O errors here, per
    /// *completion*, exactly where the synchronous path counted them per
    /// call. Returns the number of completions harvested.
    pub fn harvest_io(&self) -> usize {
        let Some(aio) = self.io.aio() else { return 0 };
        self.account_completions(aio.poll_completions())
    }

    /// Barrier: wait for every in-flight async write to complete (and
    /// the file mirror, if any, to fsync), then harvest. A no-op without
    /// an attached engine. Returns completions harvested.
    pub fn drain_io(&self) -> usize {
        let Some(aio) = self.io.aio() else { return 0 };
        self.account_completions(aio.drain())
    }

    fn account_completions(&self, done: Vec<wafl_blockdev::Completion>) -> usize {
        if done.is_empty() {
            return 0;
        }
        let mut latency = 0u64;
        for c in &done {
            latency += c.submit_to_complete_ns;
            if c.result.is_err() {
                // ordering: statistics counter; staleness is acceptable.
                self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.stats.io_completed(done.len() as u64, latency);
        done.len()
    }

    /// One refill round (steps 1 and 6→1 of Figure 2): build one bucket
    /// per data drive per RAID group and insert them into `cache`
    /// according to the reinsertion policy. Returns the number of buckets
    /// inserted.
    ///
    /// Runs as an infrastructure message; callers route it through the
    /// configured executor/affinity (see [`crate::Allocator`]).
    pub fn refill_round(&self, cache: &BucketCache) -> usize {
        let mut sp = obs::trace_span!(obs::EventKind::Refill);
        // ordering: statistics counter; staleness is acceptable.
        self.stats.infra_msgs.fetch_add(1, Ordering::Relaxed);
        // ordering: statistics counter; staleness is acceptable.
        self.stats.refill_rounds.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed RMW gives unique generations; round ordering comes from the publish path, not this counter.
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let geo = Arc::clone(self.aggmap.geometry());
        let mut cursors = self.cursors.lock();
        let mut all_buckets = Vec::new();
        let mut built = 0usize;
        for g in geo.raid_groups() {
            let cursor = &mut cursors[g.id.0 as usize];
            let width = g.width() as usize;
            // Gather one chunk per drive, advancing to fresh AAs as
            // needed. A drive may contribute nothing if the group is out
            // of space.
            let mut per_drive: Vec<Vec<Vbn>> = vec![Vec::new(); width];
            // A bucket is one contiguous run from a single AA (§IV-C): a
            // drive that already holds VBNs from an earlier AA never
            // splices a later AA into the same bucket (AA selection may
            // jump to a lower-numbered AA after frees, which would break
            // the ascending-contiguous invariant). Bounded by the AA
            // count: each inner failure advances the AA.
            let mut drive_aa: Vec<Option<AaId>> = vec![None; width];
            for _ in 0..=geo.aa_count(g.id) {
                let aa = match cursor.aa {
                    Some(aa) => aa,
                    None => match self.aggmap.select_aa(g.id) {
                        Some(aa) => {
                            // ordering: statistics counter; staleness is acceptable.
                            self.stats.aa_switches.fetch_add(1, Ordering::Relaxed);
                            let dbns = geo.aa_dbn_range(aa);
                            cursor.aa = Some(aa);
                            cursor.next_dbn = vec![dbns.start; width];
                            aa
                        }
                        None => break, // RAID group fully allocated.
                    },
                };
                let dbns = geo.aa_dbn_range(aa);
                let mut any_progress = false;
                for d in 0..width {
                    if drive_aa[d].is_some_and(|prev| prev != aa) {
                        continue; // this drive's bucket is AA-bound
                    }
                    let want = self.cfg.chunk_blocks - per_drive[d].len();
                    if want == 0 {
                        continue;
                    }
                    let got = self
                        .aggmap
                        .reserve_in_aa(aa, d as u32, cursor.next_dbn[d], want);
                    if let Some(last) = got.last() {
                        // Progress = one past the last reserved block.
                        let g_base = g.drive_vbn_range(d as u32).start;
                        cursor.next_dbn[d] = (last.0 - g_base) + 1;
                        any_progress = true;
                        drive_aa[d] = Some(aa);
                    } else {
                        cursor.next_dbn[d] = dbns.end;
                    }
                    per_drive[d].extend(got);
                }
                let filled = per_drive.iter().all(|v| v.len() >= self.cfg.chunk_blocks);
                let have_any = per_drive.iter().all(|v| !v.is_empty());
                let aa_done = cursor.next_dbn.iter().all(|&n| n >= dbns.end);
                if filled || (aa_done && have_any) {
                    if aa_done {
                        cursor.aa = None;
                    }
                    break;
                }
                if aa_done {
                    cursor.aa = None; // move on to the next AA
                    continue;
                }
                if !any_progress {
                    // Defensive: no fill and no AA completion should be
                    // impossible; avoid spinning.
                    break;
                }
            }
            let reserved: u64 = per_drive.iter().map(|v| v.len() as u64).sum();
            if reserved == 0 {
                continue;
            }
            self.stats
                .vbns_reserved
                // ordering: statistics counter; staleness is acceptable.
                .fetch_add(reserved, Ordering::Relaxed);
            let nonempty = per_drive.iter().filter(|v| !v.is_empty()).count();
            let tetris = Tetris::new(
                g.id,
                nonempty,
                Arc::clone(&self.io),
                Arc::clone(&self.stats),
            );
            for (d, vbns) in per_drive.into_iter().enumerate() {
                if vbns.is_empty() {
                    continue;
                }
                let aa = geo.aa_of(vbns[0]);
                let bucket = Bucket::new(
                    g.id,
                    d as u32,
                    g.data_drives[d],
                    aa,
                    vbns,
                    g.drive_vbn_range(d as u32).start,
                    Arc::clone(&tetris),
                    generation,
                );
                // ordering: statistics counter; staleness is acceptable.
                self.stats.buckets_filled.fetch_add(1, Ordering::Relaxed);
                built += 1;
                match self.cfg.reinsert {
                    ReinsertPolicy::Immediate => cache.insert(bucket),
                    ReinsertPolicy::Collective => all_buckets.push(bucket),
                }
            }
        }
        drop(cursors);
        if self.cfg.reinsert == ReinsertPolicy::Collective {
            obs::trace_instant!(obs::EventKind::InsertAll, all_buckets.len() as u64);
            cache.insert_all(all_buckets);
        }
        self.exhausted
            // ordering: Release — publishes the fill outcome this flag
            // summarizes; pairs-with: infra.exhausted.
            .store(built == 0 && cache.is_empty(), Ordering::Release);
        sp.set_arg(built as u64);
        built
    }

    /// Refill a single drive's bucket independently of its RAID-group
    /// peers — the [`ReinsertPolicy::Immediate`] alternative the paper
    /// argues against (§IV-D). The bucket gets a tetris of its own
    /// (outstanding = 1), so its write I/O covers only one drive's rows:
    /// drives drift apart and stripes are never complete. Returns `true`
    /// if a bucket was built.
    pub fn refill_drive(&self, rg: RaidGroupId, drive_in_rg: u32, cache: &BucketCache) -> bool {
        // ordering: statistics counter; staleness is acceptable.
        self.stats.infra_msgs.fetch_add(1, Ordering::Relaxed);
        // ordering: Relaxed RMW gives unique generations; round ordering comes from the publish path, not this counter.
        let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
        let geo = Arc::clone(self.aggmap.geometry());
        let g = geo.raid_group(rg);
        let mut cursors = self.cursors.lock();
        let cursor = &mut cursors[rg.0 as usize];
        let mut vbns = Vec::new();
        for _ in 0..=geo.aa_count(rg) {
            let aa = match cursor.aa {
                Some(aa) => aa,
                None => match self.aggmap.select_aa(rg) {
                    Some(aa) => {
                        // ordering: statistics counter; staleness is acceptable.
                        self.stats.aa_switches.fetch_add(1, Ordering::Relaxed);
                        let dbns = geo.aa_dbn_range(aa);
                        cursor.aa = Some(aa);
                        cursor.next_dbn = vec![dbns.start; g.width() as usize];
                        aa
                    }
                    None => break,
                },
            };
            let dbns = geo.aa_dbn_range(aa);
            let want = self.cfg.chunk_blocks - vbns.len();
            let got = self.aggmap.reserve_in_aa(
                aa,
                drive_in_rg,
                cursor.next_dbn[drive_in_rg as usize],
                want,
            );
            if let Some(last) = got.last() {
                let base = g.drive_vbn_range(drive_in_rg).start;
                cursor.next_dbn[drive_in_rg as usize] = (last.0 - base) + 1;
            } else {
                cursor.next_dbn[drive_in_rg as usize] = dbns.end;
            }
            vbns.extend(got);
            if !vbns.is_empty() {
                // One AA per bucket (§IV-C): stop at the AA boundary even
                // if the bucket is short.
                break;
            }
            // This drive is out of space in the AA; only advance the AA
            // when *every* drive has drained it (other drives may lag).
            if cursor.next_dbn.iter().all(|&n| n >= dbns.end) {
                cursor.aa = None;
            } else {
                break;
            }
        }
        drop(cursors);
        if vbns.is_empty() {
            return false;
        }
        self.stats
            .vbns_reserved
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(vbns.len() as u64, Ordering::Relaxed);
        // ordering: statistics counter; staleness is acceptable.
        self.stats.buckets_filled.fetch_add(1, Ordering::Relaxed);
        let tetris = Tetris::new(rg, 1, Arc::clone(&self.io), Arc::clone(&self.stats));
        let aa = geo.aa_of(vbns[0]);
        let bucket = Bucket::new(
            rg,
            drive_in_rg,
            g.data_drives[drive_in_rg as usize],
            aa,
            vbns,
            g.drive_vbn_range(drive_in_rg).start,
            tetris,
            generation,
        );
        cache.insert(bucket);
        true
    }

    /// Step 6 of Figure 2: process a returned bucket — commit consumed
    /// VBNs to the metafiles, release unconsumed reservations. Wall time
    /// spent here accumulates into `commit_batch_ns` so the PUT-side
    /// commit funnel is measurable alongside the convoy gauge.
    pub fn commit_bucket(&self, fin: FinishedBucket) {
        let t0 = std::time::Instant::now();
        let _sp = obs::trace_span!(obs::EventKind::CommitBucket, fin.consumed.len() as u64);
        // ordering: statistics counter; staleness is acceptable.
        self.stats.infra_msgs.fetch_add(1, Ordering::Relaxed);
        for v in &fin.consumed {
            self.aggmap
                .commit_used(*v)
                .expect("consumed VBN must be reserved");
        }
        for v in &fin.unused {
            self.aggmap
                .release(*v)
                .expect("unused VBN must be reserved");
        }
        self.stats
            .vbns_committed
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(fin.consumed.len() as u64, Ordering::Relaxed);
        self.stats
            .vbns_released
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(fin.unused.len() as u64, Ordering::Relaxed);
        self.stats
            .commit_batch_ns
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }

    /// Commit a stage of frees to the metafiles (§IV-A's free path).
    pub fn commit_frees(&self, vbns: Vec<Vbn>) {
        let _sp = obs::trace_span!(obs::EventKind::StageCommit, vbns.len() as u64);
        // ordering: statistics counter; staleness is acceptable.
        self.stats.infra_msgs.fetch_add(1, Ordering::Relaxed);
        // ordering: statistics counter; staleness is acceptable.
        self.stats.stage_commits.fetch_add(1, Ordering::Relaxed);
        for v in &vbns {
            self.aggmap.free(*v).expect("double free");
        }
        self.stats
            .vbns_freed
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(vbns.len() as u64, Ordering::Relaxed);
        // ordering: Release — reopen only after the new free space is
        // published; pairs-with: infra.exhausted.
        self.exhausted.store(false, Ordering::Release);
    }

    /// The metafile block (of the aggregate active map) that a refill for
    /// this RAID group will touch next — used to pick the Range affinity
    /// for the message.
    pub fn refill_mf_block(&self, rg: RaidGroupId) -> u64 {
        let cursors = self.cursors.lock();
        let c = &cursors[rg.0 as usize];
        let geo = self.aggmap.geometry();
        let g = geo.raid_group(rg);
        let dbn = c.next_dbn.first().copied().unwrap_or(0);
        let vbn = g.vbn_base + dbn;
        vbn / wafl_metafile::BITS_PER_MF_BLOCK
    }
}

impl std::fmt::Debug for Infrastructure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Infrastructure")
            .field("free", &self.aggmap.free_count())
            .field("exhausted", &self.is_exhausted())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafl_blockdev::{DriveKind, GeometryBuilder};

    fn setup(chunk: usize) -> (Arc<Infrastructure>, BucketCache) {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 256)
                .raid_group(2, 1, 256)
                .build(),
        );
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
        let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
        let infra = Infrastructure::new(
            AllocConfig::with_chunk(chunk),
            aggmap,
            io,
            Arc::new(AllocStats::default()),
        );
        (infra, BucketCache::new())
    }

    #[test]
    fn refill_builds_one_bucket_per_drive() {
        let (infra, cache) = setup(16);
        let n = infra.refill_round(&cache);
        assert_eq!(n, 5, "3 + 2 data drives");
        assert_eq!(cache.len(), 5);
        let b = cache.try_get().unwrap();
        assert_eq!(b.len(), 16);
        assert!(b.is_contiguous(), "fresh AA yields contiguous chunks");
    }

    #[test]
    fn refill_round_spreads_buckets_over_per_drive_shards() {
        // With one shard per data drive, a collective refill lands each
        // drive's bucket in its own shard: five cleaners with distinct
        // affinities all pop from their home shard, no steals.
        let (infra, _) = setup(16);
        let stats = Arc::new(AllocStats::default());
        let cache = BucketCache::with_shards(5, Arc::clone(&stats));
        assert_eq!(infra.refill_round(&cache), 5);
        let mut drives: Vec<u32> = (0..5)
            .map(|c| cache.try_get_from(c).unwrap().drive().0)
            .collect();
        drives.sort_unstable();
        assert_eq!(drives, vec![0, 1, 2, 3, 4]);
        // ordering: test readback.
        assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 5);
        // ordering: test readback.
        assert_eq!(stats.cache_get_steal.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn buckets_start_at_top_of_emptiest_aa() {
        let (infra, cache) = setup(8);
        infra.refill_round(&cache);
        // All AAs equally free → AA 0 → buckets start at each drive's
        // VBN base.
        let starts: Vec<u64> = (0..5)
            .map(|_| cache.try_get().unwrap().start_vbn().0)
            .collect();
        assert!(starts.contains(&0));
        assert!(starts.contains(&256));
        assert!(starts.contains(&512));
        assert!(starts.contains(&768)); // RG1 drive 0
        assert!(starts.contains(&1024));
    }

    #[test]
    fn successive_refills_advance_equally_per_drive() {
        let (infra, cache) = setup(8);
        infra.refill_round(&cache);
        while cache.try_get().is_some() {}
        infra.refill_round(&cache);
        let mut starts: Vec<u64> = Vec::new();
        while let Some(b) = cache.try_get() {
            starts.push(b.start_vbn().0);
        }
        starts.sort_unstable();
        // Every drive progressed by exactly one chunk (8): invariant 7.
        assert_eq!(starts, vec![8, 264, 520, 776, 1032]);
    }

    #[test]
    fn aa_switch_when_exhausted() {
        let (infra, cache) = setup(64); // one AA per refill (64 stripes)
        infra.refill_round(&cache);
        // ordering: statistics counter; staleness is acceptable.
        let before = infra.stats().aa_switches.load(Ordering::Relaxed);
        while cache.try_get().is_some() {}
        infra.refill_round(&cache);
        // ordering: statistics counter; staleness is acceptable.
        let after = infra.stats().aa_switches.load(Ordering::Relaxed);
        assert!(after > before, "second refill had to select a new AA");
        // AA selection prefers untouched AAs (most free).
        let b = cache.try_get().unwrap();
        assert_eq!(b.aa().index, 1);
    }

    #[test]
    fn commit_bucket_updates_metafiles() {
        let (infra, cache) = setup(8);
        infra.refill_round(&cache);
        let mut b = cache.try_get().unwrap();
        let v1 = b.use_vbn(0x1).unwrap();
        let v2 = b.use_vbn(0x2).unwrap();
        let fin = b.finish();
        assert_eq!(fin.consumed, vec![v1, v2]);
        infra.commit_bucket(fin);
        let am = infra.aggmap();
        assert!(am.is_used(v1));
        assert!(am.is_used(v2));
        assert_eq!(am.active_map().dirty_block_count(), 1);
        // Unused releases went back to free.
        let s = infra.stats().snapshot();
        assert_eq!(s.vbns_committed, 2);
        assert_eq!(s.vbns_released, 6);
    }

    #[test]
    fn commit_frees_restores_space() {
        let (infra, cache) = setup(8);
        infra.refill_round(&cache);
        let mut b = cache.try_get().unwrap();
        let v = b.use_vbn(0x9).unwrap();
        infra.commit_bucket(b.finish());
        let free_before = infra.aggmap().free_count();
        infra.commit_frees(vec![v]);
        assert_eq!(infra.aggmap().free_count(), free_before + 1);
        assert!(!infra.aggmap().is_used(v));
    }

    #[test]
    fn exhaustion_detected_and_recovers_after_frees() {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(8)
                .raid_group(1, 1, 16)
                .build(),
        );
        let aggmap = Arc::new(AggregateMap::new(Arc::clone(&geo)));
        let io = Arc::new(IoEngine::new(geo, DriveKind::Ssd));
        let infra = Infrastructure::new(
            AllocConfig::with_chunk(16),
            aggmap,
            io,
            Arc::new(AllocStats::default()),
        );
        let cache = BucketCache::new();
        // Buckets are AA-bound (8 stripes): drain the 16-block drive
        // across however many refill rounds that takes.
        let mut used = Vec::new();
        loop {
            if cache.is_empty() && infra.refill_round(&cache) == 0 {
                break;
            }
            let mut b = cache.try_get().unwrap();
            while let Some(v) = b.use_vbn(1) {
                used.push(v);
            }
            infra.commit_bucket(b.finish());
        }
        assert_eq!(used.len(), 16, "every block consumed");
        assert!(infra.is_exhausted());
        infra.commit_frees(used);
        assert!(!infra.is_exhausted());
        assert!(infra.refill_round(&cache) >= 1);
    }

    #[test]
    fn consumed_vbns_survive_metafile_consistency_check() {
        let (infra, cache) = setup(32);
        for _ in 0..3 {
            infra.refill_round(&cache);
            while let Some(mut b) = cache.try_get() {
                while b.use_vbn(7).is_some() {}
                infra.commit_bucket(b.finish());
            }
        }
        infra.aggmap().verify().unwrap();
        let s = infra.stats().snapshot();
        s.check_conservation(0).unwrap();
    }
}
