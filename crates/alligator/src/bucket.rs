//! Buckets: the basic unit of allocation handed to cleaner threads.
//!
//! "A bucket is simply a set of contiguous VBNs on each drive that is
//! defined by a starting VBN and a length, with additional metadata to
//! track which VBNs have already been used" (§IV-C). Buckets exist to
//! amortize three costs: finding free VBNs in the infrastructure,
//! cleaner-thread synchronization (paid per bucket, not per VBN), and they
//! guarantee that one cleaner gets *contiguous* VBNs for consecutive file
//! blocks — "which is not possible when allocating one at a time in a
//! multithreaded environment".
//!
//! The **USE** operation lives here ([`Bucket::use_vbn`]): it consumes the
//! next VBN and records the buffer's payload for the bucket's tetris
//! slot. It takes `&mut self` and touches no shared state — the
//! synchronization-free hot path the architecture is designed around.

use crate::tetris::Tetris;
use std::sync::Arc;
use wafl_blockdev::{AaId, BlockStamp, DriveId, RaidGroupId, Vbn};

/// A bucket of free VBNs on one drive, plus its tetris attachment.
pub struct Bucket {
    /// Owning RAID group.
    rg: RaidGroupId,
    /// Drive index within the RAID group.
    drive_in_rg: u32,
    /// Aggregate-wide drive id.
    drive: DriveId,
    /// Allocation Area the VBNs came from.
    aa: AaId,
    /// The reserved VBNs, ascending (contiguous when the AA is empty).
    vbns: Vec<Vbn>,
    /// Index of the next unused VBN.
    next: usize,
    /// Buffer payloads recorded by USE: `(dbn, stamp)` for the tetris.
    writes: Vec<(u64, BlockStamp)>,
    /// DBN of the first VBN (so USE can compute DBNs without geometry).
    base_dbn: u64,
    /// Base VBN minus base DBN (drive VBN base) for DBN conversion.
    vbn_to_dbn_delta: u64,
    /// The tetris this bucket deposits into.
    tetris: Arc<Tetris>,
    /// Monotone refill generation, for debugging and tests.
    generation: u64,
}

impl Bucket {
    /// Construct a filled bucket. `drive_vbn_base` is the first VBN of the
    /// owning drive (used to derive DBNs for the tetris). Buckets are
    /// normally built by the refill infrastructure; this is public so
    /// out-of-crate harnesses (the cache stress test, the wall-clock
    /// contention bench) can exercise the cache with real buckets.
    ///
    /// # Panics
    /// Panics if `vbns` is empty or not ascending.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rg: RaidGroupId,
        drive_in_rg: u32,
        drive: DriveId,
        aa: AaId,
        vbns: Vec<Vbn>,
        drive_vbn_base: u64,
        tetris: Arc<Tetris>,
        generation: u64,
    ) -> Self {
        assert!(!vbns.is_empty(), "bucket must hold at least one VBN");
        debug_assert!(
            vbns.windows(2).all(|w| w[0] < w[1]),
            "bucket VBNs must ascend"
        );
        let base_dbn = vbns[0].0 - drive_vbn_base;
        Self {
            rg,
            drive_in_rg,
            drive,
            aa,
            writes: Vec::with_capacity(vbns.len()),
            next: 0,
            base_dbn,
            vbn_to_dbn_delta: drive_vbn_base,
            vbns,
            tetris,
            generation,
        }
    }

    /// **USE** (step 3 of Figure 2): assign the next VBN from the bucket
    /// to a dirty buffer carrying `stamp`, marking it consumed in the
    /// bucket metadata and enqueuing the buffer toward the tetris.
    ///
    /// Returns `None` when the bucket is exhausted; the cleaner should
    /// then PUT this bucket and GET a fresh one.
    #[inline]
    pub fn use_vbn(&mut self, stamp: BlockStamp) -> Option<Vbn> {
        let vbn = *self.vbns.get(self.next)?;
        self.next += 1;
        self.writes.push((vbn.0 - self.vbn_to_dbn_delta, stamp));
        Some(vbn)
    }

    /// VBNs not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.vbns.len() - self.next
    }

    /// Is every VBN consumed?
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.next == self.vbns.len()
    }

    /// The consumed VBNs so far (ascending).
    #[inline]
    pub fn consumed(&self) -> &[Vbn] {
        &self.vbns[..self.next]
    }

    /// The unconsumed VBNs (ascending).
    #[inline]
    pub fn unused(&self) -> &[Vbn] {
        &self.vbns[self.next..]
    }

    /// Owning RAID group.
    #[inline]
    pub fn rg(&self) -> RaidGroupId {
        self.rg
    }

    /// Drive index within the RAID group.
    #[inline]
    pub fn drive_in_rg(&self) -> u32 {
        self.drive_in_rg
    }

    /// Aggregate-wide drive id.
    #[inline]
    pub fn drive(&self) -> DriveId {
        self.drive
    }

    /// Source Allocation Area.
    #[inline]
    pub fn aa(&self) -> AaId {
        self.aa
    }

    /// First VBN of the bucket.
    #[inline]
    pub fn start_vbn(&self) -> Vbn {
        self.vbns[0]
    }

    /// Total VBNs the bucket was filled with (the chunk size, §IV-C).
    #[inline]
    pub fn len(&self) -> usize {
        self.vbns.len()
    }

    /// Buckets are never empty (checked at construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Refill generation (diagnostics).
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// DBN of the bucket's first block (tetris row).
    #[inline]
    pub fn base_dbn(&self) -> u64 {
        self.base_dbn
    }

    /// Are the VBNs fully contiguous (the §IV-C definition)?
    pub fn is_contiguous(&self) -> bool {
        self.vbns.windows(2).all(|w| w[1].0 == w[0].0 + 1)
    }

    /// Tear the bucket down for PUT: deposit recorded writes into the
    /// tetris (triggering the RAID I/O if this was the last outstanding
    /// bucket) and return the pieces the infrastructure needs for its
    /// metafile commit.
    pub(crate) fn finish(self) -> FinishedBucket {
        let Bucket {
            rg,
            drive_in_rg,
            drive,
            aa,
            vbns,
            next,
            writes,
            tetris,
            generation,
            ..
        } = self;
        let io = tetris.deposit_and_complete(drive_in_rg, writes);
        let io_error = matches!(io, Some(Err(_)));
        FinishedBucket {
            rg,
            drive_in_rg,
            drive,
            aa,
            consumed: vbns[..next].to_vec(),
            unused: vbns[next..].to_vec(),
            io_submitted: io.is_some(),
            io_error,
            generation,
        }
    }
}

impl std::fmt::Debug for Bucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bucket")
            .field("rg", &self.rg)
            .field("drive", &self.drive)
            .field("start", &self.vbns[0].0)
            .field("len", &self.vbns.len())
            .field("next", &self.next)
            .field("gen", &self.generation)
            .finish()
    }
}

/// A bucket after PUT: what the infrastructure's commit step consumes.
#[derive(Debug)]
pub struct FinishedBucket {
    /// Owning RAID group.
    pub rg: RaidGroupId,
    /// Drive index within the RAID group.
    pub drive_in_rg: u32,
    /// Aggregate-wide drive id.
    pub drive: DriveId,
    /// Source Allocation Area.
    pub aa: AaId,
    /// VBNs consumed by USE — to be committed in the metafiles.
    pub consumed: Vec<Vbn>,
    /// VBNs never consumed — to be released back to free.
    pub unused: Vec<Vbn>,
    /// Whether this PUT completed its tetris and submitted the RAID I/O.
    pub io_submitted: bool,
    /// Whether the submitted RAID I/O failed terminally (only meaningful
    /// when `io_submitted` is true).
    pub io_error: bool,
    /// Refill generation.
    pub generation: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AllocStats;
    use wafl_blockdev::{DriveKind, GeometryBuilder, IoEngine};

    fn tetris(outstanding: usize) -> (Arc<Tetris>, Arc<IoEngine>) {
        let engine = Arc::new(IoEngine::new(
            Arc::new(
                GeometryBuilder::new()
                    .aa_stripes(32)
                    .raid_group(2, 1, 256)
                    .build(),
            ),
            DriveKind::Ssd,
        ));
        let t = Tetris::new(
            RaidGroupId(0),
            outstanding,
            Arc::clone(&engine),
            Arc::new(AllocStats::default()),
        );
        (t, engine)
    }

    fn bucket(t: &Arc<Tetris>, start: u64, len: u64, base: u64) -> Bucket {
        Bucket::new(
            RaidGroupId(0),
            0,
            DriveId(0),
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            (start..start + len).map(Vbn).collect(),
            base,
            Arc::clone(t),
            1,
        )
    }

    #[test]
    fn use_consumes_in_order() {
        let (t, _) = tetris(1);
        let mut b = bucket(&t, 10, 4, 0);
        assert_eq!(b.use_vbn(100), Some(Vbn(10)));
        assert_eq!(b.use_vbn(101), Some(Vbn(11)));
        assert_eq!(b.remaining(), 2);
        assert_eq!(b.consumed(), &[Vbn(10), Vbn(11)]);
        assert_eq!(b.unused(), &[Vbn(12), Vbn(13)]);
        assert!(b.is_contiguous());
    }

    #[test]
    fn exhausted_bucket_returns_none() {
        let (t, _) = tetris(1);
        let mut b = bucket(&t, 0, 2, 0);
        b.use_vbn(1);
        b.use_vbn(2);
        assert!(b.is_exhausted());
        assert_eq!(b.use_vbn(3), None);
        assert_eq!(b.use_vbn(3), None, "stays exhausted");
    }

    #[test]
    fn finish_reports_consumed_and_unused() {
        let (t, engine) = tetris(1);
        let mut b = bucket(&t, 5, 4, 0);
        b.use_vbn(0xaa);
        b.use_vbn(0xbb);
        let f = b.finish();
        assert_eq!(f.consumed, vec![Vbn(5), Vbn(6)]);
        assert_eq!(f.unused, vec![Vbn(7), Vbn(8)]);
        assert!(f.io_submitted, "last bucket of the tetris submits");
        assert!(!f.io_error);
        assert_eq!(engine.read_vbn(Vbn(5)).unwrap(), 0xaa);
        assert_eq!(engine.read_vbn(Vbn(6)).unwrap(), 0xbb);
    }

    #[test]
    fn dbn_conversion_uses_drive_base() {
        // Drive 1 of the group owns VBNs [256, 512); its DBNs start at 0.
        let (t, engine) = tetris(1);
        let mut b = Bucket::new(
            RaidGroupId(0),
            1,
            DriveId(1),
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            vec![Vbn(256), Vbn(257)],
            256,
            Arc::clone(&t),
            1,
        );
        assert_eq!(b.base_dbn(), 0);
        b.use_vbn(0x42);
        b.finish();
        assert_eq!(engine.read_vbn(Vbn(256)).unwrap(), 0x42);
    }

    #[test]
    fn noncontiguous_bucket_detected() {
        let (t, _) = tetris(1);
        let b = Bucket::new(
            RaidGroupId(0),
            0,
            DriveId(0),
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            vec![Vbn(0), Vbn(1), Vbn(5)],
            0,
            t,
            1,
        );
        assert!(!b.is_contiguous());
    }

    #[test]
    #[should_panic(expected = "at least one VBN")]
    fn empty_bucket_panics() {
        let (t, _) = tetris(1);
        let _ = Bucket::new(
            RaidGroupId(0),
            0,
            DriveId(0),
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            Vec::new(),
            0,
            t,
            1,
        );
    }
}
