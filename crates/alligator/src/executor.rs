//! Where infrastructure messages execute.
//!
//! The White Alligator infrastructure "runs as messages in Waffinity"
//! (§IV). The allocator is agnostic to *how* those messages are executed:
//!
//! * [`PoolExecutor`] sends them to a real [`WaffinityPool`] — the
//!   production-like configuration, used by the real-thread stack and the
//!   MP-safety tests;
//! * [`InlineExecutor`] runs them synchronously on the calling thread —
//!   used by deterministic unit tests and by the discrete-event simulator,
//!   which performs its own affinity-aware scheduling under virtual time
//!   and only needs the message *bodies*.

use std::sync::Arc;
use waffinity::{Affinity, WaffinityPool};

/// An executor for infrastructure messages.
pub trait Executor: Send + Sync {
    /// Run `f` in affinity `a` (possibly asynchronously).
    fn submit(&self, a: Affinity, f: Box<dyn FnOnce() + Send>);

    /// Block until all previously submitted messages have completed.
    fn drain(&self);
}

/// Runs every message synchronously on the calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct InlineExecutor;

impl Executor for InlineExecutor {
    fn submit(&self, _a: Affinity, f: Box<dyn FnOnce() + Send>) {
        f();
    }

    fn drain(&self) {}
}

/// Sends messages to a shared Waffinity thread pool.
#[derive(Debug, Clone)]
pub struct PoolExecutor {
    pool: Arc<WaffinityPool>,
}

impl PoolExecutor {
    /// Wrap a pool.
    pub fn new(pool: Arc<WaffinityPool>) -> Self {
        Self { pool }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<WaffinityPool> {
        &self.pool
    }
}

impl Executor for PoolExecutor {
    fn submit(&self, a: Affinity, f: Box<dyn FnOnce() + Send>) {
        self.pool.send(a, f);
    }

    fn drain(&self) {
        self.pool.wait_idle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use waffinity::{Model, Topology};

    #[test]
    fn inline_runs_immediately() {
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        let e = InlineExecutor;
        e.submit(
            Affinity::Serial,
            Box::new(move || {
                h.fetch_add(1, Ordering::Relaxed);
            }),
        );
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        e.drain();
    }

    #[test]
    fn pool_executor_drains() {
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 2, 2));
        let pool = Arc::new(WaffinityPool::new(topo, 2));
        let e = PoolExecutor::new(pool);
        let hits = Arc::new(AtomicU32::new(0));
        for i in 0..10u32 {
            let h = Arc::clone(&hits);
            e.submit(
                Affinity::AggrVbnRange(0, i % 2),
                Box::new(move || {
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        e.drain();
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }
}
