//! Where infrastructure messages execute.
//!
//! The White Alligator infrastructure "runs as messages in Waffinity"
//! (§IV). The allocator is agnostic to *how* those messages are executed:
//!
//! * [`PoolExecutor`] sends them to a real [`WaffinityPool`] — the
//!   production-like configuration, used by the real-thread stack and the
//!   MP-safety tests;
//! * [`InlineExecutor`] runs them synchronously on the calling thread —
//!   used by deterministic unit tests and by the discrete-event simulator,
//!   which performs its own affinity-aware scheduling under virtual time
//!   and only needs the message *bodies*.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use waffinity::{Affinity, WaffinityPool};

/// An executor for infrastructure messages.
pub trait Executor: Send + Sync {
    /// Run `f` in affinity `a` (possibly asynchronously).
    fn submit(&self, a: Affinity, f: Box<dyn FnOnce() + Send>);

    /// Block until all previously submitted messages have completed.
    fn drain(&self);
}

/// Runs every message synchronously on the calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct InlineExecutor;

impl Executor for InlineExecutor {
    fn submit(&self, _a: Affinity, f: Box<dyn FnOnce() + Send>) {
        f();
    }

    fn drain(&self) {}
}

/// Sends messages to a shared Waffinity thread pool.
#[derive(Debug, Clone)]
pub struct PoolExecutor {
    pool: Arc<WaffinityPool>,
}

impl PoolExecutor {
    /// Wrap a pool.
    pub fn new(pool: Arc<WaffinityPool>) -> Self {
        Self { pool }
    }

    /// The underlying pool.
    pub fn pool(&self) -> &Arc<WaffinityPool> {
        &self.pool
    }
}

impl Executor for PoolExecutor {
    fn submit(&self, a: Affinity, f: Box<dyn FnOnce() + Send>) {
        self.pool.send(a, f);
    }

    fn drain(&self) {
        self.pool.wait_idle();
    }
}

/// Decorates any executor with submit/complete counters, so harnesses
/// (e.g. `exp_cache_contention`) can report infrastructure-message volume
/// alongside the cache contention counters without reaching into pool
/// internals.
#[derive(Debug)]
pub struct InstrumentedExecutor<E> {
    inner: E,
    submitted: AtomicU64,
    completed: AtomicU64,
}

impl<E: Executor> InstrumentedExecutor<E> {
    /// Wrap `inner`.
    pub fn new(inner: E) -> Self {
        Self {
            inner,
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
        }
    }

    /// Messages submitted so far.
    pub fn submitted(&self) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.submitted.load(Ordering::Relaxed)
    }

    /// Messages whose bodies have finished running.
    pub fn completed(&self) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.completed.load(Ordering::Relaxed)
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Executor + 'static> Executor for Arc<InstrumentedExecutor<E>> {
    fn submit(&self, a: Affinity, f: Box<dyn FnOnce() + Send>) {
        // ordering: statistics counter; staleness is acceptable.
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let me = Arc::clone(self);
        self.inner.submit(
            a,
            Box::new(move || {
                f();
                // ordering: statistics counter; staleness is acceptable.
                me.completed.fetch_add(1, Ordering::Relaxed);
            }),
        );
    }

    fn drain(&self) {
        self.inner.drain();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use waffinity::{Model, Topology};

    #[test]
    fn inline_runs_immediately() {
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        let e = InlineExecutor;
        e.submit(
            Affinity::Serial,
            Box::new(move || {
                // ordering: statistics counter; staleness is acceptable.
                h.fetch_add(1, Ordering::Relaxed);
            }),
        );
        // ordering: test readback.
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        e.drain();
    }

    #[test]
    fn instrumented_executor_counts_messages() {
        let e = Arc::new(InstrumentedExecutor::new(InlineExecutor));
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..3 {
            let h = Arc::clone(&hits);
            e.submit(
                Affinity::Serial,
                Box::new(move || {
                    // ordering: statistics counter; staleness is acceptable.
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        e.drain();
        // ordering: test readback.
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        assert_eq!(e.submitted(), 3);
        assert_eq!(e.completed(), 3);
    }

    #[test]
    fn pool_executor_drains() {
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 1, 2, 2));
        let pool = Arc::new(WaffinityPool::new(topo, 2));
        let e = PoolExecutor::new(pool);
        let hits = Arc::new(AtomicU32::new(0));
        for i in 0..10u32 {
            let h = Arc::clone(&hits);
            e.submit(
                Affinity::AggrVbnRange(0, i % 2),
                Box::new(move || {
                    // ordering: statistics counter; staleness is acceptable.
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        e.drain();
        // ordering: test readback.
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }
}
