//! Allocator-wide statistics, shared across infrastructure and cleaners.
//!
//! Counters are declared once, in [`alloc_counters!`]; the macro
//! generates the atomic struct, the plain-value snapshot, the copy
//! loop, and the [`StatsSnapshot::named`] exporter. Adding a counter is
//! therefore a one-line change here — it flows to every consumer
//! (reports, the obs metrics registry, text dumps) automatically
//! instead of being hand-threaded through a five-struct relay.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Declares the allocator's statistics in one place.
///
/// `counters` are monotone and appear in [`StatsSnapshot`];
/// `gauges` are instantaneous levels kept on [`AllocStats`] only (their
/// derived high-water counters live in the `counters` list).
macro_rules! alloc_counters {
    (
        counters { $( $(#[$cmeta:meta])* $cname:ident, )* }
        gauges { $( $(#[$gmeta:meta])* $gname:ident, )* }
    ) => {
        /// Monotone counters describing allocator activity. All relaxed: they are
        /// reporting-only and never guard correctness.
        #[derive(Debug, Default)]
        pub struct AllocStats {
            $( $(#[$cmeta])* pub $cname: AtomicU64, )*
            $( $(#[$gmeta])* pub $gname: AtomicU64, )*
        }

        /// Plain-value copy of [`AllocStats`].
        #[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
        #[allow(missing_docs)]
        pub struct StatsSnapshot {
            $( pub $cname: u64, )*
        }

        impl AllocStats {
            /// Plain-value snapshot for reporting.
            pub fn snapshot(&self) -> StatsSnapshot {
                StatsSnapshot {
                    $( $cname: self.$cname.load(Ordering::Relaxed), )* // ordering: statistics counter; staleness is acceptable.
                }
            }
        }

        impl StatsSnapshot {
            /// Every counter name, in declaration order.
            pub const NAMES: &'static [&'static str] = &[ $( stringify!($cname), )* ];

            /// `(name, value)` pairs for every counter — feed this to
            /// `obs::Registry::import_counters` (or any exporter) so no
            /// counter can be collected but never reported.
            pub fn named(&self) -> Vec<(&'static str, u64)> {
                vec![ $( (stringify!($cname), self.$cname), )* ]
            }
        }
    };
}

alloc_counters! {
    counters {
        /// GET operations (buckets handed to cleaners).
        gets,
        /// GETs that found the bucket cache empty and had to wait/refill —
        /// the paper's infrastructure "keeps this list non-empty to ensure
        /// that the GET operation does not block" (§IV-D), so this counter
        /// measures how well the refill pipeline keeps up.
        get_stalls,
        /// USE operations (VBNs assigned to buffers).
        uses,
        /// PUT operations (buckets returned).
        puts,
        /// Refill rounds executed by the infrastructure.
        refill_rounds,
        /// Buckets filled with VBNs.
        buckets_filled,
        /// VBNs reserved from the bitmaps.
        vbns_reserved,
        /// VBNs committed as used (metafile updates, step 6 of Fig 2).
        vbns_committed,
        /// Reserved VBNs released unconsumed.
        vbns_released,
        /// VBNs freed through stages (overwrites).
        vbns_freed,
        /// Stage-commit messages processed by the infrastructure.
        stage_commits,
        /// Tetris write I/Os sent to RAID.
        tetris_ios,
        /// Allocation-Area switches (a new AA selected for a RAID group).
        aa_switches,
        /// Infrastructure messages executed (refill + commit + free-commit).
        infra_msgs,
        /// Tetris write I/Os that failed terminally (retries exhausted or too
        /// many drives offline). The stamps of a failed I/O never reached
        /// stable storage.
        io_errors,
        /// Cache pops satisfied by the getter's own (affinity) shard — the
        /// uncontended fast path the sharded bucket cache is built around
        /// (§IV-C's amortized synchronization, divided per drive).
        cache_get_fast,
        /// Cache pops that missed the home shard and work-stole a bucket from
        /// another shard.
        cache_get_steal,
        /// Nanoseconds spent waiting for a contended shard mutex (fast-path
        /// `try_lock` successes cost nothing and are not timed).
        cache_lock_waits_ns,
        /// GETs that found every shard empty and parked on the shard condvar
        /// (the §IV-D starvation case the refill pipeline is meant to avoid).
        cache_blocked_gets,
        /// Buckets delivered *beyond the first* by batched `get_many` pops —
        /// each one is a GET whose synchronization was amortized into the
        /// batch's single CAS/lock acquisition (§IV-C applied to GET).
        cache_get_batched,
        /// High-water mark of the commit queue: the deepest backlog of
        /// submitted-but-unexecuted PUT commits observed. Measures the
        /// used-queue/commit funnel before it gets optimized.
        put_commit_queue_len,
        /// Nanoseconds the infrastructure spent inside `commit_bucket`
        /// (metafile updates + release of unconsumed VBNs) — the per-PUT
        /// commit cost whose queueing the convoy gauge watches.
        commit_batch_ns,
        /// Nanoseconds PUT commit messages spent queued behind the
        /// infrastructure executor before starting to run — the convoy
        /// *wait* that, together with `commit_batch_ns` (service) and
        /// `put_commit_queue_len` (depth), decides whether the used
        /// queues need sharding (ROADMAP).
        commit_queue_wait_ns,
        /// Nanoseconds cleaners spent inside `get_bucket_many` (the full
        /// GET wall time, stalls included) — the denominator the PUT
        /// convoy is compared against in `exp_put_convoy`.
        get_wait_ns,
        /// GET batches the adaptive sizer widened beyond the configured
        /// base because the home shard was running deep.
        cache_batch_grows,
        /// GET batches the adaptive sizer shrank toward 1 because the
        /// cache was at or under the refill low watermark.
        cache_batch_shrinks,
        /// Scrub range messages executed (one per allocation-area unit).
        scrub_units,
        /// Media blocks the scrubber cross-checked (stamps + parity).
        scrub_blocks_checked,
        /// Corruption findings confirmed after quarantine re-check.
        scrub_findings,
        /// Findings repaired through the degraded/reconstruction path.
        scrub_repairs,
        /// Repairs that passed the post-repair re-verify read-back.
        scrub_reverified,
        /// Detection candidates dismissed during quarantine (racing CP or
        /// allocator activity, not corruption) — the false-positive guard.
        scrub_false_alarms,
        /// Transiently faulted scrub reads retried under the bounded
        /// backoff policy.
        scrub_retries,
        /// Times the scrubber paused under cleaner pressure (§VI-style
        /// utilization signal above the activation threshold).
        scrub_pauses,
        /// Times the scrubber resumed after pressure fell below the
        /// deactivation threshold.
        scrub_resumes,
        /// CAS retries paid on the bucket cache's lock-free structures
        /// (Treiber heads + arena free lists) — the contention meter
        /// formerly kept per-stack, now arena-wide.
        cache_cas_retries,
        /// Arena nodes minted from a never-used slab offset (the
        /// growth path; bounded by `cache_arena_cap`).
        arena_fresh_mints,
        /// Arena allocations satisfied by a recycled node (slot cache
        /// or chunk free list) — the constant-memory steady state.
        arena_reuse_hits,
        /// Arena allocations satisfied by stealing another pin slot's
        /// cached free node (cross-shard donation: a hot shard reusing
        /// an idle shard's retirees instead of minting).
        arena_donations,
        /// Chunks proven fully free and retired into the epoch limbo
        /// list (made unreachable; slab freed after the grace period).
        arena_chunks_retired,
        /// Retired chunks whose 2-epoch grace elapsed and whose slab
        /// was returned to the OS (the reclamation that keeps
        /// long-lived servers flat).
        arena_chunks_freed,
        /// Global reclamation-epoch advances (each requires every
        /// pinned operation to have caught up — EBR quiescence).
        arena_epoch_advances,
        /// Inserts that hit `ArenaFull` and fell back to the mutex
        /// overflow queue instead of aborting — the backpressure that
        /// replaced the PR-3 exhaustion `assert!`s.
        arena_full_fallbacks,
        /// High-water mark of live (slab-holding) arena chunks — the
        /// boundedness headline the churn soak gates on.
        arena_chunks_live_peak,
        /// High-water mark of async write I/Os in flight (submitted to
        /// the `blockdev::aio` engine, completion not yet harvested) —
        /// the queue-depth headline of the pipelined CP.
        io_queue_depth_peak,
        /// Nanoseconds from async submit to completion publish, summed
        /// over harvested completions (divide by completed I/Os for the
        /// mean; the full distribution is in the obs histogram).
        io_submit_to_complete_ns,
    }
    gauges {
        /// PUT-side convoy gauge: commit messages submitted but not yet
        /// executed, right now. Not part of the snapshot (it is a level, not
        /// a counter); feeds the `put_commit_queue_len` high-water mark.
        put_commit_outstanding,
        /// Arena chunks currently holding a live slab, right now (a
        /// level; its high-water mark is `arena_chunks_live_peak`).
        arena_chunks_live,
        /// Async write I/Os in flight right now (a level; its
        /// high-water mark is `io_queue_depth_peak`).
        io_inflight,
    }
}

impl AllocStats {
    /// Record one PUT commit entering the infrastructure queue,
    /// maintaining the convoy high-water mark.
    pub fn commit_enqueued(&self) {
        // ordering: AcqRel keeps the outstanding gauge and its high-water mark
        // mutually consistent; pairs-with: stats.commit-gauge.
        let depth = self.put_commit_outstanding.fetch_add(1, Ordering::AcqRel) + 1;
        // ordering: AcqRel — see the gauge increment above;
        // pairs-with: stats.commit-gauge.
        self.put_commit_queue_len.fetch_max(depth, Ordering::AcqRel);
    }

    /// Record one PUT commit leaving the queue (executed).
    pub fn commit_dequeued(&self) {
        // ordering: AcqRel — pairs with the gauge increment;
        // pairs-with: stats.commit-gauge.
        self.put_commit_outstanding.fetch_sub(1, Ordering::AcqRel);
    }

    /// Record one async write I/O submitted, maintaining the queue-depth
    /// high-water mark (same shape as [`AllocStats::commit_enqueued`]).
    pub fn io_submitted(&self) {
        // ordering: AcqRel keeps the inflight gauge and its high-water mark
        // mutually consistent; pairs-with: stats.io-gauge.
        let depth = self.io_inflight.fetch_add(1, Ordering::AcqRel) + 1;
        // ordering: AcqRel — see the gauge increment above;
        // pairs-with: stats.io-gauge.
        self.io_queue_depth_peak.fetch_max(depth, Ordering::AcqRel);
    }

    /// Record `n` async write completions harvested, with their summed
    /// submit→complete latency.
    pub fn io_completed(&self, n: u64, latency_ns: u64) {
        // ordering: AcqRel — pairs with the gauge increment;
        // pairs-with: stats.io-gauge.
        self.io_inflight.fetch_sub(n, Ordering::AcqRel);
        // ordering: statistics counter; staleness is acceptable.
        self.io_submit_to_complete_ns
            .fetch_add(latency_ns, Ordering::Relaxed);
    }
}

impl StatsSnapshot {
    /// Conservation check: every reserved VBN is committed, released, or
    /// still outstanding in a live bucket. With `outstanding` known (e.g.,
    /// zero after a full drain), the identity must hold exactly.
    pub fn check_conservation(&self, outstanding: u64) -> Result<(), String> {
        let accounted = self.vbns_committed + self.vbns_released + outstanding;
        if self.vbns_reserved != accounted {
            return Err(format!(
                "VBN conservation violated: reserved {} != committed {} + released {} + outstanding {}",
                self.vbns_reserved, self.vbns_committed, self.vbns_released, outstanding
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_values() {
        let s = AllocStats::default();
        // ordering: statistics counter; staleness is acceptable.
        s.gets.store(3, Ordering::Relaxed);
        // ordering: statistics counter; staleness is acceptable.
        s.uses.store(17, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.gets, 3);
        assert_eq!(snap.uses, 17);
    }

    #[test]
    fn conservation_identity() {
        let snap = StatsSnapshot {
            vbns_reserved: 100,
            vbns_committed: 60,
            vbns_released: 30,
            ..Default::default()
        };
        snap.check_conservation(10).unwrap();
        assert!(snap.check_conservation(0).is_err());
    }

    /// The audit the reporting bug of PR 3 motivated: `named()` must
    /// cover *every* snapshot field, so a counter that is collected can
    /// no longer silently miss the reports. Cross-checked against the
    /// serde field list (independent of the macro's own expansion).
    #[test]
    fn named_covers_every_snapshot_field() {
        let snap = StatsSnapshot {
            gets: 1,
            commit_queue_wait_ns: 7,
            ..Default::default()
        };
        let named = snap.named();
        assert_eq!(named.len(), StatsSnapshot::NAMES.len());
        let serde::Value::Map(fields) = serde::Serialize::to_value(&snap) else {
            panic!("snapshot serializes as a map");
        };
        let field_names: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
        let named_names: Vec<&str> = named.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            named_names, field_names,
            "named() must match the struct exactly"
        );
        assert_eq!(named[0], ("gets", 1));
        assert!(named.contains(&("commit_queue_wait_ns", 7)));
    }
}
