//! Allocator-wide statistics, shared across infrastructure and cleaners.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters describing allocator activity. All relaxed: they are
/// reporting-only and never guard correctness.
#[derive(Debug, Default)]
pub struct AllocStats {
    /// GET operations (buckets handed to cleaners).
    pub gets: AtomicU64,
    /// GETs that found the bucket cache empty and had to wait/refill —
    /// the paper's infrastructure "keeps this list non-empty to ensure
    /// that the GET operation does not block" (§IV-D), so this counter
    /// measures how well the refill pipeline keeps up.
    pub get_stalls: AtomicU64,
    /// USE operations (VBNs assigned to buffers).
    pub uses: AtomicU64,
    /// PUT operations (buckets returned).
    pub puts: AtomicU64,
    /// Refill rounds executed by the infrastructure.
    pub refill_rounds: AtomicU64,
    /// Buckets filled with VBNs.
    pub buckets_filled: AtomicU64,
    /// VBNs reserved from the bitmaps.
    pub vbns_reserved: AtomicU64,
    /// VBNs committed as used (metafile updates, step 6 of Fig 2).
    pub vbns_committed: AtomicU64,
    /// Reserved VBNs released unconsumed.
    pub vbns_released: AtomicU64,
    /// VBNs freed through stages (overwrites).
    pub vbns_freed: AtomicU64,
    /// Stage-commit messages processed by the infrastructure.
    pub stage_commits: AtomicU64,
    /// Tetris write I/Os sent to RAID.
    pub tetris_ios: AtomicU64,
    /// Allocation-Area switches (a new AA selected for a RAID group).
    pub aa_switches: AtomicU64,
    /// Infrastructure messages executed (refill + commit + free-commit).
    pub infra_msgs: AtomicU64,
    /// Tetris write I/Os that failed terminally (retries exhausted or too
    /// many drives offline). The stamps of a failed I/O never reached
    /// stable storage.
    pub io_errors: AtomicU64,
    /// Cache pops satisfied by the getter's own (affinity) shard — the
    /// uncontended fast path the sharded bucket cache is built around
    /// (§IV-C's amortized synchronization, divided per drive).
    pub cache_get_fast: AtomicU64,
    /// Cache pops that missed the home shard and work-stole a bucket from
    /// another shard.
    pub cache_get_steal: AtomicU64,
    /// Nanoseconds spent waiting for a contended shard mutex (fast-path
    /// `try_lock` successes cost nothing and are not timed).
    pub cache_lock_waits_ns: AtomicU64,
    /// GETs that found every shard empty and parked on the shard condvar
    /// (the §IV-D starvation case the refill pipeline is meant to avoid).
    pub cache_blocked_gets: AtomicU64,
    /// Buckets delivered *beyond the first* by batched `get_many` pops —
    /// each one is a GET whose synchronization was amortized into the
    /// batch's single CAS/lock acquisition (§IV-C applied to GET).
    pub cache_get_batched: AtomicU64,
    /// PUT-side convoy gauge: commit messages submitted but not yet
    /// executed, right now. Not part of the snapshot (it is a level, not
    /// a counter); feeds the `put_commit_queue_len` high-water mark.
    pub put_commit_outstanding: AtomicU64,
    /// High-water mark of the commit queue: the deepest backlog of
    /// submitted-but-unexecuted PUT commits observed. Measures the
    /// used-queue/commit funnel before it gets optimized.
    pub put_commit_queue_len: AtomicU64,
    /// Nanoseconds the infrastructure spent inside `commit_bucket`
    /// (metafile updates + release of unconsumed VBNs) — the per-PUT
    /// commit cost whose queueing the convoy gauge watches.
    pub commit_batch_ns: AtomicU64,
}

impl AllocStats {
    /// Plain-value snapshot for reporting.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            // ordering: statistics counter; staleness is acceptable.
            gets: self.gets.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            get_stalls: self.get_stalls.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            uses: self.uses.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            puts: self.puts.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            refill_rounds: self.refill_rounds.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            buckets_filled: self.buckets_filled.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            vbns_reserved: self.vbns_reserved.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            vbns_committed: self.vbns_committed.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            vbns_released: self.vbns_released.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            vbns_freed: self.vbns_freed.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            stage_commits: self.stage_commits.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            tetris_ios: self.tetris_ios.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            aa_switches: self.aa_switches.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            infra_msgs: self.infra_msgs.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            io_errors: self.io_errors.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            cache_get_fast: self.cache_get_fast.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            cache_get_steal: self.cache_get_steal.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            cache_lock_waits_ns: self.cache_lock_waits_ns.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            cache_blocked_gets: self.cache_blocked_gets.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            cache_get_batched: self.cache_get_batched.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            put_commit_queue_len: self.put_commit_queue_len.load(Ordering::Relaxed),
            // ordering: statistics counter; staleness is acceptable.
            commit_batch_ns: self.commit_batch_ns.load(Ordering::Relaxed),
        }
    }

    /// Record one PUT commit entering the infrastructure queue,
    /// maintaining the convoy high-water mark.
    pub fn commit_enqueued(&self) {
        // ordering: AcqRel keeps the outstanding gauge and its high-water mark mutually consistent.
        let depth = self.put_commit_outstanding.fetch_add(1, Ordering::AcqRel) + 1;
        // ordering: AcqRel — see the gauge increment above.
        self.put_commit_queue_len.fetch_max(depth, Ordering::AcqRel);
    }

    /// Record one PUT commit leaving the queue (executed).
    pub fn commit_dequeued(&self) {
        // ordering: AcqRel — pairs with the gauge increment.
        self.put_commit_outstanding.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Plain-value copy of [`AllocStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub gets: u64,
    pub get_stalls: u64,
    pub uses: u64,
    pub puts: u64,
    pub refill_rounds: u64,
    pub buckets_filled: u64,
    pub vbns_reserved: u64,
    pub vbns_committed: u64,
    pub vbns_released: u64,
    pub vbns_freed: u64,
    pub stage_commits: u64,
    pub tetris_ios: u64,
    pub aa_switches: u64,
    pub infra_msgs: u64,
    pub io_errors: u64,
    pub cache_get_fast: u64,
    pub cache_get_steal: u64,
    pub cache_lock_waits_ns: u64,
    pub cache_blocked_gets: u64,
    pub cache_get_batched: u64,
    pub put_commit_queue_len: u64,
    pub commit_batch_ns: u64,
}

impl StatsSnapshot {
    /// Conservation check: every reserved VBN is committed, released, or
    /// still outstanding in a live bucket. With `outstanding` known (e.g.,
    /// zero after a full drain), the identity must hold exactly.
    pub fn check_conservation(&self, outstanding: u64) -> Result<(), String> {
        let accounted = self.vbns_committed + self.vbns_released + outstanding;
        if self.vbns_reserved != accounted {
            return Err(format!(
                "VBN conservation violated: reserved {} != committed {} + released {} + outstanding {}",
                self.vbns_reserved, self.vbns_committed, self.vbns_released, outstanding
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_values() {
        let s = AllocStats::default();
        // ordering: statistics counter; staleness is acceptable.
        s.gets.store(3, Ordering::Relaxed);
        // ordering: statistics counter; staleness is acceptable.
        s.uses.store(17, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.gets, 3);
        assert_eq!(snap.uses, 17);
    }

    #[test]
    fn conservation_identity() {
        let snap = StatsSnapshot {
            vbns_reserved: 100,
            vbns_committed: 60,
            vbns_released: 30,
            ..Default::default()
        };
        snap.check_conservation(10).unwrap();
        assert!(snap.check_conservation(0).is_err());
    }
}
