//! Bounded node arena with epoch-based chunk reclamation — the memory
//! substrate under every [`crate::treiber::TreiberStack`].
//!
//! The PR-3 arena was append-only: per-stack doubling chunks that were
//! never reclaimed, a per-stack index space a hot shard could exhaust
//! while its siblings sat idle, and two `assert!` aborts when it ran
//! out. This module replaces it with the bounded, constant-time design
//! of the non-blocking allocator literature (Blelloch & Wei's
//! "Concurrent Fixed-Size Allocation and Free in Constant Time"; the
//! non-blocking buddy system of Marotta et al.):
//!
//! * **One arena, many stacks.** Every shard's Treiber stack draws
//!   nodes from the same shared [`Arena`], so a node freed by any shard
//!   is allocatable by any other — cross-shard donation falls out of
//!   the sharing instead of needing a transfer protocol.
//! * **Fixed-size chunks, capped count.** Nodes live in slabs of
//!   [`CHUNK_NODES`] nodes; the chunk-slot table is sized by the
//!   capacity knob (`AllocConfig::cache_arena_cap`), so total memory is
//!   bounded by construction. Chunk slots cycle through
//!   `Empty → Setup → Active → Retired → Empty`, so index space is
//!   *reused*, not burned.
//! * **O(1) alloc/free hot path.** Frees go to a small per-slot cache
//!   (the "per-thread free list" — slots are claimed per-operation, see
//!   below); allocs pop the same cache, then a hinted chunk's free
//!   list, then mint from the frontier chunk. Scans of other slots
//!   (donation) and of every chunk list happen only under pressure,
//!   right before admitting [`ArenaFull`].
//! * **Epoch-based reclamation.** Every arena operation runs inside a
//!   [`Pin`]. A fully-free chunk is *retired* (made unreachable), parked
//!   in a limbo list stamped with the current epoch, and its slab is
//!   freed only once the global epoch has advanced **two** steps past
//!   the stamp. The epoch cannot advance past `e+1` while any pin taken
//!   at epoch `e` is live, so a pinned thread's speculative `node()`
//!   dereferences (the Treiber walk reads stale indices by design) can
//!   never touch freed memory. See DESIGN.md §13 for the full contract
//!   and its one formal caveat.
//! * **Typed backpressure.** When capacity is truly gone the allocator
//!   returns [`ArenaFull`]; callers (the bucket cache) fall back to the
//!   mutex slow path instead of aborting the process.
//!
//! **Pin slots, not thread-locals.** Classic EBR pins a thread-local
//! epoch record. Under `--features mc` the model checker multiplexes
//! logical threads in ways that make thread-locals awkward, so the
//! arena keeps a fixed table of [`EPOCH_SLOTS`] pin slots claimed by
//! CAS per *operation*. A claimed slot is simultaneously the EBR pin
//! record and the operation's free-list cache; if every slot is busy
//! the pin falls back to a counted "overflow" mode that blocks epoch
//! advancement entirely (conservative, never unsafe). Slot claiming is
//! O(slots) worst case but one uncontended CAS in practice.
//!
//! Two invariants carry the safety argument (model-checked in
//! `crates/mc/tests/arena_reclaim.rs`):
//!
//! 1. **Grace**: `epoch ≤ pin_epoch + 1` for every live pin, so a
//!    chunk retired at epoch `r` (necessarily ≥ every live pin's epoch
//!    at that moment... and any later pin cannot reach its indices) is
//!    freed at `r + 2` only after every pin that could hold a stale
//!    index has dropped.
//! 2. **Retire exclusivity**: a chunk is retired only after the retirer
//!    has (a) poisoned the mint frontier and (b) drained the chunk's
//!    own free list and counted every minted node on it — proving no
//!    node of the chunk is allocated, cached, or in flight.
//!
//! All synchronization comes through [`crate::sync`], so `--features
//! mc` turns every access below into a model-checker yield point.

use crate::stats::AllocStats;
use crate::sync::atomic::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use crate::sync::cell::UnsafeCell;
use crate::sync::Mutex;
use std::ptr;
use std::sync::Arc;

/// Sentinel index: "no node".
pub(crate) const NIL: u32 = u32::MAX;

/// Nodes per chunk slab. Small under `mc` so the model checker can
/// reach mint-roll and retire transitions within tiny schedules.
#[cfg(not(feature = "mc"))]
pub const CHUNK_NODES: usize = 64;
/// Nodes per chunk slab (model-checker build).
#[cfg(feature = "mc")]
pub const CHUNK_NODES: usize = 4;

/// Pin slots (EBR records + per-slot free caches). Small under `mc` to
/// keep the slot-claim state space explorable.
#[cfg(not(feature = "mc"))]
const EPOCH_SLOTS: usize = 64;
#[cfg(feature = "mc")]
const EPOCH_SLOTS: usize = 4;

/// Per-slot free-cache depth cap: beyond this, frees spill to the
/// owning chunk's list (where retirement can see them).
#[cfg(not(feature = "mc"))]
const SLOT_CACHE_MAX: u32 = 32;
#[cfg(feature = "mc")]
const SLOT_CACHE_MAX: u32 = 2;

/// Default node capacity when the knob is 0/unset: 256 Ki nodes —
/// far beyond any bucket population the benches reach, but *bounded*,
/// unlike the PR-3 arena's ≈1-billion-node ceiling-with-abort.
pub const DEFAULT_ARENA_CAP: usize = 1 << 18;

/// Sentinel chunk id: "no mint chunk selected yet".
const NO_CHUNK: u32 = u32::MAX;

/// Chunk slot states (see the module docs' lifecycle).
const EMPTY: u32 = 0;
const SETUP: u32 = 1;
const ACTIVE: u32 = 2;
const RETIRED: u32 = 3;

/// Typed arena backpressure: every chunk slot is live and every free
/// list, slot cache, and mint frontier is dry. Callers fall back to
/// their mutex slow path (the bucket cache's overflow queue) — this is
/// the error that *replaces* the PR-3 exhaustion aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArenaFull;

impl std::fmt::Display for ArenaFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node arena at capacity (bounded by cache_arena_cap)")
    }
}

impl std::error::Error for ArenaFull {}

#[inline]
fn pack(tag: u32, idx: u32) -> u64 {
    (u64::from(tag) << 32) | u64::from(idx)
}

#[inline]
fn idx_of(word: u64) -> u32 {
    word as u32
}

#[inline]
fn tag_of(word: u64) -> u32 {
    (word >> 32) as u32
}

/// One stack node. Lives in a chunk slab; addressed by arena-wide
/// index `chunk * CHUNK_NODES + offset`.
pub(crate) struct Node<T> {
    /// Index of the node below this one (in a stack, a chunk free
    /// list, or a slot cache — a node is on at most one list at a time).
    pub(crate) next: AtomicU32,
    /// The payload. Written/taken only by the node's exclusive owner:
    /// the pusher before the publish CAS, the popper after winning the
    /// detach CAS.
    pub(crate) item: UnsafeCell<Option<T>>,
    /// Batch key stamped before the publish CAS (the bucket cache keys
    /// by refill generation; see `treiber.rs`).
    pub(crate) key: AtomicU64,
}

/// Per-chunk metadata. The slab itself hangs off `slab`; everything
/// else is the bookkeeping that makes the chunk retirable.
struct ChunkMeta<T> {
    /// The `CHUNK_NODES`-node slab, or null while Empty/reclaimed.
    slab: AtomicPtr<Node<T>>,
    /// Lifecycle state (`EMPTY`/`SETUP`/`ACTIVE`/`RETIRED`).
    state: AtomicU32,
    /// Tagged `(tag, idx)` head of this chunk's own free list. Only
    /// this chunk's nodes ever chain through it — that segregation is
    /// what lets the retirer drain and count them without touching any
    /// other list.
    free: AtomicU64,
    /// Nodes currently on `free` (advisory retire trigger; the drained
    /// walk is the ground truth). Updated *after* the list CAS on both
    /// push and pop, so it may transiently lag — or, when a pop's
    /// decrement outruns the racing push's increment, transiently wrap.
    /// Both resolve once in-flight updates land; only the exact
    /// `== minted` comparison is ever acted on, after re-verification.
    free_count: AtomicU32,
    /// Mint frontier: next never-minted offset. `fetch_add` reserves an
    /// offset; a reservation ≥ `CHUNK_NODES` means "chunk full, roll".
    /// The retirer poisons this to `CHUNK_NODES` so no mint can land
    /// while it proves exclusivity.
    next_off: AtomicU32,
}

/// One pin slot: an EBR record doubling as a small free-list cache.
struct Slot {
    /// `0` = idle; else `(epoch << 1) | 1` of the operation pinned here.
    pin_state: AtomicU64,
    /// Tagged `(tag, idx)` head of the slot's free cache.
    cache: AtomicU64,
    /// Approximate depth of `cache` (caps hoarding at `SLOT_CACHE_MAX`).
    cache_len: AtomicU32,
}

/// Chunk parked in limbo: unreachable, awaiting its grace period.
struct Limbo {
    chunk: u32,
    retire_epoch: u64,
}

/// RAII epoch pin. Every arena/stack operation holds one for its whole
/// duration; while it lives, the global epoch advances at most once,
/// which is what keeps the operation's speculative node reads valid.
pub struct Pin<'a, T> {
    arena: &'a Arena<T>,
    /// Claimed slot index, or `usize::MAX` for an overflow pin.
    slot: usize,
}

impl<T> Pin<'_, T> {
    /// The epoch this pin was taken at (slot pins only; overflow pins
    /// report the epoch sampled at claim time as recorded in the
    /// arena's overflow set — conservatively, advancement is blocked
    /// entirely while any overflow pin is live).
    pub fn slot(&self) -> Option<usize> {
        (self.slot != usize::MAX).then_some(self.slot)
    }
}

impl<T> Drop for Pin<'_, T> {
    fn drop(&mut self) {
        self.arena.unpin(self.slot);
    }
}

/// Bounded, shared, epoch-reclaimed node arena (see module docs).
pub struct Arena<T> {
    /// Node capacity (`nchunks * CHUNK_NODES ≥ cap`, rounded up).
    cap_nodes: usize,
    /// Chunk slot table (fixed size; slots cycle through the lifecycle).
    chunks: Box<[ChunkMeta<T>]>,
    /// Chunk currently serving fresh mints (`NO_CHUNK` before first use).
    mint_chunk: AtomicU32,
    /// Advisory: chunk that most recently received a free (alloc probes
    /// it before scanning).
    alloc_hint: AtomicU32,
    /// Pin slots (EBR records + caches).
    slots: Box<[Slot]>,
    /// Rotor seeding the slot-claim scan so operations spread out.
    rotor: AtomicU32,
    /// Live overflow pins (pins that found every slot busy). Non-zero
    /// blocks epoch advancement entirely.
    overflow_pins: AtomicUsize,
    /// The global reclamation epoch.
    epoch: AtomicU64,
    /// Retired chunks awaiting their 2-epoch grace. Leaf lock: nothing
    /// else is ever acquired while it is held.
    limbo: Mutex<Vec<Limbo>>, // lock-rank: arena.limbo 65
    /// Chunks currently Active or Setup (the live-slab gauge mirror).
    chunks_live: AtomicUsize,
    /// Shared counters (fresh mints, reuse hits, donations, retires,
    /// epoch advances, CAS retries) — the observability surface.
    stats: Arc<AllocStats>,
}

// SAFETY: `T` crosses threads through the arena's nodes; the
// `UnsafeCell` payloads are only touched by a node's exclusive owner
// (see `Node`), and all shared state is atomics or the limbo mutex.
unsafe impl<T: Send> Send for Arena<T> {}
// SAFETY: as above — shared references only perform CAS-mediated
// access; payload cells require exclusive node ownership.
unsafe impl<T: Send> Sync for Arena<T> {}

impl<T> Arena<T> {
    /// Arena bounded at `cap_nodes` nodes (0 ⇒ [`DEFAULT_ARENA_CAP`]),
    /// with private stats. Chunk slabs are allocated on demand, so an
    /// idle arena costs only the slot/chunk metadata tables.
    pub fn new(cap_nodes: usize) -> Self {
        Self::with_stats(cap_nodes, Arc::new(AllocStats::default()))
    }

    /// [`Arena::new`] recording traffic into a shared [`AllocStats`]
    /// (the bucket cache passes the allocator-wide stats here so arena
    /// counters flow to `obs` with everything else).
    pub fn with_stats(cap_nodes: usize, stats: Arc<AllocStats>) -> Self {
        let cap = if cap_nodes == 0 {
            DEFAULT_ARENA_CAP
        } else {
            cap_nodes
        };
        let nchunks = cap.div_ceil(CHUNK_NODES).max(1);
        assert!(
            nchunks < NO_CHUNK as usize,
            "cache_arena_cap overflows the chunk index space"
        );
        Self {
            cap_nodes: nchunks * CHUNK_NODES,
            chunks: (0..nchunks)
                .map(|_| ChunkMeta {
                    slab: AtomicPtr::new(ptr::null_mut()),
                    state: AtomicU32::new(EMPTY),
                    free: AtomicU64::new(pack(0, NIL)),
                    free_count: AtomicU32::new(0),
                    next_off: AtomicU32::new(0),
                })
                .collect(),
            mint_chunk: AtomicU32::new(NO_CHUNK),
            alloc_hint: AtomicU32::new(NO_CHUNK),
            slots: (0..EPOCH_SLOTS)
                .map(|_| Slot {
                    pin_state: AtomicU64::new(0),
                    cache: AtomicU64::new(pack(0, NIL)),
                    cache_len: AtomicU32::new(0),
                })
                .collect(),
            rotor: AtomicU32::new(0),
            overflow_pins: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
            limbo: Mutex::new(Vec::new()),
            chunks_live: AtomicUsize::new(0),
            stats,
        }
    }

    /// Node capacity (requested cap rounded up to whole chunks).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap_nodes
    }

    /// Chunks currently holding a live slab (Active or Setup) — the
    /// boundedness gauge the churn soak asserts a plateau on.
    #[inline]
    pub fn chunks_live(&self) -> usize {
        // ordering: advisory gauge read; staleness is acceptable.
        self.chunks_live.load(Ordering::Relaxed)
    }

    /// The current reclamation epoch (exposed for the mc models).
    #[inline]
    pub fn current_epoch(&self) -> u64 {
        // ordering: SeqCst — the epoch participates in the pin/advance
        // total order (see `pin`/`try_advance`); model invariants read
        // it through the same order.
        self.epoch.load(Ordering::SeqCst)
    }

    /// Total CAS retries paid on arena free lists and the Treiber heads
    /// that share this arena (`cache_cas_retries` in [`AllocStats`]).
    pub fn retries(&self) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.stats.cache_cas_retries.load(Ordering::Relaxed)
    }

    /// The stats sink this arena reports into.
    pub fn stats(&self) -> &Arc<AllocStats> {
        &self.stats
    }

    /// Count one CAS retry (shared by the Treiber head loops).
    #[inline]
    pub(crate) fn note_retry(&self) {
        // ordering: statistics counter; no synchronization needed.
        self.stats.cache_cas_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Dereference a node index. Caller must hold a [`Pin`] taken
    /// before the index was read from shared memory — that is what
    /// guarantees the chunk's slab cannot have completed its grace
    /// period and been freed (module invariant 1).
    #[inline]
    pub(crate) fn node(&self, idx: u32) -> &Node<T> {
        let c = idx as usize / CHUNK_NODES;
        let off = idx as usize % CHUNK_NODES;
        // ordering: Acquire pairs with the Release slab publication in
        // `claim_empty_chunk`, so the pointed-to nodes are constructed;
        // pairs-with: arena.slab.
        let base = self.chunks[c].slab.load(Ordering::Acquire);
        // Hard check, not debug-only: a null slab here means the pin
        // discipline was violated (a reclaimed chunk was dereferenced)
        // and the next line would be UB. The mc retire-vs-deref model
        // relies on this tripping deterministically.
        assert!(
            !base.is_null(),
            "node {idx}: deref of reclaimed chunk {c} (pin discipline violated)"
        );
        // SAFETY: slab is non-null ⇒ the chunk is somewhere between
        // Setup and reclamation; the caller's pin (taken before `idx`
        // was read) blocks reclamation (grace invariant), `off` is in
        // bounds by construction, and nodes are plain atomics + an
        // UnsafeCell only the exclusive owner touches.
        unsafe { &*base.add(off) }
    }

    /// Speculatively read a node's batch key (exposed for the mc
    /// retire-vs-deref model; the Treiber walk does the same
    /// internally). Caller must hold a pin — see [`Arena::node`].
    pub fn probe_key(&self, idx: u32) -> u64 {
        // ordering: Acquire — speculative read; stale values are
        // discarded by the caller's validating CAS;
        // pairs-with: treiber.key.
        self.node(idx).key.load(Ordering::Acquire)
    }

    // ---- pinning -------------------------------------------------------

    /// Pin the current operation into the epoch machinery. Never
    /// blocks: if every slot is busy, falls back to a counted overflow
    /// pin (which freezes epoch advancement while it lives).
    pub fn pin(&self) -> Pin<'_, T> {
        // ordering: Relaxed — the rotor only spreads the claim scan.
        let start = self.rotor.fetch_add(1, Ordering::Relaxed) as usize;
        for i in 0..EPOCH_SLOTS {
            let s = (start + i) % EPOCH_SLOTS;
            let slot = &self.slots[s];
            // ordering: SeqCst — pin registration must be in a single
            // total order with `try_advance`'s slot scan and epoch CAS:
            // either the advancer sees our pin (and requires our epoch
            // current), or our claim is ordered after its advance and
            // we re-sample the newer epoch below.
            if slot.pin_state.load(Ordering::SeqCst) != 0 {
                continue;
            }
            // ordering: SeqCst — see the claim protocol above.
            let e = self.epoch.load(Ordering::SeqCst);
            if slot
                .pin_state
                // ordering: SeqCst (both) — the claim itself; see above.
                .compare_exchange(0, (e << 1) | 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                // Re-sample once: if the epoch advanced between the load
                // and the claim, move the pin up so it does not hold the
                // previous epoch open longer than necessary. (Safety does
                // not depend on this — a stale pin only *delays* advance.)
                // ordering: SeqCst — same total order as above.
                let e2 = self.epoch.load(Ordering::SeqCst);
                if e2 != e {
                    // ordering: SeqCst — republish the pin at the newer
                    // epoch within the same total order.
                    slot.pin_state.store((e2 << 1) | 1, Ordering::SeqCst);
                }
                return Pin {
                    arena: self,
                    slot: s,
                };
            }
        }
        // Every slot busy: overflow pin. Advancement is blocked outright
        // while the counter is non-zero, which is conservative but keeps
        // the grace invariant without per-overflow epoch records.
        // ordering: SeqCst — same total order as the slot protocol.
        self.overflow_pins.fetch_add(1, Ordering::SeqCst);
        Pin {
            arena: self,
            slot: usize::MAX,
        }
    }

    fn unpin(&self, slot: usize) {
        if slot == usize::MAX {
            // ordering: SeqCst — pairs with `try_advance`'s overflow check.
            self.overflow_pins.fetch_sub(1, Ordering::SeqCst);
        } else {
            // ordering: SeqCst — un-registration in the same total order
            // as the advancer's slot scan.
            self.slots[slot].pin_state.store(0, Ordering::SeqCst);
        }
    }

    // ---- slot caches ---------------------------------------------------

    /// Pop a node off slot `s`'s free cache (any pinned operation may —
    /// stealing from *other* slots is the donation path).
    fn pop_slot_cache(&self, s: usize) -> Option<u32> {
        let slot = &self.slots[s];
        loop {
            // ordering: Acquire pairs with the AcqRel cache-push CAS so
            // the node's link is visible; pairs-with: arena.slot-cache.
            let h = slot.cache.load(Ordering::Acquire);
            let idx = idx_of(h);
            if idx == NIL {
                return None;
            }
            // ordering: Acquire — link Release-stored before the push
            // CAS; a stale read is discarded by the tag CAS below;
            // pairs-with: arena.link.
            let next = self.node(idx).next.load(Ordering::Acquire);
            if slot
                .cache
                // ordering: AcqRel — Acquire synchronizes with the
                // freeing operation (its item take happens-before our
                // reuse); Release orders our detach; tag bump defeats
                // ABA on the cache head; pairs-with: arena.slot-cache.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), next),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // ordering: Relaxed — advisory depth; capped approximately.
                slot.cache_len.fetch_sub(1, Ordering::Relaxed);
                return Some(idx);
            }
            self.note_retry();
        }
    }

    /// Push a node onto slot `s`'s free cache.
    fn push_slot_cache(&self, s: usize, idx: u32) {
        let slot = &self.slots[s];
        // ordering: Relaxed — advisory depth; incremented before the
        // push so the cap errs toward spilling (never hoards past it).
        slot.cache_len.fetch_add(1, Ordering::Relaxed);
        loop {
            // ordering: Acquire — see `pop_slot_cache`;
            // pairs-with: arena.slot-cache.
            let h = slot.cache.load(Ordering::Acquire);
            // ordering: Release — the link must be visible before the
            // CAS publishes this node as the cache head;
            // pairs-with: arena.link.
            self.node(idx).next.store(idx_of(h), Ordering::Release);
            if slot
                .cache
                // ordering: AcqRel — Release publishes the freed node
                // (and the owner's item take before it) to the next
                // allocator; tag bump defeats ABA; Acquire refreshes on
                // failure; pairs-with: arena.slot-cache.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), idx),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                return;
            }
            self.note_retry();
        }
    }

    // ---- chunk free lists ----------------------------------------------

    /// Pop a node off chunk `c`'s free list.
    fn pop_chunk_free(&self, c: usize) -> Option<u32> {
        let meta = &self.chunks[c];
        loop {
            // ordering: Acquire pairs with the AcqRel free-list CAS in
            // `push_chunk_free`, making the freed node's writes visible;
            // pairs-with: arena.chunk-free.
            let h = meta.free.load(Ordering::Acquire);
            let idx = idx_of(h);
            if idx == NIL {
                return None;
            }
            // ordering: Acquire — link Release-stored before the push
            // CAS; stale reads are discarded by the tag CAS below;
            // pairs-with: arena.link.
            let next = self.node(idx).next.load(Ordering::Acquire);
            if meta
                .free
                // ordering: AcqRel — same contract as the slot cache's
                // pop CAS (ownership transfer + ABA tag bump);
                // pairs-with: arena.chunk-free.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), next),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // ordering: AcqRel — advisory retire trigger, updated
                // after the list CAS (the drained walk re-verifies);
                // pairs-with: arena.free-count.
                meta.free_count.fetch_sub(1, Ordering::AcqRel);
                return Some(idx);
            }
            self.note_retry();
        }
    }

    /// Push a node onto its own chunk's free list.
    fn push_chunk_free(&self, idx: u32) {
        let c = idx as usize / CHUNK_NODES;
        let meta = &self.chunks[c];
        loop {
            // ordering: Acquire — see `pop_chunk_free`;
            // pairs-with: arena.chunk-free.
            let h = meta.free.load(Ordering::Acquire);
            // ordering: Release — link visible before the publish CAS;
            // pairs-with: arena.link.
            self.node(idx).next.store(idx_of(h), Ordering::Release);
            if meta
                .free
                // ordering: AcqRel — publishes the freed node; tag bump
                // defeats ABA; Acquire refreshes on failure;
                // pairs-with: arena.chunk-free.
                .compare_exchange(
                    h,
                    pack(tag_of(h).wrapping_add(1), idx),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                // ordering: AcqRel — advisory retire trigger (see
                // `ChunkMeta::free_count`); pairs-with: arena.free-count.
                meta.free_count.fetch_add(1, Ordering::AcqRel);
                // ordering: Relaxed — advisory alloc hint.
                self.alloc_hint.store(c as u32, Ordering::Relaxed);
                return;
            }
            self.note_retry();
        }
    }

    // ---- minting -------------------------------------------------------

    /// Claim an Empty chunk slot, allocate its slab, and activate it.
    /// Returns the chunk id, `Err(true)` if another claim is mid-Setup
    /// (worth retrying), `Err(false)` if no Empty slot exists.
    fn claim_empty_chunk(&self) -> Result<u32, bool> {
        let mut saw_setup = false;
        for c in 0..self.chunks.len() {
            let meta = &self.chunks[c];
            // ordering: Acquire — pairs with the Release state stores of
            // the lifecycle transitions; an EMPTY read implies the
            // previous generation's slab swap is visible (null);
            // pairs-with: arena.state.
            match meta.state.load(Ordering::Acquire) {
                SETUP => {
                    saw_setup = true;
                    continue;
                }
                EMPTY => {}
                _ => continue,
            }
            if meta
                .state
                // ordering: AcqRel — Acquire synchronizes with the
                // reclaimer's reset (null slab, zeroed frontier);
                // Release is not load-bearing here (the slab store
                // below publishes the construction) but keeps the
                // lifecycle edges uniform. Failure keeps scanning;
                // pairs-with: arena.state.
                .compare_exchange(EMPTY, SETUP, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                saw_setup = true;
                continue;
            }
            // We own the Setup. Build the slab.
            let mut nodes: Vec<Node<T>> = Vec::with_capacity(CHUNK_NODES);
            for _ in 0..CHUNK_NODES {
                nodes.push(Node {
                    next: AtomicU32::new(NIL),
                    item: UnsafeCell::new(None),
                    key: AtomicU64::new(0),
                });
            }
            let raw = Box::into_raw(nodes.into_boxed_slice()) as *mut Node<T>;
            // ordering: Release — publishes the constructed nodes to
            // `node()`'s Acquire slab load; pairs-with: arena.slab.
            meta.slab.store(raw, Ordering::Release);
            debug_assert_eq!(
                // ordering: debug-only sanity read of our own Setup.
                meta.next_off.load(Ordering::Relaxed),
                0,
                "claimed chunk with a dirty mint frontier"
            );
            // ordering: Release — the Active store publishes the slab
            // store above to `mint_fresh`'s Acquire state check;
            // pairs-with: arena.state.
            meta.state.store(ACTIVE, Ordering::Release);
            // ordering: Relaxed — advisory gauge.
            let live = self.chunks_live.fetch_add(1, Ordering::Relaxed) + 1;
            // ordering: statistics counters; staleness is acceptable.
            self.stats
                .arena_chunks_live
                .store(live as u64, Ordering::Relaxed);
            // ordering: statistics counter (high-water mark).
            self.stats
                .arena_chunks_live_peak
                .fetch_max(live as u64, Ordering::Relaxed);
            return Ok(c as u32);
        }
        Err(saw_setup)
    }

    /// Mint a never-used node from the frontier chunk, rolling to a new
    /// chunk when the frontier fills. Amortized O(1): one `fetch_add`
    /// per mint, one slab allocation per `CHUNK_NODES` mints.
    fn mint_fresh(&self) -> Option<u32> {
        let mut setup_spins = 0u32;
        loop {
            // ordering: Acquire — pairs with the Release mint-chunk
            // store after a roll, so the new chunk's Active state (and
            // slab) are visible; pairs-with: arena.mint-chunk.
            let c = self.mint_chunk.load(Ordering::Acquire);
            if c != NO_CHUNK {
                let meta = &self.chunks[c as usize];
                // ordering: Acquire — pairs with the Release Active
                // store, so the slab is visible before we mint into it;
                // pairs-with: arena.state.
                if meta.state.load(Ordering::Acquire) == ACTIVE {
                    // ordering: Relaxed — the fetch_add only needs
                    // atomicity to reserve a unique offset; the chunk's
                    // Active/slab publication above carries the
                    // synchronization. A reservation also blocks the
                    // chunk's retirement (free_count can never reach the
                    // minted count while this offset was never freed).
                    let off = meta.next_off.fetch_add(1, Ordering::Relaxed);
                    if (off as usize) < CHUNK_NODES {
                        // ordering: statistics counter.
                        self.stats.arena_fresh_mints.fetch_add(1, Ordering::Relaxed);
                        return Some(c * CHUNK_NODES as u32 + off);
                    }
                    // Frontier full (or poisoned): roll below.
                }
            }
            match self.claim_empty_chunk() {
                Ok(c2) => {
                    // ordering: Release — publishes the claimed chunk's
                    // Active state/slab to the Acquire load above (ours
                    // and other minters'). A plain store, not a CAS:
                    // concurrent rollers may both claim; the loser's
                    // chunk stays Active-and-unminted and is retired by
                    // the next `maintain` (orphan rule);
                    // pairs-with: arena.mint-chunk.
                    self.mint_chunk.store(c2, Ordering::Release);
                    continue;
                }
                Err(true) => {
                    // Another claim is mid-Setup: give it a beat, then
                    // re-scan. Bounded so a stalled claimer can only
                    // cause a spurious miss (caller falls back to the
                    // donation scan / ArenaFull), never a hang.
                    setup_spins += 1;
                    if setup_spins > 64 {
                        return None;
                    }
                    crate::sync::hint::yield_now();
                }
                Err(false) => return None,
            }
        }
    }

    // ---- alloc / free --------------------------------------------------

    /// Allocate a node. O(1) on the hot path (slot cache, hinted chunk
    /// list, or frontier mint); scans every slot cache (donation) and
    /// every chunk list before admitting [`ArenaFull`]. The returned
    /// index is exclusively owned until freed.
    pub fn alloc(&self, pin: &Pin<'_, T>) -> Result<u32, ArenaFull> {
        debug_assert!(ptr::eq(pin.arena, self), "pin from a different arena");
        // 1. Own slot's cache — the per-"thread" free list.
        if pin.slot != usize::MAX {
            if let Some(idx) = self.pop_slot_cache(pin.slot) {
                // ordering: statistics counter.
                self.stats.arena_reuse_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(idx);
            }
        }
        // 2. The hinted chunk's free list (last chunk freed into).
        // ordering: Relaxed — advisory hint.
        let hint = self.alloc_hint.load(Ordering::Relaxed);
        if hint != NO_CHUNK {
            if let Some(idx) = self.pop_chunk_free(hint as usize) {
                // ordering: statistics counter.
                self.stats.arena_reuse_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(idx);
            }
        }
        // 3. Donation: steal from the other slots' caches. Reuse beats
        // minting — this is what keeps one hot shard from growing the
        // arena while its siblings' frees sit idle.
        for s in 0..EPOCH_SLOTS {
            if pin.slot == s {
                continue;
            }
            if let Some(idx) = self.pop_slot_cache(s) {
                // ordering: statistics counter.
                self.stats.arena_donations.fetch_add(1, Ordering::Relaxed);
                return Ok(idx);
            }
        }
        // 4. Mint from the frontier.
        if let Some(idx) = self.mint_fresh() {
            return Ok(idx);
        }
        // 5. Full sweep of every chunk's free list (pressure path).
        for c in 0..self.chunks.len() {
            if Some(c) == (hint != NO_CHUNK).then_some(hint as usize) {
                continue;
            }
            if let Some(idx) = self.pop_chunk_free(c) {
                // ordering: statistics counter.
                self.stats.arena_reuse_hits.fetch_add(1, Ordering::Relaxed);
                return Ok(idx);
            }
        }
        Err(ArenaFull)
    }

    /// Free a node back to the arena. O(1): the owning slot's cache if
    /// it has room, else the node's own chunk list (where retirement
    /// can count it).
    pub fn free(&self, pin: &Pin<'_, T>, idx: u32) {
        debug_assert!(ptr::eq(pin.arena, self), "pin from a different arena");
        if pin.slot != usize::MAX
            // ordering: Relaxed — advisory cap check (approximate by
            // design; the spill path is always correct).
            && self.slots[pin.slot].cache_len.load(Ordering::Relaxed) < SLOT_CACHE_MAX
        {
            self.push_slot_cache(pin.slot, idx);
        } else {
            self.push_chunk_free(idx);
        }
    }

    // ---- reclamation ---------------------------------------------------

    /// Try to advance the global epoch by one. Succeeds only when no
    /// overflow pin is live and every pinned slot has caught up to the
    /// current epoch — the EBR quiescence condition. Returns whether
    /// the epoch moved.
    pub fn try_advance(&self) -> bool {
        // ordering: SeqCst — the advance decision must totally order
        // against pin registrations (see `pin`).
        let e = self.epoch.load(Ordering::SeqCst);
        // ordering: SeqCst — overflow pins block advancement outright.
        if self.overflow_pins.load(Ordering::SeqCst) != 0 {
            return false;
        }
        for slot in self.slots.iter() {
            // ordering: SeqCst — pin scan in the same total order as
            // registration; a pin at an older epoch blocks the advance.
            let s = slot.pin_state.load(Ordering::SeqCst);
            if s & 1 == 1 && (s >> 1) != e {
                return false;
            }
        }
        let ok = self
            .epoch
            // ordering: SeqCst (both) — the advance itself; losing the
            // race just means someone else advanced.
            .compare_exchange(e, e + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        if ok {
            // ordering: statistics counter.
            self.stats
                .arena_epoch_advances
                .fetch_add(1, Ordering::Relaxed);
        }
        ok
    }

    /// Maintenance pass: drain slot caches to their chunk lists, retire
    /// fully-free chunks into limbo, advance the epoch if quiescent,
    /// and reclaim limbo chunks whose grace elapsed. Called off the GET
    /// fast path (once per collective refill publish); safe to call
    /// from anywhere — it pins internally and takes only the leaf
    /// limbo lock.
    pub fn maintain(&self) {
        let pin = self.pin();
        self.drain_slot_caches(&pin);
        self.retire_quiescent_chunks();
        drop(pin);
        self.try_advance();
        self.collect_limbo();
    }

    /// Spill every slot cache back to the owning chunks' lists so the
    /// retire scan can account for those nodes.
    fn drain_slot_caches(&self, _pin: &Pin<'_, T>) {
        for s in 0..EPOCH_SLOTS {
            while let Some(idx) = self.pop_slot_cache(s) {
                self.push_chunk_free(idx);
            }
        }
    }

    /// Retire every chunk whose minted nodes are all sitting on its own
    /// free list (proving none is allocated or cached anywhere), except
    /// the mint chunk and a floor of one live chunk.
    fn retire_quiescent_chunks(&self) {
        for c in 0..self.chunks.len() {
            // Keep at least one live chunk resident as the working set
            // floor — churn right at the boundary should not oscillate
            // slab alloc/free.
            // ordering: Relaxed — advisory gauge read.
            if self.chunks_live.load(Ordering::Relaxed) <= 1 {
                return;
            }
            self.try_retire_chunk(c as u32);
        }
    }

    /// Attempt to retire one chunk (see module invariant 2).
    fn try_retire_chunk(&self, c: u32) {
        let meta = &self.chunks[c as usize];
        // ordering: Acquire — lifecycle read; only Active chunks retire;
        // pairs-with: arena.state.
        if meta.state.load(Ordering::Acquire) != ACTIVE {
            return;
        }
        // ordering: Acquire — pairs with the Release mint-chunk store;
        // the frontier chunk is hot, never retired;
        // pairs-with: arena.mint-chunk.
        if self.mint_chunk.load(Ordering::Acquire) == c {
            return;
        }
        // ordering: Relaxed — advisory pre-check to skip the expensive
        // poison+drain on chunks that are obviously busy; re-verified
        // exactly below.
        let minted_hint = meta
            .next_off
            .load(Ordering::Relaxed)
            .min(CHUNK_NODES as u32);
        // ordering: Relaxed — advisory retire trigger (ground truth is
        // the drained walk).
        if meta.free_count.load(Ordering::Relaxed) != minted_hint {
            return;
        }
        // Poison the mint frontier: any in-flight fetch_add now returns
        // ≥ CHUNK_NODES and fails, so no new node of this chunk can be
        // minted while we prove exclusivity.
        // ordering: AcqRel — the poison swap orders after it every
        // racing reservation's success check; `minted` is the true
        // number of offsets ever handed out;
        // pairs-with: arena.frontier.
        let minted = meta.next_off.swap(CHUNK_NODES as u32, Ordering::AcqRel);
        let minted = minted.min(CHUNK_NODES as u32);
        // Exclusively drain the chunk's free list.
        // ordering: AcqRel — the swap both acquires every free's
        // Release-published node and detaches the whole list with a tag
        // bump (no concurrent pop can succeed on the old head).
        let head = {
            loop {
                // ordering: Acquire — read for the detach CAS below;
                // pairs-with: arena.chunk-free.
                let h = meta.free.load(Ordering::Acquire);
                if meta
                    .free
                    // ordering: AcqRel — detach the entire list; tag
                    // bump invalidates concurrent pops' stale heads;
                    // pairs-with: arena.chunk-free.
                    .compare_exchange(
                        h,
                        pack(tag_of(h).wrapping_add(1), NIL),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    break idx_of(h);
                }
                self.note_retry();
            }
        };
        // Walk and count the detached chain (ground truth).
        let mut count = 0u32;
        let mut tail = NIL;
        let mut cur = head;
        while cur != NIL {
            count += 1;
            tail = cur;
            // ordering: Acquire — links were Release-stored before each
            // node was published onto the (now exclusively ours) list;
            // pairs-with: arena.link.
            cur = self.node(cur).next.load(Ordering::Acquire);
        }
        if count != minted || (minted == 0 && head != NIL) {
            // Some minted node is allocated, cached, or its free is in
            // flight: abort. Reattach the drained chain and restore the
            // frontier. (Concurrent frees may have pushed onto the
            // fresh head already; the CAS loop merges beneath them.)
            if head != NIL {
                loop {
                    // ordering: Acquire — read for the reattach CAS;
                    // pairs-with: arena.chunk-free.
                    let h = meta.free.load(Ordering::Acquire);
                    // ordering: Release — splice link visible before the
                    // publish CAS; pairs-with: arena.link.
                    self.node(tail).next.store(idx_of(h), Ordering::Release);
                    if meta
                        .free
                        // ordering: AcqRel — republish the chain; tag
                        // bump keeps the ABA discipline;
                        // pairs-with: arena.chunk-free.
                        .compare_exchange(
                            h,
                            pack(tag_of(h).wrapping_add(1), head),
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        )
                        .is_ok()
                    {
                        break;
                    }
                    self.note_retry();
                }
            }
            // ordering: Release — un-poison after the chain is back so
            // a racing minter cannot observe a poison-free frontier
            // while the list is still detached;
            // pairs-with: arena.frontier.
            meta.next_off.store(minted, Ordering::Release);
            return;
        }
        // Exclusive: every minted node is on our private chain; no
        // allocation, free, or mint of this chunk can occur anymore.
        // ordering: Release — Retired must be visible before the limbo
        // entry can be reclaimed and the slot recycled;
        // pairs-with: arena.state.
        meta.state.store(RETIRED, Ordering::Release);
        // ordering: Relaxed — counter reset for the slot's next life
        // (no concurrent users: exclusivity proven above).
        meta.free_count.store(0, Ordering::Relaxed);
        // ordering: Relaxed — advisory gauge.
        let live = self.chunks_live.fetch_sub(1, Ordering::Relaxed) - 1;
        // ordering: statistics counters.
        self.stats
            .arena_chunks_live
            .store(live as u64, Ordering::Relaxed);
        // ordering: statistics counter.
        self.stats
            .arena_chunks_retired
            .fetch_add(1, Ordering::Relaxed);
        // ordering: SeqCst — the retire epoch stamp must order against
        // pin registration the same way `try_advance` does.
        let e = self.epoch.load(Ordering::SeqCst);
        self.limbo.lock().push(Limbo {
            chunk: c,
            retire_epoch: e,
        });
    }

    /// Free the slabs of limbo chunks whose 2-epoch grace has elapsed
    /// and recycle their slots to Empty.
    fn collect_limbo(&self) {
        // ordering: SeqCst — grace comparison in the epoch total order.
        let now = self.epoch.load(Ordering::SeqCst);
        let mut limbo = self.limbo.lock();
        let mut i = 0;
        while i < limbo.len() {
            if limbo[i].retire_epoch + 2 > now {
                i += 1;
                continue;
            }
            let entry = limbo.swap_remove(i);
            let meta = &self.chunks[entry.chunk as usize];
            // ordering: AcqRel — take the slab exclusively; Release
            // publishes the null to `node()`'s Acquire load (whose hard
            // assert is what the mc model watches);
            // pairs-with: arena.slab.
            let raw = meta.slab.swap(ptr::null_mut(), Ordering::AcqRel);
            debug_assert!(!raw.is_null(), "limbo chunk with no slab");
            if !raw.is_null() {
                // SAFETY: `raw` came from `Box::into_raw` of a
                // CHUNK_NODES-length boxed slice in `claim_empty_chunk`;
                // retirement proved no node is allocated or cached, the
                // grace period guarantees no pinned operation still
                // holds a stale index into it, and the swap above makes
                // this the only reclaimer.
                unsafe {
                    drop(Box::from_raw(ptr::slice_from_raw_parts_mut(
                        raw,
                        CHUNK_NODES,
                    )))
                };
            }
            // Reset the slot for its next generation. The free-list tag
            // is deliberately *kept* (monotone across generations) so a
            // pop stalled since the previous generation can never
            // succeed against the new one.
            // ordering: Relaxed — no concurrent users until EMPTY.
            meta.next_off.store(0, Ordering::Relaxed);
            // ordering: Release — EMPTY publishes the reset (and the
            // null slab) to `claim_empty_chunk`'s Acquire;
            // pairs-with: arena.state.
            meta.state.store(EMPTY, Ordering::Release);
            // ordering: statistics counter.
            self.stats
                .arena_chunks_freed
                .fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<T> Drop for Arena<T> {
    fn drop(&mut self) {
        for meta in self.chunks.iter_mut() {
            let raw = *meta.slab.get_mut();
            if !raw.is_null() {
                // SAFETY: &mut self — no concurrent access; every slab
                // came from `Box::into_raw` of a CHUNK_NODES-length
                // boxed slice. Dropping the nodes drops any items still
                // parked in them.
                unsafe {
                    drop(Box::from_raw(ptr::slice_from_raw_parts_mut(
                        raw,
                        CHUNK_NODES,
                    )))
                };
            }
        }
    }
}

impl<T> std::fmt::Debug for Arena<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Arena")
            .field("capacity", &self.cap_nodes)
            .field("chunks_live", &self.chunks_live())
            .field("epoch", &self.current_epoch())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_reuses_nodes() {
        let a: Arena<u64> = Arena::new(CHUNK_NODES * 4);
        let pin = a.pin();
        let i1 = a.alloc(&pin).unwrap();
        let i2 = a.alloc(&pin).unwrap();
        assert_ne!(i1, i2);
        a.free(&pin, i1);
        let i3 = a.alloc(&pin).unwrap();
        assert_eq!(i3, i1, "slot cache returns the just-freed node");
        // ordering: test-only stats read.
        assert!(a.stats().arena_reuse_hits.load(Ordering::Relaxed) >= 1);
    }

    #[test]
    fn capacity_is_enforced_with_typed_error() {
        let a: Arena<u64> = Arena::new(CHUNK_NODES);
        let pin = a.pin();
        let mut held = Vec::new();
        for _ in 0..CHUNK_NODES {
            held.push(a.alloc(&pin).unwrap());
        }
        assert_eq!(a.alloc(&pin), Err(ArenaFull), "cap reached: typed error");
        a.free(&pin, held.pop().unwrap());
        assert!(a.alloc(&pin).is_ok(), "free makes room again");
    }

    #[test]
    fn epoch_blocked_by_stale_pin_then_advances() {
        let a: Arena<u64> = Arena::new(CHUNK_NODES);
        let pin = a.pin();
        let e0 = a.current_epoch();
        assert!(a.try_advance(), "pins at the current epoch do not block");
        assert!(!a.try_advance(), "a pin one epoch behind blocks");
        assert_eq!(a.current_epoch(), e0 + 1);
        drop(pin);
        assert!(a.try_advance(), "unpinned: free to advance");
        assert_eq!(a.current_epoch(), e0 + 2);
    }

    #[test]
    fn churn_retires_and_reclaims_chunks() {
        let a: Arena<u64> = Arena::new(CHUNK_NODES * 8);
        // Grow: hold 4 chunks' worth live.
        let pin = a.pin();
        let held: Vec<u32> = (0..CHUNK_NODES * 4)
            .map(|_| a.alloc(&pin).unwrap())
            .collect();
        drop(pin);
        let peak = a.chunks_live();
        assert!(peak >= 4);
        // Shrink: free everything, then run maintenance rounds.
        let pin = a.pin();
        for idx in held {
            a.free(&pin, idx);
        }
        drop(pin);
        for _ in 0..6 {
            a.maintain();
        }
        assert!(
            a.chunks_live() < peak,
            "fully-freed chunks must retire (live {} vs peak {peak})",
            a.chunks_live()
        );
        // ordering: test-only stats reads.
        assert!(a.stats().arena_chunks_retired.load(Ordering::Relaxed) > 0);
        // ordering: test-only stats read.
        assert!(a.stats().arena_chunks_freed.load(Ordering::Relaxed) > 0);
        // Reuse the recycled slots: the full capacity is allocatable
        // again, and not a node more.
        let pin = a.pin();
        let mut total = 0usize;
        while a.alloc(&pin).is_ok() {
            total += 1;
        }
        assert_eq!(total, a.capacity(), "recycled chunks restore full capacity");
        assert_eq!(
            a.alloc(&pin),
            Err(ArenaFull),
            "cap still enforced after recycling"
        );
    }

    #[test]
    fn overflow_pins_block_advancement() {
        let a: Arena<u64> = Arena::new(CHUNK_NODES);
        let _pins: Vec<_> = (0..EPOCH_SLOTS + 1).map(|_| a.pin()).collect();
        // The last pin overflowed: the epoch must freeze even though
        // every *slot* pin is current.
        assert!(!a.try_advance(), "overflow pins freeze the epoch");
    }
}
