//! The bucket cache: the lock-protected list of available buckets.
//!
//! "These buckets are then enqueued … to a lock-protected list of
//! available buckets called the bucket cache that is filled by the
//! infrastructure and consumed by the cleaner threads" (§IV-A). "White
//! Alligator maintains a lock-protected set of buckets called a bucket
//! cache and keeps this list non-empty to ensure that the GET operation
//! does not block" (§IV-D).
//!
//! GET is a single lock acquisition per *bucket* (i.e., per `chunk`
//! VBNs), which is the synchronization amortization of §IV-C. This
//! implementation goes one step further and **shards** the cache — one
//! mutex+condvar FIFO per drive (keyed off [`Bucket::drive`]) — so that
//! concurrent cleaners with distinct shard affinities do not even share
//! that one lock:
//!
//! * cleaner *i* GETs from shard `i % nshards` first (its *affinity
//!   shard*) and work-steals from the other shards on a miss — under the
//!   *equal-progress pop rule*: home is taken only while no other shard
//!   is fuller, so consumption stays balanced across drives (DESIGN.md
//!   invariant 7) for any cleaner count;
//! * a global [`AtomicUsize`] length keeps `len`/`is_empty` (the
//!   starvation and low-watermark checks) lock-free;
//! * [`BucketCache::insert_all`] holds every destination shard lock
//!   simultaneously while appending, so a refill batch becomes visible
//!   *collectively* — no getter can observe half a batch — preserving the
//!   §IV-D equal-progress invariant across shards;
//! * contention is observable: fast-path vs stolen pops, time spent on
//!   contended shard mutexes, and blocked (parked) GETs all count into
//!   [`AllocStats`].
//!
//! Construct with [`BucketCache::with_shards`]; [`BucketCache::new`]
//! builds the single-shard (pre-sharding) layout, which doubles as the
//! forced-single-lock baseline for the `exp_cache_contention` bench.

use crate::bucket::Bucket;
use crate::stats::AllocStats;
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard: a lock-protected FIFO plus the condvar blocked getters
/// park on and a count of those parked getters.
#[derive(Debug, Default)]
struct Shard {
    q: Mutex<VecDeque<Bucket>>,
    available: Condvar,
    waiters: AtomicUsize,
    /// Queue length, readable without the lock (maintained while holding
    /// it). Drives the equal-progress pop rule in
    /// [`BucketCache::try_get_from`].
    fill: AtomicUsize,
}

/// Sharded, lock-protected FIFO of available buckets.
#[derive(Debug)]
pub struct BucketCache {
    shards: Box<[Shard]>,
    /// Total buckets across all shards (lock-free `len`/`is_empty`).
    len: AtomicUsize,
    /// Getters currently parked anywhere (gate for cross-shard wakeups).
    waiters: AtomicUsize,
    stats: Arc<AllocStats>,
}

impl Default for BucketCache {
    fn default() -> Self {
        Self::with_shards(1, Arc::new(AllocStats::default()))
    }
}

impl BucketCache {
    /// Single-shard cache with private stats — the pre-sharding layout
    /// (every GET funnels through one mutex). Kept for tests and as the
    /// contention baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cache with `nshards` shards (clamped to ≥ 1) recording contention
    /// counters into `stats`. Buckets map to shards by drive id, so one
    /// shard per data drive gives every refilled bucket of a round its
    /// own queue.
    pub fn with_shards(nshards: usize, stats: Arc<AllocStats>) -> Self {
        let n = nshards.max(1);
        Self {
            shards: (0..n).map(|_| Shard::default()).collect(),
            len: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            stats,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of buckets currently available (lock-free).
    #[inline]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Is the cache empty (a GET would block)? Lock-free.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The shard a bucket lives in.
    #[inline]
    fn shard_of(&self, b: &Bucket) -> usize {
        b.drive().0 as usize % self.shards.len()
    }

    /// Lock a shard queue, timing only the contended (slow) path.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, VecDeque<Bucket>> {
        if let Some(g) = shard.q.try_lock() {
            return g;
        }
        let t0 = Instant::now();
        let g = shard.q.lock();
        self.stats
            .cache_lock_waits_ns
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        g
    }

    /// Wake parked getters on every shard that has any. Inserts into one
    /// shard must also wake getters parked on *other* shards (they can
    /// steal); locking the waiter's shard before notifying closes the
    /// check-then-park race. Only runs when someone is actually parked.
    fn wake_parked(&self) {
        if self.waiters.load(Ordering::Acquire) == 0 {
            return;
        }
        for shard in self.shards.iter() {
            if shard.waiters.load(Ordering::Acquire) > 0 {
                let _g = self.lock_shard(shard);
                shard.available.notify_all();
            }
        }
    }

    /// Infrastructure side: insert one bucket into its drive's shard.
    pub fn insert(&self, b: Bucket) {
        let shard = &self.shards[self.shard_of(&b)];
        let mut q = self.lock_shard(shard);
        q.push_back(b);
        shard.fill.fetch_add(1, Ordering::Release);
        self.len.fetch_add(1, Ordering::Release);
        // Notify while holding the lock: a getter of this shard is either
        // already parked (woken here) or has yet to take the lock (and
        // will see the bucket).
        shard.available.notify_one();
        drop(q);
        self.wake_parked();
    }

    /// Infrastructure side: insert a batch of buckets atomically — the
    /// collective reinsertion of §IV-D ("collectively put back into the
    /// bucket cache"). Every destination shard lock is held while the
    /// batch is appended, so no GET can observe a partially visible
    /// batch; each affected shard is then notified **once** (a single
    /// `notify_all` under the lock, not one wakeup per bucket).
    pub fn insert_all(&self, buckets: impl IntoIterator<Item = Bucket>) {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<Bucket>> = (0..n).map(|_| Vec::new()).collect();
        let mut total = 0usize;
        for b in buckets {
            per_shard[self.shard_of(&b)].push(b);
            total += 1;
        }
        if total == 0 {
            return;
        }
        // Acquire in ascending shard order (the only multi-shard lock
        // site, so ordering alone rules out deadlock).
        let mut guards: Vec<(usize, MutexGuard<'_, VecDeque<Bucket>>)> = Vec::new();
        for (s, batch) in per_shard.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut g = self.lock_shard(&self.shards[s]);
            self.shards[s]
                .fill
                .fetch_add(batch.len(), Ordering::Release);
            g.extend(batch.drain(..));
            guards.push((s, g));
        }
        self.len.fetch_add(total, Ordering::Release);
        for (s, _) in &guards {
            self.shards[*s].available.notify_all();
        }
        drop(guards);
        self.wake_parked();
    }

    /// Pop from one specific shard.
    fn pop_shard(&self, s: usize) -> Option<Bucket> {
        let mut q = self.lock_shard(&self.shards[s]);
        let b = q.pop_front()?;
        self.shards[s].fill.fetch_sub(1, Ordering::Release);
        self.len.fetch_sub(1, Ordering::Release);
        Some(b)
    }

    /// Count a successful pop as a home (fast-path) hit or a steal.
    fn count_pop(&self, shard: usize, home: usize) {
        if shard == home {
            self.stats.cache_get_fast.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.cache_get_steal.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cleaner side: try to take a bucket without blocking, starting at
    /// the caller's affinity shard (`start % nshards`) and work-stealing
    /// on a miss.
    ///
    /// **Equal-progress pop rule**: the home shard is taken only when no
    /// other shard is fuller (ties keep home); otherwise the GET steals
    /// from the fullest shard, nearest-after-home on ties. Refill rounds
    /// deposit one bucket per drive (§IV-D), so consuming fullest-first
    /// keeps per-drive consumption — and therefore per-drive fill
    /// progress, DESIGN.md invariant 7 — balanced for *any* number of
    /// cleaners: a lone cleaner degenerates to round-robin over drives,
    /// while cleaners spread over balanced shards all pop their own
    /// uncontended home.
    pub fn try_get_from(&self, start: usize) -> Option<Bucket> {
        let n = self.shards.len();
        let home = start % n;
        if self.is_empty() {
            return None;
        }
        let mut target = home;
        let mut best = self.shards[home].fill.load(Ordering::Acquire);
        for d in 1..n {
            let s = (home + d) % n;
            let f = self.shards[s].fill.load(Ordering::Acquire);
            if f > best {
                best = f;
                target = s;
            }
        }
        if let Some(b) = self.pop_shard(target) {
            self.count_pop(target, home);
            return Some(b);
        }
        // Raced with other getters since the fill scan: fall back to a
        // plain round-robin sweep so `None` still means "every shard was
        // empty at probe time".
        for d in 0..n {
            let s = (home + d) % n;
            if s == target {
                continue;
            }
            if let Some(b) = self.pop_shard(s) {
                self.count_pop(s, home);
                return Some(b);
            }
        }
        None
    }

    /// [`try_get_from`](Self::try_get_from) with affinity shard 0 (the
    /// single-shard-era API, used by drain paths and tests).
    pub fn try_get(&self) -> Option<Bucket> {
        self.try_get_from(0)
    }

    /// Cleaner side: take a bucket, blocking up to `timeout`, with the
    /// same affinity/steal order as [`try_get_from`](Self::try_get_from).
    /// Returns `None` on timeout (callers treat that as "aggregate may be
    /// exhausted; re-check and retry or give up").
    ///
    /// A blocked getter parks on its affinity shard's condvar; inserts
    /// into *any* shard wake it (see [`Self::wake_parked`]), after which
    /// it re-scans all shards.
    pub fn get_timeout_from(&self, start: usize, timeout: Duration) -> Option<Bucket> {
        if let Some(b) = self.try_get_from(start) {
            return Some(b);
        }
        let shard = &self.shards[start % self.shards.len()];
        let deadline = Instant::now() + timeout;
        self.stats
            .cache_blocked_gets
            .fetch_add(1, Ordering::Relaxed);
        // Register as a waiter *before* the re-scan: any insert that
        // lands after the scan will see the registration and notify.
        self.waiters.fetch_add(1, Ordering::AcqRel);
        shard.waiters.fetch_add(1, Ordering::AcqRel);
        let got = loop {
            if let Some(b) = self.try_get_from(start) {
                break Some(b);
            }
            let mut q = self.lock_shard(shard);
            // Predicate re-check under the shard lock: an inserter bumps
            // `len` before it takes this lock to notify, so either we see
            // len > 0 here (and re-scan) or our park happens before its
            // notify (and we are woken).
            if self.len.load(Ordering::Acquire) == 0
                && shard.available.wait_until(&mut q, deadline).timed_out()
            {
                drop(q);
                break self.try_get_from(start);
            }
        };
        shard.waiters.fetch_sub(1, Ordering::AcqRel);
        self.waiters.fetch_sub(1, Ordering::AcqRel);
        got
    }

    /// [`get_timeout_from`](Self::get_timeout_from) with affinity shard 0.
    pub fn get_timeout(&self, timeout: Duration) -> Option<Bucket> {
        self.get_timeout_from(0, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tetris::Tetris;
    use wafl_blockdev::{AaId, DriveId, DriveKind, GeometryBuilder, IoEngine, RaidGroupId, Vbn};

    fn mk_bucket_on(drive: u32, start: u64) -> Bucket {
        let engine = Arc::new(IoEngine::new(
            Arc::new(
                GeometryBuilder::new()
                    .aa_stripes(32)
                    .raid_group(1, 1, 4096)
                    .build(),
            ),
            DriveKind::Ssd,
        ));
        let t = Tetris::new(RaidGroupId(0), 1, engine, Arc::new(AllocStats::default()));
        Bucket::new(
            RaidGroupId(0),
            0,
            DriveId(drive),
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            (start..start + 4).map(Vbn).collect(),
            0,
            t,
            0,
        )
    }

    fn mk_bucket(start: u64) -> Bucket {
        mk_bucket_on(0, start)
    }

    fn sharded(n: usize) -> (BucketCache, Arc<AllocStats>) {
        let stats = Arc::new(AllocStats::default());
        (BucketCache::with_shards(n, Arc::clone(&stats)), stats)
    }

    #[test]
    fn fifo_order() {
        let c = BucketCache::new();
        c.insert(mk_bucket(0));
        c.insert(mk_bucket(100));
        assert_eq!(c.len(), 2);
        assert_eq!(c.try_get().unwrap().start_vbn(), Vbn(0));
        assert_eq!(c.try_get().unwrap().start_vbn(), Vbn(100));
        assert!(c.try_get().is_none());
    }

    #[test]
    fn insert_all_is_atomic_batch() {
        let c = BucketCache::new();
        c.insert_all((0..5).map(|i| mk_bucket(i * 10)));
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn get_timeout_returns_none_when_starved() {
        let c = BucketCache::new();
        let got = c.get_timeout(Duration::from_millis(20));
        assert!(got.is_none());
    }

    #[test]
    fn blocked_get_wakes_on_insert() {
        let c = Arc::new(BucketCache::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.get_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        c.insert(mk_bucket(7));
        let got = h.join().unwrap();
        assert_eq!(got.unwrap().start_vbn(), Vbn(7));
    }

    #[test]
    fn concurrent_getters_each_receive_distinct_buckets() {
        let c = Arc::new(BucketCache::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                c.get_timeout(Duration::from_secs(5))
                    .map(|b| b.start_vbn().0)
            }));
        }
        c.insert_all((0..4).map(|i| mk_bucket(i * 4)));
        let mut got: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 4, 8, 12]);
    }

    #[test]
    fn buckets_land_in_their_drives_shard() {
        let (c, stats) = sharded(4);
        // Drives 0..=3 → shards 0..=3; drives 4 and 5 wrap to shards 0 and 1.
        for d in 0..6u32 {
            c.insert(mk_bucket_on(d, u64::from(d) * 10));
        }
        assert_eq!(c.len(), 6);
        // Shards 0 and 1 are tied for fullest (two buckets each), so the
        // affinity GET from shard 1 keeps its home and sees drive 1's
        // bucket first.
        assert_eq!(c.try_get_from(1).unwrap().drive(), DriveId(1));
        // Now shard 0 alone is fullest: the equal-progress rule steals
        // drive 0's bucket rather than draining home down to empty.
        assert_eq!(c.try_get_from(1).unwrap().drive(), DriveId(0));
        assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 1);
        assert_eq!(stats.cache_get_steal.load(Ordering::Relaxed), 1);
        // Back in balance (one bucket each): home pops its second
        // resident, the drive-5 bucket that wrapped onto shard 1.
        assert_eq!(c.try_get_from(1).unwrap().drive(), DriveId(5));
        assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn miss_at_home_shard_steals_round_robin() {
        let (c, stats) = sharded(4);
        c.insert(mk_bucket_on(2, 20));
        // Affinity shard 0 is empty → the GET must steal from shard 2.
        let b = c.try_get_from(0).unwrap();
        assert_eq!(b.drive(), DriveId(2));
        assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 0);
        assert_eq!(stats.cache_get_steal.load(Ordering::Relaxed), 1);
        assert!(c.try_get_from(0).is_none());
    }

    #[test]
    fn sharded_insert_all_is_collectively_visible() {
        // The §IV-D invariant across shards: a getter never sees only
        // part of a refill batch. With the batch spread over all shards
        // and GETs racing the insert, every GET that returns Some must
        // come after the *whole* batch is visible — so the first 8
        // concurrent GETs drain exactly the 8 buckets.
        for _ in 0..50 {
            let (c, _) = sharded(8);
            let c = Arc::new(c);
            let mut handles = Vec::new();
            for t in 0..8usize {
                let c = Arc::clone(&c);
                handles.push(std::thread::spawn(move || {
                    c.get_timeout_from(t, Duration::from_secs(5)).is_some()
                }));
            }
            c.insert_all((0..8).map(|d| mk_bucket_on(d, u64::from(d) * 100)));
            assert!(handles.into_iter().all(|h| h.join().unwrap()));
            assert!(c.is_empty());
        }
    }

    #[test]
    fn no_waiter_sleeps_while_cache_nonempty() {
        // Regression for the insert_all wakeup storm: waiters homed on
        // shards that receive *no* buckets must still wake and steal.
        // Both waiters home on shard 3; the batch lands on shards 0..2.
        let (c, _) = sharded(4);
        let c = Arc::new(c);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let t0 = Instant::now();
                let got = c.get_timeout_from(3, Duration::from_secs(30));
                (got.is_some(), t0.elapsed())
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        c.insert_all((0..3u32).map(|d| mk_bucket_on(d, u64::from(d) * 100)));
        for h in handles {
            let (got, waited) = h.join().unwrap();
            assert!(got, "waiter must be woken cross-shard");
            assert!(
                waited < Duration::from_secs(5),
                "waiter slept {waited:?} with a non-empty cache"
            );
        }
        assert_eq!(c.len(), 1, "two of three buckets consumed");
    }

    #[test]
    fn blocked_gets_are_counted() {
        let (c, stats) = sharded(2);
        assert!(c.get_timeout_from(0, Duration::from_millis(5)).is_none());
        assert_eq!(stats.cache_blocked_gets.load(Ordering::Relaxed), 1);
        c.insert(mk_bucket_on(0, 0));
        assert!(c.try_get_from(0).is_some());
        // Fast-path GETs never count as blocked.
        assert_eq!(stats.cache_blocked_gets.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn len_is_consistent_across_shards() {
        let (c, _) = sharded(3);
        c.insert_all((0..9u32).map(|d| mk_bucket_on(d, u64::from(d) * 16)));
        assert_eq!(c.len(), 9);
        let mut n = 0;
        while c.try_get_from(n).is_some() {
            n += 1;
        }
        assert_eq!(n, 9);
        assert!(c.is_empty());
    }
}
