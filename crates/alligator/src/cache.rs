//! The bucket cache: the lock-protected list of available buckets.
//!
//! "These buckets are then enqueued … to a lock-protected list of
//! available buckets called the bucket cache that is filled by the
//! infrastructure and consumed by the cleaner threads" (§IV-A). "White
//! Alligator maintains a lock-protected set of buckets called a bucket
//! cache and keeps this list non-empty to ensure that the GET operation
//! does not block" (§IV-D).
//!
//! GET is a single lock acquisition per *bucket* (i.e., per `chunk`
//! VBNs), which is the synchronization amortization of §IV-C.

use crate::bucket::Bucket;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::Duration;

/// Lock-protected FIFO of available buckets.
#[derive(Debug, Default)]
pub struct BucketCache {
    q: Mutex<VecDeque<Bucket>>,
    available: Condvar,
}

impl BucketCache {
    /// Empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buckets currently available.
    pub fn len(&self) -> usize {
        self.q.lock().len()
    }

    /// Is the cache empty (a GET would block)?
    pub fn is_empty(&self) -> bool {
        self.q.lock().is_empty()
    }

    /// Infrastructure side: insert one bucket.
    pub fn insert(&self, b: Bucket) {
        self.q.lock().push_back(b);
        self.available.notify_one();
    }

    /// Infrastructure side: insert a batch of buckets atomically — the
    /// collective reinsertion of §IV-D ("collectively put back into the
    /// bucket cache").
    pub fn insert_all(&self, buckets: impl IntoIterator<Item = Bucket>) {
        let mut q = self.q.lock();
        let mut n = 0;
        for b in buckets {
            q.push_back(b);
            n += 1;
        }
        drop(q);
        for _ in 0..n {
            self.available.notify_one();
        }
    }

    /// Cleaner side: try to take a bucket without blocking.
    pub fn try_get(&self) -> Option<Bucket> {
        self.q.lock().pop_front()
    }

    /// Cleaner side: take a bucket, blocking up to `timeout`. Returns
    /// `None` on timeout (callers treat that as "aggregate may be
    /// exhausted; re-check and retry or give up").
    pub fn get_timeout(&self, timeout: Duration) -> Option<Bucket> {
        let mut q = self.q.lock();
        if let Some(b) = q.pop_front() {
            return Some(b);
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if self.available.wait_until(&mut q, deadline).timed_out() {
                return q.pop_front();
            }
            if let Some(b) = q.pop_front() {
                return Some(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::AllocStats;
    use crate::tetris::Tetris;
    use std::sync::Arc;
    use wafl_blockdev::{AaId, DriveId, DriveKind, GeometryBuilder, IoEngine, RaidGroupId, Vbn};

    fn mk_bucket(start: u64) -> Bucket {
        let engine = Arc::new(IoEngine::new(
            Arc::new(
                GeometryBuilder::new()
                    .aa_stripes(32)
                    .raid_group(1, 1, 4096)
                    .build(),
            ),
            DriveKind::Ssd,
        ));
        let t = Tetris::new(RaidGroupId(0), 1, engine, Arc::new(AllocStats::default()));
        Bucket::new(
            RaidGroupId(0),
            0,
            DriveId(0),
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            (start..start + 4).map(Vbn).collect(),
            0,
            t,
            0,
        )
    }

    #[test]
    fn fifo_order() {
        let c = BucketCache::new();
        c.insert(mk_bucket(0));
        c.insert(mk_bucket(100));
        assert_eq!(c.len(), 2);
        assert_eq!(c.try_get().unwrap().start_vbn(), Vbn(0));
        assert_eq!(c.try_get().unwrap().start_vbn(), Vbn(100));
        assert!(c.try_get().is_none());
    }

    #[test]
    fn insert_all_is_atomic_batch() {
        let c = BucketCache::new();
        c.insert_all((0..5).map(|i| mk_bucket(i * 10)));
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn get_timeout_returns_none_when_starved() {
        let c = BucketCache::new();
        let got = c.get_timeout(Duration::from_millis(20));
        assert!(got.is_none());
    }

    #[test]
    fn blocked_get_wakes_on_insert() {
        let c = Arc::new(BucketCache::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.get_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        c.insert(mk_bucket(7));
        let got = h.join().unwrap();
        assert_eq!(got.unwrap().start_vbn(), Vbn(7));
    }

    #[test]
    fn concurrent_getters_each_receive_distinct_buckets() {
        let c = Arc::new(BucketCache::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                c.get_timeout(Duration::from_secs(5))
                    .map(|b| b.start_vbn().0)
            }));
        }
        c.insert_all((0..4).map(|i| mk_bucket(i * 4)));
        let mut got: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 4, 8, 12]);
    }
}
