//! The bucket cache: the shared pool of available buckets.
//!
//! "These buckets are then enqueued … to a lock-protected list of
//! available buckets called the bucket cache that is filled by the
//! infrastructure and consumed by the cleaner threads" (§IV-A). "White
//! Alligator maintains a lock-protected set of buckets called a bucket
//! cache and keeps this list non-empty to ensure that the GET operation
//! does not block" (§IV-D).
//!
//! GET is a single synchronization event per *bucket* (i.e., per
//! `chunk` VBNs) — the amortization of §IV-C. The cache is **sharded**
//! per drive (keyed off [`Bucket::drive`]) and supports two shard
//! layouts:
//!
//! * **Lock-free** (the default, [`BucketCache::with_shards`]): each
//!   shard's hot path is a [`TreiberStack`] — `try_get_from` is a
//!   single CAS pop with *no mutex* on the common path, following the
//!   non-blocking allocator designs of Marotta et al. and
//!   Blelloch & Wei. The shard mutex+condvar survives only for
//!   [`BucketCache::get_timeout_from`] waiters, and one `publish`
//!   mutex serializes collective refill publishes (plus the rare
//!   undo/re-push paths — see below).
//! * **Mutex** ([`BucketCache::with_shards_mutex`]): the previous
//!   mutex+condvar FIFO per shard, kept as the measurable baseline for
//!   `exp_cache_contention`.
//!
//! Shared behavior in both layouts:
//!
//! * cleaner *i* GETs from shard `i % nshards` first (its *affinity
//!   shard*) and work-steals on a miss, keeping per-drive consumption
//!   balanced (DESIGN.md invariant 7);
//! * a global [`AtomicUsize`] length keeps `len`/`is_empty` (the
//!   starvation and low-watermark checks) lock-free;
//! * [`BucketCache::insert_all`] publishes a refill batch
//!   *collectively* — no getter can observe half a batch (§IV-D);
//! * contention is observable: fast-path vs stolen vs batched pops,
//!   lock/gate wait time, and blocked GETs all count into
//!   [`AllocStats`].
//!
//! ### The lock-free equal-progress rule: an O(1) hint
//!
//! The mutex layout enforced equal progress by scanning every shard's
//! fill on every GET — O(nshards) on the hot path. The lock-free
//! layout replaces the scan with an **epoch-sampled fullest-shard
//! hint**: a single `AtomicUsize` refreshed by each collective refill
//! publish (one O(nshards) scan per *round*, not per GET), nudged by
//! single inserts, and re-sampled after every steal. A GET compares
//! only `fill[home]` against `fill[hint]` — O(1) — and steals from the
//! hinted shard iff it is strictly fuller. The hint may be stale
//! between refresh points, so equal progress is approximate at
//! sub-round granularity; it re-converges at every refill round, which
//! is exactly the granularity §IV-D's collective reinsertion cares
//! about.
//!
//! ### Collective visibility without shard locks
//!
//! A CAS popper takes no locks, so `insert_all` cannot exclude it by
//! holding them. Instead the cache uses a seqlock-style **gate**: the
//! publisher flips a generation counter odd, pushes each shard's batch
//! with a single `push_many` CAS, and flips it even. Poppers read the
//! gate before and after their pop; a change means a publish
//! overlapped, so they *undo* (push the bucket back) and retry. An
//! unchanged even gate proves the pop did not run inside a publish
//! window — the §IV-D guarantee with two unfenced loads on the fast
//! path instead of a mutex.
//!
//! ### Oldest-round-first and the undo paths
//!
//! `insert_all_lf` re-publishes any unconsumed older buckets *on top*
//! of the new batch so the oldest refill round always pops first — a
//! buried old bucket would leave its round's tetris permanently
//! partial. Every path that pushes an **already-published** bucket back
//! onto a shard (`unpop_lf`, the `get_many_from` undo) and every
//! single-bucket insert therefore serializes with publishers on the
//! `publish` mutex: a bare "wait for an even gate, then push" would be
//! check-then-act — a publisher could begin (and drain the shard)
//! between the gate check and the push, landing the new batch on top of
//! the older bucket. This burial race is model-checked in
//! `crates/mc/tests/cache_invariants.rs` (the oldest-round-first
//! invariant fails within a few hundred schedules if the undo paths are
//! reverted to gate-polling).
//!
//! [`BucketCache::get_many_from`] pops up to `k` buckets from the home
//! shard in **one** CAS (`pop_many`) or one lock acquisition,
//! amortizing GET synchronization per *batch* the way §IV-C amortizes
//! it per chunk.
//!
//! [`BucketCache::new`] builds the single-shard mutex layout — the
//! pre-sharding baseline for tests and the `exp_cache_contention`
//! single-lock curve.
//!
//! All synchronization comes through [`crate::sync`], so `--features
//! mc` routes every atomic access, lock, and condvar wait below through
//! the model checker's controlled scheduler.

use crate::arena::Arena;
use crate::bucket::Bucket;
use crate::stats::AllocStats;
use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex, MutexGuard};
use crate::treiber::TreiberStack;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One shard. In the lock-free layout buckets live in `stack` and the
/// mutex exists only as the condvar parking lock — except under arena
/// backpressure, when buckets overflow into `q` (see
/// [`Shard::overflow`]); in the mutex layout buckets live in `q` (FIFO)
/// and `stack` stays empty.
#[derive(Debug)]
struct Shard {
    stack: TreiberStack<Bucket>,
    q: Mutex<VecDeque<Bucket>>, // lock-rank: cache.shard 60 via lock_shard
    available: Condvar,
    waiters: AtomicUsize,
    /// Shard population, readable without synchronization. Drives the
    /// equal-progress rule (scan in the mutex layout, hint in the
    /// lock-free one). Maintained pessimistically in the lock-free
    /// layout: incremented *before* a push, decremented *after* a
    /// successful pop, so it never underflows.
    fill: AtomicUsize,
    /// Lock-free layout only: number of buckets parked in `q` because a
    /// stack push hit [`ArenaFull`](crate::arena::ArenaFull) — the
    /// mutex-slow-path fallback that replaced the old exhaustion abort.
    /// Written only while holding `q` (always `store(q.len())`), so it
    /// mirrors the queue exactly. Invariant: `overflow > 0 ⇒ stack
    /// empty` — every push path checks it (under `publish`) before
    /// touching the stack, so pop order stays oldest-first through a
    /// backpressure episode.
    overflow: AtomicUsize,
}

impl Shard {
    fn new(arena: &Arc<Arena<Bucket>>) -> Self {
        Self {
            stack: TreiberStack::with_arena(Arc::clone(arena)),
            q: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            waiters: AtomicUsize::new(0),
            fill: AtomicUsize::new(0),
            overflow: AtomicUsize::new(0),
        }
    }
}

/// Sharded pool of available buckets (lock-free or mutex layout).
#[derive(Debug)]
pub struct BucketCache {
    shards: Box<[Shard]>,
    /// Lock-free Treiber layout? (false = mutex+VecDeque baseline)
    lock_free: bool,
    /// Seqlock generation for collective publishes: odd while an
    /// `insert_all` batch is being pushed (lock-free layout only).
    gate: AtomicU64,
    /// Serializes collective publishers — and the undo/single-insert
    /// paths that push already-published buckets (see module docs) —
    /// never touched by the GET fast path.
    publish: Mutex<()>, // lock-rank: cache.publish 50 via lock_publish
    /// Epoch-sampled fullest-shard hint (lock-free layout only).
    hint: AtomicUsize,
    /// Total buckets across all shards (lock-free `len`/`is_empty`).
    len: AtomicUsize,
    /// Getters currently parked anywhere (gate for cross-shard wakeups).
    waiters: AtomicUsize,
    /// The bounded node arena every shard's Treiber stack draws from.
    /// Shared across shards on purpose: a node freed by any shard is
    /// allocatable by any other (cross-shard donation), so one hot
    /// shard cannot exhaust the arena while siblings hold idle frees.
    arena: Arc<Arena<Bucket>>,
    stats: Arc<AllocStats>,
}

impl Default for BucketCache {
    fn default() -> Self {
        Self::new()
    }
}

impl BucketCache {
    fn with_layout(
        nshards: usize,
        lock_free: bool,
        arena_cap: usize,
        stats: Arc<AllocStats>,
    ) -> Self {
        let n = nshards.max(1);
        // One arena for every shard: pooled capacity + donation.
        let arena = Arc::new(Arena::with_stats(arena_cap, Arc::clone(&stats)));
        Self {
            shards: (0..n).map(|_| Shard::new(&arena)).collect(),
            lock_free,
            gate: AtomicU64::new(0),
            publish: Mutex::new(()),
            hint: AtomicUsize::new(0),
            len: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            arena,
            stats,
        }
    }

    /// Single-shard mutex cache with private stats — the pre-sharding
    /// layout (every GET funnels through one mutex, FIFO order). Kept
    /// for tests and as the contention baseline.
    pub fn new() -> Self {
        Self::with_layout(1, false, 0, Arc::new(AllocStats::default()))
    }

    /// Lock-free cache with `nshards` Treiber-stack shards (clamped to
    /// ≥ 1) recording contention counters into `stats`. Buckets map to
    /// shards by drive id, so one shard per data drive gives every
    /// refilled bucket of a round its own stack. The shared node arena
    /// uses the default capacity (see [`Self::with_shards_capped`]).
    pub fn with_shards(nshards: usize, stats: Arc<AllocStats>) -> Self {
        Self::with_layout(nshards, true, 0, stats)
    }

    /// [`Self::with_shards`] with an explicit arena capacity in nodes
    /// (0 = default, `AllocConfig::cache_arena_cap`). The cap bounds
    /// the cache's node memory; pushes beyond it take the mutex
    /// overflow path instead of aborting.
    pub fn with_shards_capped(nshards: usize, arena_cap: usize, stats: Arc<AllocStats>) -> Self {
        Self::with_layout(nshards, true, arena_cap, stats)
    }

    /// Mutex-sharded cache (one mutex+condvar FIFO per shard) — the
    /// previous hot path, kept as a measurable baseline.
    pub fn with_shards_mutex(nshards: usize, stats: Arc<AllocStats>) -> Self {
        Self::with_layout(nshards, false, 0, stats)
    }

    /// The shared node arena under this cache's Treiber shards.
    pub fn arena(&self) -> &Arc<Arena<Bucket>> {
        &self.arena
    }

    /// Does GET take the lock-free CAS path?
    #[inline]
    pub fn is_lock_free(&self) -> bool {
        self.lock_free
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Buckets currently populating the shard that serves `start` (the
    /// getter's home shard, before any steal). The pessimistic fill
    /// counter, readable without synchronization — callers use it as an
    /// advisory depth signal (e.g. the cleaner's adaptive GET batch),
    /// never for correctness.
    #[inline]
    pub fn shard_fill(&self, start: usize) -> usize {
        // ordering: Acquire pairs with the Release/AcqRel fill updates on
        // the insert/pop paths; an advisory depth read, monotonicity of
        // the underlying population is not required;
        // pairs-with: cache.fill.
        self.shards[start % self.shards.len()]
            .fill
            .load(Ordering::Acquire)
    }

    /// Number of buckets currently available (lock-free).
    #[inline]
    pub fn len(&self) -> usize {
        // ordering: SeqCst — participates in the waiter protocol's total
        // order (see `wake_parked` / `get_timeout_from`): an inserter's
        // len bump and a waiter's registration must not both be missed.
        self.len.load(Ordering::SeqCst)
    }

    /// Is the cache empty (a GET would block)? Lock-free.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// CAS retries paid on the Treiber stacks and the shared arena's
    /// free lists so far — the lock-free layout's contention meter (0
    /// in the mutex layout).
    pub fn cas_retries(&self) -> u64 {
        self.arena.retries()
    }

    /// The shard a bucket lives in.
    #[inline]
    fn shard_of(&self, b: &Bucket) -> usize {
        b.drive().0 as usize % self.shards.len()
    }

    /// Lock a shard queue, timing only the contended (slow) path.
    fn lock_shard<'a>(&self, shard: &'a Shard) -> MutexGuard<'a, VecDeque<Bucket>> {
        if let Some(g) = shard.q.try_lock() {
            return g;
        }
        let t0 = Instant::now();
        let g = shard.q.lock();
        self.stats
            .cache_lock_waits_ns
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        g
    }

    /// Take the publish mutex, timing only the contended (slow) path.
    /// Held by collective publishers for the whole gate-odd window and
    /// by the undo / single-insert paths around their push (see module
    /// docs: serialization is what keeps older buckets on top).
    fn lock_publish(&self) -> MutexGuard<'_, ()> {
        if let Some(g) = self.publish.try_lock() {
            return g;
        }
        let t0 = Instant::now();
        let g = self.publish.lock();
        self.stats
            .cache_lock_waits_ns
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        g
    }

    /// Wait out any in-progress collective publish and return the (even)
    /// gate generation. Free when no publish is running: one load.
    /// Stall time counts into `cache_lock_waits_ns` — it is this
    /// layout's residual "lock wait".
    fn gate_enter(&self) -> u64 {
        // ordering: Acquire pairs with the publisher's closing AcqRel
        // `fetch_add` — an even gate implies the whole batch (and the
        // len/fill updates before it) is visible;
        // pairs-with: cache.gate.
        let g = self.gate.load(Ordering::Acquire);
        if g & 1 == 0 {
            return g;
        }
        let t0 = Instant::now();
        let mut spins = 0u32;
        loop {
            // ordering: Acquire — as above; each retry must see the
            // publisher's writes once the gate goes even;
            // pairs-with: cache.gate.
            let g = self.gate.load(Ordering::Acquire);
            if g & 1 == 0 {
                self.stats
                    .cache_lock_waits_ns
                    // ordering: statistics counter; staleness is OK.
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                return g;
            }
            spins += 1;
            if spins < 32 {
                crate::sync::hint::spin_loop();
            } else {
                // Publishes are short but this may be a single-core box:
                // let the publisher run.
                crate::sync::hint::yield_now();
            }
        }
    }

    /// Re-sample the fullest shard into the hint: one O(nshards) scan,
    /// paid per refill round / steal instead of per GET.
    fn refresh_hint(&self) {
        let mut best_s = 0usize;
        let mut best = 0usize;
        for (s, shard) in self.shards.iter().enumerate() {
            // ordering: Acquire pairs with the AcqRel fill updates on the
            // insert/pop paths; the hint tolerates staleness by design
            // (it is re-sampled every round) but should not see fills
            // from before the buckets they count became poppable;
            // pairs-with: cache.fill.
            let f = shard.fill.load(Ordering::Acquire);
            if f > best {
                best = f;
                best_s = s;
            }
        }
        // ordering: Relaxed — the hint is advisory; a stale hint only
        // costs one extra fill comparison on the GET path.
        self.hint.store(best_s, Ordering::Relaxed);
    }

    /// Wake parked getters on every shard that has any. Inserts into one
    /// shard must also wake getters parked on *other* shards (they can
    /// steal); locking the waiter's shard before notifying closes the
    /// check-then-park race. Only runs when someone is actually parked.
    /// SeqCst pairs with the waiter's registration: if this load misses
    /// a registration, that waiter's later `len` re-check (also SeqCst,
    /// after registering) is ordered after our pre-insert `len` bump and
    /// sees the bucket instead of parking.
    fn wake_parked(&self) {
        // ordering: SeqCst — single total order with the waiter's
        // registration and len re-check (see doc comment above); Acquire
        // here could miss a registration whose len re-check also missed
        // our insert.
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        for shard in self.shards.iter() {
            // ordering: SeqCst — same protocol as the global counter.
            if shard.waiters.load(Ordering::SeqCst) > 0 {
                let _g = self.lock_shard(shard);
                shard.available.notify_all();
            }
        }
    }

    /// Infrastructure side: insert one bucket into its drive's shard.
    pub fn insert(&self, b: Bucket) {
        if self.lock_free {
            self.insert_lf(b);
        } else {
            self.insert_mutex(b);
        }
    }

    fn insert_mutex(&self, b: Bucket) {
        let shard = &self.shards[self.shard_of(&b)];
        let mut q = self.lock_shard(shard);
        q.push_back(b);
        // ordering: Release — fill counts published buckets; readers pair
        // with Acquire in the fill scans; pairs-with: cache.fill.
        shard.fill.fetch_add(1, Ordering::Release);
        // ordering: SeqCst — waiter protocol (see `wake_parked`).
        self.len.fetch_add(1, Ordering::SeqCst);
        // Notify while holding the lock: a getter of this shard is either
        // already parked (woken here) or has yet to take the lock (and
        // will see the bucket).
        shard.available.notify_one();
        drop(q);
        self.wake_parked();
    }

    /// Park `b` at the back of a shard's overflow queue (the mutex slow
    /// path a push takes when the arena is at capacity). Caller holds
    /// `publish`; the invariant `overflow > 0 ⇒ stack empty` is
    /// maintained by `spill_stack_to_queue` running first whenever the
    /// shard transitions into overflow mode.
    fn overflow_push_back(&self, s: usize, b: Bucket) {
        let shard = &self.shards[s];
        let mut q = self.lock_shard(shard);
        q.push_back(b);
        // ordering: Release — pairs with `pop_lf`'s Acquire probe; the
        // count mirrors `q` exactly (only ever stored under its lock);
        // pairs-with: cache.overflow.
        shard.overflow.store(q.len(), Ordering::Release);
    }

    /// Enter overflow mode for shard `s`: drain whatever the stack
    /// still holds into the queue (stack pop order = queue front, so
    /// FIFO service preserves the stack's oldest-first order), leaving
    /// the stack empty as the overflow invariant requires. Caller holds
    /// `publish`, so no publisher races the drain; concurrent CAS
    /// poppers may take buckets mid-drain, which is harmless (they got
    /// valid buckets).
    fn spill_stack_to_queue(&self, s: usize) {
        let shard = &self.shards[s];
        // ordering: statistics counter; staleness is acceptable.
        self.stats
            .arena_full_fallbacks
            .fetch_add(1, Ordering::Relaxed);
        // Arena exhaustion means the sizing model broke down — worth a
        // flight-recorder bundle (lock-free; dumped at next service).
        obs::trigger(obs::Trigger::ArenaFull, s as u64);
        let drained = shard.stack.pop_many(usize::MAX);
        let mut q = self.lock_shard(shard);
        q.extend(drained);
        // ordering: Release — see `overflow_push_back`; pairs-with: cache.overflow.
        shard.overflow.store(q.len(), Ordering::Release);
    }

    fn insert_lf(&self, b: Bucket) {
        let s = self.shard_of(&b);
        let shard = &self.shards[s];
        // Serialize with collective publishers: a push landing between a
        // publisher's leftover drain and its `push_many` would be buried
        // under the new batch — fatal if this bucket is from an older
        // round (see module docs, "Oldest-round-first and the undo
        // paths"). Single inserts are infrastructure-side, so this mutex
        // is off the GET fast path.
        let p = self.lock_publish();
        // len before fill before push: a getter that saw len > 0 may
        // sweep shards before the push lands and miss — that is a
        // transient try-get miss, not a protocol violation (timeout
        // getters re-scan). The reverse order could underflow `fill`.
        // ordering: SeqCst — waiter protocol (see `wake_parked`).
        self.len.fetch_add(1, Ordering::SeqCst);
        // ordering: AcqRel — fill is read by concurrent equal-progress
        // scans (Acquire) and updated from multiple insert/pop paths;
        // pairs-with: cache.fill.
        let f = shard.fill.fetch_add(1, Ordering::AcqRel) + 1;
        let key = b.generation();
        // ordering: Acquire — overflow probe pairs with the Release
        // stores under the queue lock; under `publish` the mode is
        // stable (only publish-holders change it);
        // pairs-with: cache.overflow.
        if shard.overflow.load(Ordering::Acquire) > 0 {
            // Already in overflow mode: stay FIFO until the queue
            // drains (mixing paths would reorder rounds).
            self.overflow_push_back(s, b);
        } else if let Err(b) = shard.stack.try_push_keyed(b, key) {
            // Arena at capacity: fall back to the mutex queue instead
            // of aborting (the bug this PR fixes). Spill the stack
            // first so service order stays oldest-first.
            self.spill_stack_to_queue(s);
            self.overflow_push_back(s, b);
        }
        drop(p);
        // O(1) hint nudge: adopt this shard if it now looks fullest.
        // ordering: Relaxed — the hint is advisory (see `refresh_hint`).
        let h = self.hint.load(Ordering::Relaxed) % self.shards.len();
        // ordering: Acquire — fill read for the equal-progress compare;
        // pairs-with: cache.fill.
        if s != h && f > self.shards[h].fill.load(Ordering::Acquire) {
            // ordering: Relaxed — advisory hint store.
            self.hint.store(s, Ordering::Relaxed);
        }
        self.wake_parked();
    }

    /// Infrastructure side: insert a batch of buckets atomically — the
    /// collective reinsertion of §IV-D ("collectively put back into the
    /// bucket cache"). No GET can observe a partially visible batch: the
    /// mutex layout holds every destination shard lock while appending;
    /// the lock-free layout publishes inside an odd gate window that
    /// poppers detect and retry across. Each affected shard is notified
    /// **once**, not once per bucket.
    pub fn insert_all(&self, buckets: impl IntoIterator<Item = Bucket>) {
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<Bucket>> = (0..n).map(|_| Vec::new()).collect();
        let mut total = 0usize;
        for b in buckets {
            per_shard[self.shard_of(&b)].push(b);
            total += 1;
        }
        if total == 0 {
            return;
        }
        if self.lock_free {
            self.insert_all_lf(per_shard, total);
        } else {
            self.insert_all_mutex(per_shard, total);
        }
        self.wake_parked();
    }

    fn insert_all_mutex(&self, mut per_shard: Vec<Vec<Bucket>>, total: usize) {
        // Acquire in ascending shard order (the only multi-shard lock
        // site, so ordering alone rules out deadlock).
        let mut guards: Vec<(usize, MutexGuard<'_, VecDeque<Bucket>>)> = Vec::new();
        for (s, batch) in per_shard.iter_mut().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let mut g = self.lock_shard(&self.shards[s]);
            self.shards[s]
                .fill
                // ordering: Release — pairs with the Acquire fill scans; pairs-with: cache.fill.
                .fetch_add(batch.len(), Ordering::Release);
            g.extend(batch.drain(..));
            guards.push((s, g));
        }
        // ordering: SeqCst — waiter protocol (see `wake_parked`).
        self.len.fetch_add(total, Ordering::SeqCst);
        for (s, _) in &guards {
            self.shards[*s].available.notify_all();
        }
    }

    fn insert_all_lf(&self, per_shard: Vec<Vec<Bucket>>, total: usize) {
        // Publishers serialize on `publish` — also held by the undo and
        // single-insert paths, so the drain below observes a stable
        // stack. The gate (odd while the batch lands) makes concurrent
        // CAS poppers retry, so the batch becomes visible collectively.
        let _p = self.lock_publish();
        // ordering: AcqRel — opening fence of the publish window: poppers
        // that Acquire-load an odd gate know a publish is in flight;
        // pairs-with: cache.gate.
        let g = self.gate.fetch_add(1, Ordering::AcqRel);
        debug_assert_eq!(g & 1, 0, "publisher found the gate already odd");
        // ordering: SeqCst — waiter protocol (see `wake_parked`).
        self.len.fetch_add(total, Ordering::SeqCst);
        for (s, batch) in per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            // ordering: AcqRel — fill update paired with Acquire scans;
            // pairs-with: cache.fill.
            self.shards[s].fill.fetch_add(batch.len(), Ordering::AcqRel);
            // ordering: Acquire — overflow probe (see `insert_lf`);
            // pairs-with: cache.overflow.
            if self.shards[s].overflow.load(Ordering::Acquire) > 0 {
                // Overflow mode: the queue already holds the older
                // rounds at its front (FIFO), so appending the new
                // batch preserves oldest-round-first directly.
                let shard = &self.shards[s];
                let mut q = self.lock_shard(shard);
                q.extend(batch);
                // ordering: Release — see `overflow_push_back`; pairs-with: cache.overflow.
                shard.overflow.store(q.len(), Ordering::Release);
                continue;
            }
            // Re-publish any older leftovers *on top* of the new batch:
            // raw LIFO would bury the previous round's unconsumed bucket
            // under this one, and a buried bucket that never gets popped
            // leaves its round's tetris permanently partial — the exact
            // fill-progress skew §IV-D's collective reinsertion exists
            // to prevent. Publishers, undo-pushers, and single inserts
            // all hold `publish`, so the drain is stable; leftovers are
            // at most a round deep, and one CAS publishes the whole
            // reordered chain.
            let older = self.shards[s].stack.pop_many(usize::MAX);
            let keyed: Vec<(Bucket, u64)> = older
                .into_iter()
                .chain(batch)
                .map(|b| {
                    let key = b.generation();
                    (b, key)
                })
                .collect();
            if let Err(items) = self.shards[s].stack.try_push_many_keyed(keyed) {
                // Arena at capacity mid-refill: the whole chain comes
                // back in order (all-or-nothing) and moves to the
                // overflow queue — backpressure, not an abort. The
                // stack is empty (we just drained it), so the overflow
                // invariant holds.
                self.spill_stack_to_queue(s);
                let shard = &self.shards[s];
                let mut q = self.lock_shard(shard);
                q.extend(items.into_iter().map(|(b, _)| b));
                // ordering: Release — see `overflow_push_back`; pairs-with: cache.overflow.
                shard.overflow.store(q.len(), Ordering::Release);
            }
        }
        // The refill round's epoch sample: one scan per round keeps the
        // hint honest without any per-GET scan.
        self.refresh_hint();
        // ordering: AcqRel — closing fence: Release publishes the batch
        // to poppers whose even-gate Acquire load pairs with this;
        // pairs-with: cache.gate.
        self.gate.fetch_add(1, Ordering::AcqRel);
        // Arena maintenance rides the refill round, off the GET fast
        // path and outside the gate window (poppers are running again):
        // drain slot caches, retire fully-free chunks, advance the
        // epoch, reclaim post-grace slabs. This is what turns a
        // shrinking population into returned memory.
        self.arena.maintain();
    }

    /// Pop from one specific shard (mutex layout).
    fn pop_shard(&self, s: usize) -> Option<Bucket> {
        let mut q = self.lock_shard(&self.shards[s]);
        let b = q.pop_front()?;
        // ordering: Release — pairs with the Acquire fill scans; pairs-with: cache.fill.
        self.shards[s].fill.fetch_sub(1, Ordering::Release);
        // ordering: SeqCst — waiter protocol (see `wake_parked`).
        self.len.fetch_sub(1, Ordering::SeqCst);
        Some(b)
    }

    /// CAS-pop from one specific shard (lock-free layout). Under arena
    /// backpressure the shard's buckets live in the overflow queue
    /// instead; serve it FIFO first (it holds the oldest rounds), then
    /// fall through to the stack.
    fn pop_lf(&self, s: usize) -> Option<Bucket> {
        // ordering: Acquire — pairs with the Release overflow stores;
        // a stale 0 just means we probe the (then-empty) stack and the
        // timeout path re-scans, a stale >0 costs one queue lock;
        // pairs-with: cache.overflow.
        if self.shards[s].overflow.load(Ordering::Acquire) > 0 {
            let shard = &self.shards[s];
            let mut q = self.lock_shard(shard);
            if let Some(b) = q.pop_front() {
                // ordering: Release — see `overflow_push_back`; pairs-with: cache.overflow.
                shard.overflow.store(q.len(), Ordering::Release);
                drop(q);
                // ordering: AcqRel — fill update paired with Acquire scans;
                // pairs-with: cache.fill.
                shard.fill.fetch_sub(1, Ordering::AcqRel);
                // ordering: SeqCst — waiter protocol (see `wake_parked`).
                self.len.fetch_sub(1, Ordering::SeqCst);
                return Some(b);
            }
            // Queue drained by a racing popper: fall through.
        }
        let b = self.shards[s].stack.pop()?;
        // ordering: AcqRel — fill update paired with Acquire scans;
        // pairs-with: cache.fill.
        self.shards[s].fill.fetch_sub(1, Ordering::AcqRel);
        // ordering: SeqCst — waiter protocol (see `wake_parked`).
        self.len.fetch_sub(1, Ordering::SeqCst);
        Some(b)
    }

    /// Undo a CAS pop that raced a collective publish: the bucket goes
    /// back onto the shard it came from, **on top of** the published
    /// batch — the undone bucket is older than the batch, and older
    /// buckets must pop first (see `insert_all_lf`). Holding `publish`
    /// (not merely polling the gate) is what makes "on top" reliable: a
    /// publisher cannot start its drain+republish between our check and
    /// our push and bury this bucket under the new batch.
    fn unpop_lf(&self, s: usize, b: Bucket) {
        let p = self.lock_publish();
        // ordering: SeqCst — waiter protocol (see `wake_parked`).
        self.len.fetch_add(1, Ordering::SeqCst);
        // ordering: AcqRel — fill update paired with Acquire scans;
        // pairs-with: cache.fill.
        self.shards[s].fill.fetch_add(1, Ordering::AcqRel);
        let key = b.generation();
        // ordering: Acquire — overflow probe (see `insert_lf`);
        // pairs-with: cache.overflow.
        if self.shards[s].overflow.load(Ordering::Acquire) > 0 {
            // The undone bucket is the oldest in flight: front of the
            // FIFO queue plays the role "top of the stack" does below.
            let shard = &self.shards[s];
            let mut q = self.lock_shard(shard);
            q.push_front(b);
            // ordering: Release — see `overflow_push_back`; pairs-with: cache.overflow.
            shard.overflow.store(q.len(), Ordering::Release);
        } else if let Err(b) = self.shards[s].stack.try_push_keyed(b, key) {
            // Arena at capacity: enter overflow mode with the undone
            // bucket in front of whatever the stack still held.
            self.spill_stack_to_queue(s);
            let shard = &self.shards[s];
            let mut q = self.lock_shard(shard);
            q.push_front(b);
            // ordering: Release — see `overflow_push_back`; pairs-with: cache.overflow.
            shard.overflow.store(q.len(), Ordering::Release);
        }
        drop(p);
        // The transient pop may have shown a waiter an empty cache right
        // before it parked; with several undoing getters in flight the
        // publisher's own wake can land inside that window, so the undo
        // must re-issue the wakeup itself.
        self.wake_parked();
    }

    /// Count a successful pop as a home (fast-path) hit or a steal.
    fn count_pop(&self, shard: usize, home: usize) {
        if shard == home {
            // ordering: statistics counter; staleness is acceptable.
            self.stats.cache_get_fast.fetch_add(1, Ordering::Relaxed);
        } else {
            // ordering: statistics counter; staleness is acceptable.
            self.stats.cache_get_steal.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cleaner side: try to take a bucket without blocking, starting at
    /// the caller's affinity shard (`start % nshards`) and work-stealing
    /// on a miss.
    ///
    /// **Equal-progress pop rule**: the home shard is taken only when no
    /// fuller shard is known; otherwise the GET steals from the fullest.
    /// Refill rounds deposit one bucket per drive (§IV-D), so consuming
    /// fullest-first keeps per-drive consumption — and therefore
    /// per-drive fill progress, DESIGN.md invariant 7 — balanced for
    /// *any* number of cleaners. The mutex layout learns "fullest" from
    /// a per-GET O(nshards) scan; the lock-free layout from the O(1)
    /// epoch-sampled hint (see module docs) and is a single CAS on the
    /// common path.
    pub fn try_get_from(&self, start: usize) -> Option<Bucket> {
        if self.lock_free {
            self.try_get_lf(start)
        } else {
            self.try_get_mutex(start)
        }
    }

    fn try_get_mutex(&self, start: usize) -> Option<Bucket> {
        let n = self.shards.len();
        let home = start % n;
        if self.is_empty() {
            return None;
        }
        let mut target = home;
        // ordering: Acquire — fill scan pairs with Release fill updates;
        // pairs-with: cache.fill.
        let mut best = self.shards[home].fill.load(Ordering::Acquire);
        for d in 1..n {
            let s = (home + d) % n;
            // ordering: Acquire — as above; pairs-with: cache.fill.
            let f = self.shards[s].fill.load(Ordering::Acquire);
            if f > best {
                best = f;
                target = s;
            }
        }
        if let Some(b) = self.pop_shard(target) {
            self.count_pop(target, home);
            return Some(b);
        }
        // Raced with other getters since the fill scan: fall back to a
        // plain round-robin sweep so `None` still means "every shard was
        // empty at probe time".
        for d in 0..n {
            let s = (home + d) % n;
            if s == target {
                continue;
            }
            if let Some(b) = self.pop_shard(s) {
                self.count_pop(s, home);
                return Some(b);
            }
        }
        None
    }

    fn try_get_lf(&self, start: usize) -> Option<Bucket> {
        let n = self.shards.len();
        let home = start % n;
        loop {
            let g1 = self.gate_enter();
            // ordering: SeqCst — waiter-protocol len read (see `len`).
            if self.len.load(Ordering::SeqCst) == 0 {
                // Re-read the gate so "None" is still a collective
                // statement: no publish overlapped the emptiness probe.
                // ordering: Acquire — pairs with the publisher's gate
                // increments (see `gate_enter`);
                // pairs-with: cache.gate.
                if self.gate.load(Ordering::Acquire) == g1 {
                    return None;
                }
                continue;
            }
            // O(1) target choice: home, unless the hinted shard is
            // strictly fuller (the epoch-sampled equal-progress rule).
            // ordering: Relaxed — the hint is advisory (see
            // `refresh_hint`); a stale read costs one comparison.
            let hint = self.hint.load(Ordering::Relaxed) % n;
            let target = if hint != home
                // ordering: Acquire (×2) — fill compare pairs with the
                // Release/AcqRel fill updates.
                && self.shards[hint].fill.load(Ordering::Acquire)
                    > self.shards[home].fill.load(Ordering::Acquire)
            {
                hint
            } else {
                home
            };
            let mut from = target;
            let mut got = self.pop_lf(target);
            if got.is_none() {
                // Miss (hint stale, or home and hint both drained): fall
                // off the fast path to a fullest-first scan + sweep.
                let mut t2 = home;
                let mut best = 0usize;
                for d in 0..n {
                    let s = (home + d) % n;
                    // ordering: Acquire — fill scan (see above).
                    let f = self.shards[s].fill.load(Ordering::Acquire);
                    if f > best {
                        best = f;
                        t2 = s;
                    }
                }
                if t2 != target {
                    if let Some(b) = self.pop_lf(t2) {
                        from = t2;
                        got = Some(b);
                    }
                }
                if got.is_none() {
                    for d in 0..n {
                        let s = (home + d) % n;
                        if s == target || s == t2 {
                            continue;
                        }
                        if let Some(b) = self.pop_lf(s) {
                            from = s;
                            got = Some(b);
                            break;
                        }
                    }
                }
            }
            // ordering: Acquire — the seqlock read-side validation; pairs
            // with the publisher's gate increments.
            if self.gate.load(Ordering::Acquire) != g1 {
                // A collective publish overlapped: this pop may have
                // observed half a batch. Undo and retry (§IV-D).
                if let Some(b) = got.take() {
                    self.unpop_lf(from, b);
                }
                continue;
            }
            return got.inspect(|_| {
                self.count_pop(from, home);
                if from != home {
                    // Steals mean the hint led us off home: re-sample it
                    // (O(nshards), but only on the steal path).
                    self.refresh_hint();
                }
            });
        }
    }

    /// [`try_get_from`](Self::try_get_from) with affinity shard 0 (the
    /// single-shard-era API, used by drain paths and tests).
    pub fn try_get(&self) -> Option<Bucket> {
        self.try_get_from(0)
    }

    /// Batched GET: pop up to `max` buckets from the affinity shard with
    /// **one** synchronization event — a single `pop_many` CAS
    /// (lock-free) or one lock acquisition (mutex) — amortizing GET cost
    /// per batch as §IV-C amortizes it per chunk. Falls back to a
    /// single steal-capable [`try_get_from`](Self::try_get_from) when
    /// the home shard is dry, so the result is non-empty whenever the
    /// cache has buckets anywhere. Never blocks.
    ///
    /// Batches deliberately come from home only: stealing k buckets at
    /// once would defeat the equal-progress rule, while home batches
    /// just consume the caller's own per-drive deposits a round early.
    /// A batch also never crosses a **refill-round boundary** (bucket
    /// generations): mixing round N+1 buckets into a batch while round
    /// N is still outstanding would delay — or, at stream end, forfeit —
    /// round N's tetris completion, turning its whole round of stripes
    /// partial. With one shard per drive each round deposits one bucket
    /// per shard, so home batches only exceed 1 when shards are coarser
    /// than drives.
    pub fn get_many_from(&self, start: usize, max: usize) -> Vec<Bucket> {
        let n = self.shards.len();
        let home = start % n;
        if max > 1 {
            if self.lock_free {
                loop {
                    let g1 = self.gate_enter();
                    // Under arena backpressure the home shard serves
                    // from its FIFO overflow queue; batching degrades
                    // to the steal-capable single GET (which knows the
                    // queue) rather than growing a stack-only path.
                    // ordering: Acquire — overflow probe (see `pop_lf`).
                    if self.shards[home].overflow.load(Ordering::Acquire) > 0 {
                        break;
                    }
                    // Equal progress still outranks batching: when the
                    // hinted shard is strictly fuller than home, a home
                    // batch would let this cleaner's drive race ahead
                    // while the backlogged drive's older rounds rot, so
                    // fall through to the steal-capable single GET.
                    // ordering: Relaxed — advisory hint read.
                    let hint = self.hint.load(Ordering::Relaxed) % n;
                    if hint != home
                        // ordering: Acquire (×2) — fill compare (see
                        // `try_get_lf`); pairs-with: cache.fill.
                        && self.shards[hint].fill.load(Ordering::Acquire)
                            > self.shards[home].fill.load(Ordering::Acquire)
                    {
                        break;
                    }
                    let got = self.shards[home].stack.pop_many_same_key(max);
                    if got.is_empty() {
                        break;
                    }
                    let k = got.len();
                    // ordering: AcqRel — fill update (see `pop_lf`);
                    // pairs-with: cache.fill.
                    self.shards[home].fill.fetch_sub(k, Ordering::AcqRel);
                    // ordering: SeqCst — waiter protocol (see `len`).
                    self.len.fetch_sub(k, Ordering::SeqCst);
                    // ordering: Acquire — seqlock read-side validation
                    // (see `try_get_lf`); pairs-with: cache.gate.
                    if self.gate.load(Ordering::Acquire) != g1 {
                        // Raced a collective publish: put the chain back
                        // on top (one CAS, order preserved, serialized
                        // with publishers — see `unpop_lf` for why the
                        // mutex and not the gate) and retry.
                        let p = self.lock_publish();
                        // ordering: SeqCst — waiter protocol (see `len`).
                        self.len.fetch_add(k, Ordering::SeqCst);
                        // ordering: AcqRel — fill update (see `pop_lf`);
                        // pairs-with: cache.fill.
                        self.shards[home].fill.fetch_add(k, Ordering::AcqRel);
                        let keyed: Vec<(Bucket, u64)> = got
                            .into_iter()
                            .map(|b| {
                                let key = b.generation();
                                (b, key)
                            })
                            .collect();
                        if let Err(items) = self.shards[home].stack.try_push_many_keyed(keyed) {
                            // The k nodes we just freed were stolen by
                            // concurrent allocators before our re-push
                            // (shared arena): overflow instead of abort.
                            // The undone chain is the oldest in flight,
                            // so it goes to the queue front.
                            self.spill_stack_to_queue(home);
                            let shard = &self.shards[home];
                            let mut q = self.lock_shard(shard);
                            for (b, _) in items.into_iter().rev() {
                                q.push_front(b);
                            }
                            // ordering: Release — see `overflow_push_back`; pairs-with: cache.overflow.
                            shard.overflow.store(q.len(), Ordering::Release);
                        }
                        drop(p);
                        // Same lost-wakeup window as `unpop_lf`: the
                        // transient pop may have parked a waiter.
                        self.wake_parked();
                        continue;
                    }
                    self.stats
                        .cache_get_fast
                        // ordering: statistics counter.
                        .fetch_add(k as u64, Ordering::Relaxed);
                    self.stats
                        .cache_get_batched
                        // ordering: statistics counter.
                        .fetch_add((k - 1) as u64, Ordering::Relaxed);
                    return got;
                }
            } else {
                // Same equal-progress guard as the lock-free branch,
                // via this layout's per-GET fill scan.
                // ordering: Acquire — fill scan (see `try_get_mutex`);
                // pairs-with: cache.fill.
                let home_fill = self.shards[home].fill.load(Ordering::Acquire);
                let fuller = (0..n)
                    // ordering: Acquire — fill scan (see `try_get_mutex`);
                    // pairs-with: cache.fill.
                    .any(|s| s != home && self.shards[s].fill.load(Ordering::Acquire) > home_fill);
                if fuller {
                    return self.try_get_from(start).into_iter().collect();
                }
                let mut q = self.lock_shard(&self.shards[home]);
                let mut k = 0usize;
                if let Some(front) = q.front() {
                    let gen0 = front.generation();
                    while k < max.min(q.len()) && q[k].generation() == gen0 {
                        k += 1;
                    }
                }
                if k > 0 {
                    let got: Vec<Bucket> = q.drain(..k).collect();
                    // ordering: Release — fill update (see `pop_shard`);
                    // pairs-with: cache.fill.
                    self.shards[home].fill.fetch_sub(k, Ordering::Release);
                    // ordering: SeqCst — waiter protocol (see `len`).
                    self.len.fetch_sub(k, Ordering::SeqCst);
                    drop(q);
                    self.stats
                        .cache_get_fast
                        // ordering: statistics counter.
                        .fetch_add(k as u64, Ordering::Relaxed);
                    self.stats
                        .cache_get_batched
                        // ordering: statistics counter.
                        .fetch_add((k - 1) as u64, Ordering::Relaxed);
                    return got;
                }
            }
        }
        self.try_get_from(start).into_iter().collect()
    }

    /// Cleaner side: take a bucket, blocking up to `timeout`, with the
    /// same affinity/steal order as [`try_get_from`](Self::try_get_from).
    /// Returns `None` on timeout (callers treat that as "aggregate may be
    /// exhausted; re-check and retry or give up").
    ///
    /// A blocked getter parks on its affinity shard's condvar; inserts
    /// into *any* shard wake it (see [`Self::wake_parked`]), after which
    /// it re-scans all shards. This is the one place the lock-free
    /// layout still touches the shard mutex — the blocking slow path.
    pub fn get_timeout_from(&self, start: usize, timeout: Duration) -> Option<Bucket> {
        if let Some(b) = self.try_get_from(start) {
            return Some(b);
        }
        let shard = &self.shards[start % self.shards.len()];
        let deadline = Instant::now() + timeout;
        self.stats
            .cache_blocked_gets
            // ordering: statistics counter; staleness is acceptable.
            .fetch_add(1, Ordering::Relaxed);
        // Register as a waiter *before* the re-scan: any insert that
        // lands after the scan will see the registration and notify
        // (SeqCst pairs with `wake_parked`'s check).
        // ordering: SeqCst (×2) — waiter registration; must be in a
        // single total order with `wake_parked`'s waiter loads and the
        // inserter's len bump so that either the inserter sees us or our
        // re-check below sees its bucket.
        self.waiters.fetch_add(1, Ordering::SeqCst);
        shard.waiters.fetch_add(1, Ordering::SeqCst); // ordering: see above
        let got = loop {
            if let Some(b) = self.try_get_from(start) {
                break Some(b);
            }
            let mut q = self.lock_shard(shard);
            // Predicate re-check under the shard lock: an inserter bumps
            // `len` before it notifies, so either we see len > 0 here
            // (and re-scan) or our park happens before its notify (and
            // we are woken).
            // ordering: SeqCst — the waiter-protocol len re-check.
            if self.len.load(Ordering::SeqCst) == 0
                && shard.available.wait_until(&mut q, deadline).timed_out()
            {
                drop(q);
                break self.try_get_from(start);
            }
        };
        // ordering: SeqCst (×2) — deregistration, same protocol.
        shard.waiters.fetch_sub(1, Ordering::SeqCst);
        self.waiters.fetch_sub(1, Ordering::SeqCst); // ordering: see above
        got
    }

    /// [`get_timeout_from`](Self::get_timeout_from) with affinity shard 0.
    pub fn get_timeout(&self, timeout: Duration) -> Option<Bucket> {
        self.get_timeout_from(0, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tetris::Tetris;
    use wafl_blockdev::{AaId, DriveId, DriveKind, GeometryBuilder, IoEngine, RaidGroupId, Vbn};

    fn mk_bucket_on(drive: u32, start: u64) -> Bucket {
        mk_bucket_gen(drive, start, 0)
    }

    fn mk_bucket_gen(drive: u32, start: u64, generation: u64) -> Bucket {
        let engine = Arc::new(IoEngine::new(
            Arc::new(
                GeometryBuilder::new()
                    .aa_stripes(32)
                    .raid_group(1, 1, 4096)
                    .build(),
            ),
            DriveKind::Ssd,
        ));
        let t = Tetris::new(RaidGroupId(0), 1, engine, Arc::new(AllocStats::default()));
        Bucket::new(
            RaidGroupId(0),
            0,
            DriveId(drive),
            AaId {
                rg: RaidGroupId(0),
                index: 0,
            },
            (start..start + 4).map(Vbn).collect(),
            0,
            t,
            generation,
        )
    }

    fn mk_bucket(start: u64) -> Bucket {
        mk_bucket_on(0, start)
    }

    /// Lock-free layout (the default GET path).
    fn sharded(n: usize) -> (BucketCache, Arc<AllocStats>) {
        let stats = Arc::new(AllocStats::default());
        (BucketCache::with_shards(n, Arc::clone(&stats)), stats)
    }

    /// Mutex baseline layout.
    fn sharded_mutex(n: usize) -> (BucketCache, Arc<AllocStats>) {
        let stats = Arc::new(AllocStats::default());
        (BucketCache::with_shards_mutex(n, Arc::clone(&stats)), stats)
    }

    #[test]
    fn fifo_order() {
        let c = BucketCache::new();
        assert!(!c.is_lock_free(), "new() keeps the single-mutex layout");
        c.insert(mk_bucket(0));
        c.insert(mk_bucket(100));
        assert_eq!(c.len(), 2);
        assert_eq!(c.try_get().unwrap().start_vbn(), Vbn(0));
        assert_eq!(c.try_get().unwrap().start_vbn(), Vbn(100));
        assert!(c.try_get().is_none());
    }

    #[test]
    fn lock_free_shard_is_lifo() {
        let (c, _) = sharded(1);
        assert!(c.is_lock_free());
        c.insert(mk_bucket(0));
        c.insert(mk_bucket(100));
        assert_eq!(c.try_get().unwrap().start_vbn(), Vbn(100));
        assert_eq!(c.try_get().unwrap().start_vbn(), Vbn(0));
        assert!(c.try_get().is_none());
    }

    #[test]
    fn insert_all_is_atomic_batch() {
        let c = BucketCache::new();
        c.insert_all((0..5).map(|i| mk_bucket(i * 10)));
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn get_timeout_returns_none_when_starved() {
        let c = BucketCache::new();
        let got = c.get_timeout(Duration::from_millis(20));
        assert!(got.is_none());
    }

    #[test]
    fn blocked_get_wakes_on_insert() {
        let c = Arc::new(BucketCache::new());
        let c2 = Arc::clone(&c);
        let h = std::thread::spawn(move || c2.get_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        c.insert(mk_bucket(7));
        let got = h.join().unwrap();
        assert_eq!(got.unwrap().start_vbn(), Vbn(7));
    }

    #[test]
    fn lock_free_blocked_get_wakes_on_insert() {
        let (c, _) = sharded(4);
        let c = Arc::new(c);
        let c2 = Arc::clone(&c);
        // Waiter homed on shard 3; bucket lands on shard 1 — the wake
        // must cross shards even with no mutex on the insert path.
        let h = std::thread::spawn(move || c2.get_timeout_from(3, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(10));
        c.insert(mk_bucket_on(1, 7));
        let got = h.join().unwrap();
        assert_eq!(got.unwrap().start_vbn(), Vbn(7));
    }

    #[test]
    fn concurrent_getters_each_receive_distinct_buckets() {
        let c = Arc::new(BucketCache::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                c.get_timeout(Duration::from_secs(5))
                    .map(|b| b.start_vbn().0)
            }));
        }
        c.insert_all((0..4).map(|i| mk_bucket(i * 4)));
        let mut got: Vec<u64> = handles
            .into_iter()
            .map(|h| h.join().unwrap().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 4, 8, 12]);
    }

    #[test]
    fn mutex_buckets_land_in_their_drives_shard() {
        let (c, stats) = sharded_mutex(4);
        // Drives 0..=3 → shards 0..=3; drives 4 and 5 wrap to shards 0 and 1.
        for d in 0..6u32 {
            c.insert(mk_bucket_on(d, u64::from(d) * 10));
        }
        assert_eq!(c.len(), 6);
        // Shards 0 and 1 are tied for fullest (two buckets each), so the
        // affinity GET from shard 1 keeps its home and sees drive 1's
        // bucket first (FIFO).
        assert_eq!(c.try_get_from(1).unwrap().drive(), DriveId(1));
        // Now shard 0 alone is fullest: the equal-progress rule steals
        // drive 0's bucket rather than draining home down to empty.
        assert_eq!(c.try_get_from(1).unwrap().drive(), DriveId(0));
        // ordering: test-only stats reads.
        assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 1);
        // ordering: test-only stats read.
        assert_eq!(stats.cache_get_steal.load(Ordering::Relaxed), 1);
        // Back in balance (one bucket each): home pops its second
        // resident, the drive-5 bucket that wrapped onto shard 1.
        assert_eq!(c.try_get_from(1).unwrap().drive(), DriveId(5));
        // ordering: test-only stats read.
        assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn lock_free_hint_steers_steals() {
        let (c, stats) = sharded(4);
        assert!(c.is_lock_free());
        // Same population as the mutex test: shards 0 and 1 hold two
        // buckets each (drives 0/4 and 1/5), shards 2 and 3 one each.
        for d in 0..6u32 {
            c.insert(mk_bucket_on(d, u64::from(d) * 10));
        }
        assert_eq!(c.len(), 6);
        // Hint points at shard 0 (tied fullest, not strictly fuller than
        // home 1): home keeps its pop and LIFO yields drive 5's bucket.
        assert_eq!(c.try_get_from(1).unwrap().drive(), DriveId(5));
        // Shard 0 (two buckets) is now strictly fuller than home 1 (one):
        // the O(1) hint steers a steal — top of shard 0 is drive 4.
        assert_eq!(c.try_get_from(1).unwrap().drive(), DriveId(4));
        // ordering: test-only stats reads.
        assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 1);
        // ordering: test-only stats read.
        assert_eq!(stats.cache_get_steal.load(Ordering::Relaxed), 1);
        // Balance restored (one bucket per shard): home pops drive 1.
        assert_eq!(c.try_get_from(1).unwrap().drive(), DriveId(1));
        // ordering: test-only stats read.
        assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn miss_at_home_shard_steals_round_robin() {
        for (c, stats) in [sharded(4), sharded_mutex(4)] {
            c.insert(mk_bucket_on(2, 20));
            // Affinity shard 0 is empty → the GET must steal from shard 2.
            let b = c.try_get_from(0).unwrap();
            assert_eq!(b.drive(), DriveId(2));
            // ordering: test-only stats reads.
            assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 0);
            // ordering: test-only stats read.
            assert_eq!(stats.cache_get_steal.load(Ordering::Relaxed), 1);
            assert!(c.try_get_from(0).is_none());
        }
    }

    #[test]
    fn get_many_pops_a_batch_from_home_in_one_acquisition() {
        for (c, stats) in [sharded(4), sharded_mutex(4)] {
            // Home shard 1 holds drives 1 and 5; shard 2 holds drive 2.
            for d in [1u32, 5, 2] {
                c.insert(mk_bucket_on(d, u64::from(d) * 10));
            }
            let got = c.get_many_from(1, 8);
            assert_eq!(got.len(), 2, "batch drains home, never steals");
            assert!(got.iter().all(|b| b.drive().0 % 4 == 1));
            // ordering: test-only stats reads.
            assert_eq!(stats.cache_get_fast.load(Ordering::Relaxed), 2);
            // ordering: test-only stats read.
            assert_eq!(stats.cache_get_batched.load(Ordering::Relaxed), 1);
            // Home now dry: the batched GET degrades to a single steal.
            let fallback = c.get_many_from(1, 8);
            assert_eq!(fallback.len(), 1);
            assert_eq!(fallback[0].drive(), DriveId(2));
            // ordering: test-only stats read.
            // ordering: test-only stats read.
            assert_eq!(stats.cache_get_steal.load(Ordering::Relaxed), 1);
            assert!(c.get_many_from(1, 8).is_empty());
            assert!(c.is_empty());
        }
    }

    #[test]
    fn get_many_of_one_is_a_plain_get() {
        let (c, stats) = sharded(2);
        c.insert(mk_bucket_on(0, 0));
        let got = c.get_many_from(0, 1);
        assert_eq!(got.len(), 1);
        // ordering: test-only stats read.
        assert_eq!(stats.cache_get_batched.load(Ordering::Relaxed), 0);
        assert!(c.get_many_from(0, 0).is_empty());
    }

    #[test]
    fn refill_rounds_pop_oldest_first_in_both_layouts() {
        // Two collective rounds land before anything is consumed (the
        // refill pipeline ran ahead). Consumption must drain round 1
        // completely before touching round 2 — otherwise round 1's
        // tetris is left permanently partial. The lock-free layout gets
        // this by re-publishing leftovers on top (LIFO alone would pop
        // round 2 first); the mutex layout by FIFO order.
        for lock_free in [true, false] {
            let stats = Arc::new(AllocStats::default());
            let c = BucketCache::with_layout(2, lock_free, 0, stats);
            c.insert_all((0..2).map(|d| mk_bucket_gen(d, u64::from(d) * 10, 1)));
            c.insert_all((0..2).map(|d| mk_bucket_gen(d, 100 + u64::from(d) * 10, 2)));
            let mut gens = Vec::new();
            for s in [0usize, 1, 0, 1] {
                gens.push(c.try_get_from(s).unwrap().generation());
            }
            assert_eq!(gens, vec![1, 1, 2, 2], "round 1 drains before round 2");
        }
    }

    #[test]
    fn get_many_never_crosses_a_refill_round() {
        // Single shard, two rounds of two buckets each: a batch of 8 must
        // stop at the round boundary and deliver round 1 only.
        for lock_free in [true, false] {
            let stats = Arc::new(AllocStats::default());
            let c = BucketCache::with_layout(1, lock_free, 0, Arc::clone(&stats));
            c.insert_all((0..2).map(|d| mk_bucket_gen(d, u64::from(d) * 10, 1)));
            c.insert_all((0..2).map(|d| mk_bucket_gen(d, 100 + u64::from(d) * 10, 2)));
            let first = c.get_many_from(0, 8);
            assert_eq!(first.len(), 2, "batch stops at the round boundary");
            assert!(first.iter().all(|b| b.generation() == 1));
            let second = c.get_many_from(0, 8);
            assert_eq!(second.len(), 2);
            assert!(second.iter().all(|b| b.generation() == 2));
            assert!(c.is_empty());
        }
    }

    #[test]
    fn sharded_insert_all_is_collectively_visible() {
        // The §IV-D invariant across shards: a getter never sees only
        // part of a refill batch. With the batch spread over all shards
        // and GETs racing the insert, every GET that returns Some must
        // come after the *whole* batch is visible — so the first 8
        // concurrent GETs drain exactly the 8 buckets. Exercised in both
        // layouts (gate vs multi-lock).
        for lock_free in [true, false] {
            for _ in 0..50 {
                let stats = Arc::new(AllocStats::default());
                let c = Arc::new(BucketCache::with_layout(8, lock_free, 0, stats));
                let mut handles = Vec::new();
                for t in 0..8usize {
                    let c = Arc::clone(&c);
                    handles.push(std::thread::spawn(move || {
                        c.get_timeout_from(t, Duration::from_secs(5)).is_some()
                    }));
                }
                c.insert_all((0..8).map(|d| mk_bucket_on(d, u64::from(d) * 100)));
                assert!(handles.into_iter().all(|h| h.join().unwrap()));
                assert!(c.is_empty());
            }
        }
    }

    #[test]
    fn no_waiter_sleeps_while_cache_nonempty() {
        // Regression for the insert_all wakeup storm: waiters homed on
        // shards that receive *no* buckets must still wake and steal.
        // Both waiters home on shard 3; the batch lands on shards 0..2.
        let (c, _) = sharded(4);
        let c = Arc::new(c);
        let mut handles = Vec::new();
        for _ in 0..2 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                let t0 = Instant::now();
                let got = c.get_timeout_from(3, Duration::from_secs(30));
                (got.is_some(), t0.elapsed())
            }));
        }
        std::thread::sleep(Duration::from_millis(20));
        c.insert_all((0..3u32).map(|d| mk_bucket_on(d, u64::from(d) * 100)));
        for h in handles {
            let (got, waited) = h.join().unwrap();
            assert!(got, "waiter must be woken cross-shard");
            assert!(
                waited < Duration::from_secs(5),
                "waiter slept {waited:?} with a non-empty cache"
            );
        }
        assert_eq!(c.len(), 1, "two of three buckets consumed");
    }

    #[test]
    fn blocked_gets_are_counted() {
        let (c, stats) = sharded(2);
        assert!(c.get_timeout_from(0, Duration::from_millis(5)).is_none());
        // ordering: test-only stats read.
        assert_eq!(stats.cache_blocked_gets.load(Ordering::Relaxed), 1);
        c.insert(mk_bucket_on(0, 0));
        assert!(c.try_get_from(0).is_some());
        // Fast-path GETs never count as blocked.
        // ordering: test-only stats read.
        assert_eq!(stats.cache_blocked_gets.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn len_is_consistent_across_shards() {
        for (c, _) in [sharded(3), sharded_mutex(3)] {
            c.insert_all((0..9u32).map(|d| mk_bucket_on(d, u64::from(d) * 16)));
            assert_eq!(c.len(), 9);
            let mut n = 0;
            while c.try_get_from(n).is_some() {
                n += 1;
            }
            assert_eq!(n, 9);
            assert!(c.is_empty());
        }
    }
}
