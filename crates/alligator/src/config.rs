//! Allocator configuration: the experimental dimensions of §V.

use serde::{Deserialize, Serialize};

/// Whether infrastructure work is parallelized across Waffinity Range
/// affinities or serialized — the instrumented-kernel switch used for
/// Figures 4, 6, and 7 ("we used an instrumented kernel with serialized
/// cleaner threads and/or infrastructure to be able to isolate the impact
/// of parallelization", §V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InfraMode {
    /// All infrastructure messages run in the Serial affinity: at most one
    /// executes at a time and it excludes all other file-system work. This
    /// models the pre-White-Alligator single-threaded infrastructure.
    Serial,
    /// Infrastructure messages run in Aggregate-VBN / Volume-VBN Range
    /// affinities (§IV-B2): refills and commits for different metafile
    /// regions proceed in parallel, and in parallel with client work.
    Parallel,
}

/// When refilled buckets re-enter the bucket cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReinsertPolicy {
    /// The paper's policy: "Only after the buckets from all drives in an
    /// aggregate have been used and refilled with VBNs are they
    /// collectively put back into the bucket cache … This synchronized
    /// insertion process ensures equal progress on each drive" (§IV-D).
    Collective,
    /// Ablation: each bucket re-enters the cache as soon as it is filled.
    /// Simpler and lower latency, but lets fast drives race ahead, which
    /// breaks full-stripe formation (measured by the ablation bench).
    Immediate,
}

/// White Alligator tuning parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AllocConfig {
    /// Bucket length in blocks — "the number of VBNs in a bucket is
    /// determined by the chunk size … typically a multiple of 64 blocks"
    /// (§IV-C). A chunk of 1 degenerates to per-VBN allocation, the
    /// baseline the paper contrasts against.
    pub chunk_blocks: usize,
    /// Desired write-I/O depth per drive, in stripes — the tetris depth
    /// (§IV-E). One refill round builds one tetris of `chunk_blocks`
    /// stripes, so in this model the tetris depth equals the chunk size.
    pub tetris_depth: u64,
    /// Refill the cache when it holds fewer than this many buckets.
    pub low_watermark: usize,
    /// Serialized or parallel infrastructure.
    pub infra_mode: InfraMode,
    /// Collective (equal-progress) or immediate bucket reinsertion.
    pub reinsert: ReinsertPolicy,
    /// Free-stage capacity: frees staged per cleaner before a commit
    /// message is sent to the infrastructure (§IV-A: "When a stage is
    /// full, the cleaner thread sends a message to the infrastructure to
    /// commit those frees to the metafiles").
    pub stage_capacity: usize,
    /// Bucket-cache shard count. `0` (the default) sizes the cache at one
    /// shard per data drive, so each refilled bucket of a round gets its
    /// own queue; `1` forces the pre-sharding single-lock layout (the
    /// `exp_cache_contention` baseline).
    pub cache_shards: usize,
    /// Lock-free (Treiber-stack) shard hot path? `true` (the default)
    /// makes GET a single CAS pop with the shard mutex demoted to the
    /// blocking slow path; `false` keeps the mutex+condvar FIFO shards
    /// as a measurable baseline (`mutex_cache()`).
    pub cache_lockfree: bool,
    /// Node capacity of the bucket cache's shared Treiber arena. `0`
    /// (the default) uses the built-in cap (`arena::DEFAULT_ARENA_CAP`,
    /// 256 Ki nodes). The cap *bounds cache memory*: when it is
    /// reached, inserts fall back to the shard's mutex overflow queue
    /// (typed `ArenaFull` backpressure) instead of growing — or, as
    /// before this knob existed, aborting. Fully-freed chunks are
    /// reclaimed through epoch-based grace periods, so a shrinking
    /// population returns memory instead of holding its high-water
    /// mark.
    pub cache_arena_cap: usize,
}

impl Default for AllocConfig {
    fn default() -> Self {
        Self {
            chunk_blocks: 64,
            tetris_depth: 64,
            low_watermark: 2,
            infra_mode: InfraMode::Parallel,
            reinsert: ReinsertPolicy::Collective,
            stage_capacity: 256,
            cache_shards: 0,
            cache_lockfree: true,
            cache_arena_cap: 0,
        }
    }
}

impl AllocConfig {
    /// The paper's configuration with a given chunk size.
    pub fn with_chunk(chunk_blocks: usize) -> Self {
        Self {
            chunk_blocks,
            tetris_depth: chunk_blocks as u64,
            ..Self::default()
        }
    }

    /// The serialized-infrastructure baseline of Figs 4/6/7.
    pub fn serial_infra(mut self) -> Self {
        self.infra_mode = InfraMode::Serial;
        self
    }

    /// Force the single-lock (unsharded) bucket cache — the contention
    /// baseline swept by `exp_cache_contention`.
    pub fn single_lock_cache(mut self) -> Self {
        self.cache_shards = 1;
        self.cache_lockfree = false;
        self
    }

    /// Keep the mutex+condvar sharded bucket cache (the PR-2 layout) —
    /// the lock-free hot path's comparison baseline.
    pub fn mutex_cache(mut self) -> Self {
        self.cache_lockfree = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_config() {
        let c = AllocConfig::default();
        assert_eq!(c.chunk_blocks % 64, 0, "chunk is a multiple of 64");
        assert_eq!(c.infra_mode, InfraMode::Parallel);
        assert_eq!(c.reinsert, ReinsertPolicy::Collective);
    }

    #[test]
    fn builders_compose() {
        let c = AllocConfig::with_chunk(128).serial_infra();
        assert_eq!(c.chunk_blocks, 128);
        assert_eq!(c.tetris_depth, 128);
        assert_eq!(c.infra_mode, InfraMode::Serial);
    }
}
