//! The tetris: per-RAID-group accumulation of cleaned buffers into one
//! write I/O.
//!
//! "A tetris is the unit of write I/O in WAFL. Logically, it is a
//! collection of blocks whose width is equal to the number of drives in
//! the RAID group and whose depth is the desired write I/O size per drive
//! … The tetris structure tracks lists of recently cleaned buffers on a
//! per-drive basis. Locking is not required when enqueuing buffers to the
//! tetris because the cleaner thread that owns a bucket has exclusive
//! access to the corresponding drive in the current tetris at that
//! instant. Each tetris also maintains a reference count of its
//! outstanding buckets that is atomically decremented … When this
//! reference count drops to zero, an I/O is constructed and sent to RAID"
//! (§IV-E).
//!
//! In this implementation the lock-free per-drive enqueue is realized by
//! ownership: each [`Bucket`](crate::bucket::Bucket) accumulates its
//! drive's `(DBN, stamp)` pairs privately (no synchronization at all on
//! the USE path) and deposits the whole list exactly once when the bucket
//! is finished — one short critical section per *bucket*, not per buffer,
//! which is the amortization the paper attributes to buckets (§IV-C).

use crate::stats::AllocStats;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use wafl_blockdev::{BlockStamp, IoEngine, IoError, IoResult, RaidGroupId, WriteIo, WriteSegment};

/// One drive's deposited writes: `(drive_in_rg, [(dbn, stamp)])`.
type DriveDeposit = (u32, Vec<(u64, BlockStamp)>);

/// One in-flight tetris: collects per-drive block lists from its buckets
/// and submits a single RAID write when the last bucket is done.
pub struct Tetris {
    rg: RaidGroupId,
    /// Buckets that have not yet deposited and signaled completion.
    outstanding: AtomicUsize,
    /// Deposited per-drive lists: `(drive_in_rg, Vec<(dbn, stamp)>)`.
    deposits: Mutex<Vec<DriveDeposit>>, // lock-rank: tetris.deposits 41
    io: Arc<IoEngine>,
    stats: Arc<AllocStats>,
    submitted: AtomicBool,
}

impl Tetris {
    /// Create a tetris expecting `outstanding` buckets (normally the RAID
    /// group width).
    pub fn new(
        rg: RaidGroupId,
        outstanding: usize,
        io: Arc<IoEngine>,
        stats: Arc<AllocStats>,
    ) -> Arc<Self> {
        assert!(outstanding > 0, "tetris needs at least one bucket");
        Arc::new(Self {
            rg,
            outstanding: AtomicUsize::new(outstanding),
            deposits: Mutex::new(Vec::with_capacity(outstanding)),
            io,
            stats,
            submitted: AtomicBool::new(false),
        })
    }

    /// Target RAID group.
    #[inline]
    pub fn rg(&self) -> RaidGroupId {
        self.rg
    }

    /// Buckets still outstanding.
    #[inline]
    pub fn outstanding(&self) -> usize {
        // ordering: Acquire — pairs with completion's AcqRel decrement; zero implies all I/O effects are visible.
        self.outstanding.load(Ordering::Acquire)
    }

    /// Has the write I/O been sent?
    #[inline]
    pub fn is_submitted(&self) -> bool {
        // ordering: Acquire — pairs with the AcqRel swap in submit.
        self.submitted.load(Ordering::Acquire)
    }

    /// Deposit a finished bucket's block list and decrement the
    /// outstanding count. When the count reaches zero, the write I/O is
    /// constructed and sent to RAID. Returns the I/O outcome if this call
    /// triggered submission; an `Err` means the write engine exhausted its
    /// retries (e.g. too many failed drives) and the stamps did not reach
    /// stable storage.
    ///
    /// `writes` may be empty (a bucket returned unused at CP end still
    /// participates in the countdown).
    pub fn deposit_and_complete(
        &self,
        drive_in_rg: u32,
        writes: Vec<(u64, BlockStamp)>,
    ) -> Option<Result<IoResult, IoError>> {
        if !writes.is_empty() {
            self.deposits.lock().push((drive_in_rg, writes));
        }
        // ordering: AcqRel — releases this I/O's effects to whoever
        // observes the count drop; pairs-with: tetris.outstanding.
        let prev = self.outstanding.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "tetris completed more buckets than outstanding");
        if prev == 1 {
            Some(self.submit())
        } else {
            None
        }
    }

    fn submit(&self) -> Result<IoResult, IoError> {
        // ordering: AcqRel — one-shot submit guard; the winner's setup is
        // released to later observers; pairs-with: tetris.submit.
        let was = self.submitted.swap(true, Ordering::AcqRel);
        assert!(!was, "tetris submitted twice");
        let mut deposits = std::mem::take(&mut *self.deposits.lock());
        // Convert each per-drive list into contiguous segments.
        let mut segments = Vec::new();
        for (drive, mut writes) in deposits.drain(..) {
            writes.sort_unstable_by_key(|&(dbn, _)| dbn);
            let mut i = 0;
            while i < writes.len() {
                let start = writes[i].0;
                let mut stamps = vec![writes[i].1];
                let mut j = i + 1;
                while j < writes.len() && writes[j].0 == start + (j - i) as u64 {
                    stamps.push(writes[j].1);
                    j += 1;
                }
                segments.push(WriteSegment {
                    drive_in_rg: drive,
                    start_dbn: start,
                    stamps,
                });
                i = j;
            }
        }
        let io = WriteIo {
            rg: self.rg,
            segments,
        };
        let blocks: usize = io.segments.iter().map(|s| s.stamps.len()).sum();
        let _sp = obs::trace_span!(obs::EventKind::StripeFire, blocks as u64);
        // ordering: statistics counter; staleness is acceptable.
        self.stats.tetris_ios.fetch_add(1, Ordering::Relaxed);
        // Pipelined path: when an async engine is attached, enqueue and
        // return immediately — the stripe completes in the background and
        // errors are accounted at harvest (`Infrastructure::harvest_io`).
        // Parity computation for the *next* tetris thus overlaps this
        // one's media time, which is the point of the aio engine.
        if !io.segments.is_empty() {
            if let Some(aio) = self.io.aio() {
                return match aio.submit(io) {
                    Ok(_ticket) => {
                        self.stats.io_submitted();
                        Ok(IoResult {
                            service_ns: 0,
                            parity_reads: 0,
                            blocks_written: blocks as u64,
                        })
                    }
                    Err(e) => {
                        // ordering: statistics counter; staleness is acceptable.
                        self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
                        Err(e)
                    }
                };
            }
        }
        let result = self.io.submit_write(&io);
        if result.is_err() {
            // ordering: statistics counter; staleness is acceptable.
            self.stats.io_errors.fetch_add(1, Ordering::Relaxed);
        }
        result
    }
}

impl std::fmt::Debug for Tetris {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tetris")
            .field("rg", &self.rg)
            .field("outstanding", &self.outstanding())
            .field("submitted", &self.is_submitted())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wafl_blockdev::{DriveKind, GeometryBuilder, Vbn};

    fn io() -> Arc<IoEngine> {
        Arc::new(IoEngine::new(
            Arc::new(
                GeometryBuilder::new()
                    .aa_stripes(32)
                    .raid_group(3, 1, 256)
                    .build(),
            ),
            DriveKind::Ssd,
        ))
    }

    #[test]
    fn submits_exactly_when_last_bucket_completes() {
        let engine = io();
        let stats = Arc::new(AllocStats::default());
        let t = Tetris::new(RaidGroupId(0), 3, Arc::clone(&engine), Arc::clone(&stats));
        assert!(t.deposit_and_complete(0, vec![(0, 10), (1, 11)]).is_none());
        assert!(t.deposit_and_complete(1, vec![(0, 20), (1, 21)]).is_none());
        assert!(!t.is_submitted());
        let r = t
            .deposit_and_complete(2, vec![(0, 30), (1, 31)])
            .unwrap()
            .unwrap();
        assert!(t.is_submitted());
        assert_eq!(r.blocks_written, 6);
        assert_eq!(r.parity_reads, 0, "aligned tetris is all full stripes");
        assert_eq!(engine.full_stripe_ratio(), Some(1.0));
        // ordering: test readback.
        assert_eq!(stats.tetris_ios.load(Ordering::Relaxed), 1);
        assert_eq!(engine.read_vbn(Vbn(0)).unwrap(), 10);
        assert_eq!(engine.read_vbn(Vbn(256)).unwrap(), 20); // drive 1 base
        engine.scrub().unwrap();
    }

    #[test]
    fn empty_deposits_still_count_down() {
        let engine = io();
        let stats = Arc::new(AllocStats::default());
        let t = Tetris::new(RaidGroupId(0), 2, engine, stats);
        assert!(t.deposit_and_complete(0, vec![(5, 99)]).is_none());
        let r = t.deposit_and_complete(1, Vec::new()).unwrap().unwrap();
        assert_eq!(r.blocks_written, 1);
        assert!(r.parity_reads > 0, "ragged tail pays parity reads");
    }

    #[test]
    fn noncontiguous_writes_become_multiple_segments() {
        let engine = io();
        let stats = Arc::new(AllocStats::default());
        let t = Tetris::new(RaidGroupId(0), 1, Arc::clone(&engine), stats);
        let r = t
            .deposit_and_complete(0, vec![(0, 1), (1, 2), (7, 3)])
            .unwrap()
            .unwrap();
        assert_eq!(r.blocks_written, 3);
        // 2 drive writes: run [0,2) and run [7,8).
        let d0 = &engine.raid_group(RaidGroupId(0)).data_drives()[0];
        assert_eq!(d0.stats().writes, 2);
    }

    #[test]
    fn concurrent_completion_submits_once() {
        let engine = io();
        let stats = Arc::new(AllocStats::default());
        let t = Tetris::new(RaidGroupId(0), 8, engine, Arc::clone(&stats));
        let mut handles = Vec::new();
        for d in 0..8u32 {
            let t = Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                t.deposit_and_complete(d % 3, vec![(d as u64 * 2, d as u128 + 1)])
                    .is_some()
            }));
        }
        let submitters: usize = handles
            .into_iter()
            .map(|h| h.join().unwrap() as usize)
            .sum();
        assert_eq!(submitters, 1, "exactly one completer submits");
        // ordering: test readback.
        assert_eq!(stats.tetris_ios.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn unrecoverable_submission_is_reported_and_counted() {
        let engine = io();
        // Two data drives offline in a single-parity group: the write
        // cannot be completed or reconstructed.
        let rg = engine.raid_group(RaidGroupId(0));
        rg.data_drives()[0].take_offline();
        rg.data_drives()[1].take_offline();
        let stats = Arc::new(AllocStats::default());
        let t = Tetris::new(RaidGroupId(0), 1, engine, Arc::clone(&stats));
        let r = t.deposit_and_complete(0, vec![(0, 7)]).unwrap();
        assert!(r.is_err(), "double drive failure must surface as an error");
        // ordering: test readback.
        assert_eq!(stats.io_errors.load(Ordering::Relaxed), 1);
        assert!(t.is_submitted());
    }

    #[test]
    #[should_panic(expected = "more buckets than outstanding")]
    fn over_completion_panics() {
        let engine = io();
        let stats = Arc::new(AllocStats::default());
        let t = Tetris::new(RaidGroupId(0), 1, engine, stats);
        t.deposit_and_complete(0, Vec::new());
        t.deposit_and_complete(0, Vec::new());
    }
}
