//! Property tests: the exclusion relation and scheduler safety under
//! random topologies and schedules (DESIGN.md §8.4).

use proptest::prelude::*;
use std::sync::Arc;
use waffinity::{AffinityId, ExclusionState, Model, Scheduler, Topology};

fn topologies() -> impl Strategy<Value = Arc<Topology>> {
    (1u32..3, 1u32..4, 1u32..6, 1u32..5).prop_map(|(aggrs, vols, stripes, ranges)| {
        Arc::new(Topology::symmetric(
            Model::Hierarchical,
            aggrs,
            vols,
            stripes,
            ranges,
        ))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn conflict_relation_is_reflexive_and_symmetric(
        topo in topologies(),
        probes in prop::collection::vec((0u32..1000, 0u32..1000), 1..100),
    ) {
        let n = topo.len() as u32;
        for (a, b) in probes {
            let (a, b) = (AffinityId(a % n), AffinityId(b % n));
            prop_assert!(topo.conflicts(a, a), "reflexive");
            prop_assert_eq!(topo.conflicts(a, b), topo.conflicts(b, a), "symmetric");
        }
    }

    #[test]
    fn conflict_iff_ancestor_chain(
        topo in topologies(),
        probes in prop::collection::vec((0u32..1000, 0u32..1000), 1..60),
    ) {
        let n = topo.len() as u32;
        for (a, b) in probes {
            let (a, b) = (AffinityId(a % n), AffinityId(b % n));
            let chain = topo.ancestors_inclusive(a).any(|x| x == b)
                || topo.ancestors_inclusive(b).any(|x| x == a);
            prop_assert_eq!(topo.conflicts(a, b), chain);
        }
    }

    #[test]
    fn scheduler_never_runs_conflicting_messages(
        topo in topologies(),
        script in prop::collection::vec((0u32..1000, prop::bool::ANY), 1..300,),
    ) {
        let n = topo.len() as u32;
        let mut sched: Scheduler<u32> =
            Scheduler::new(ExclusionState::new(Arc::clone(&topo)));
        let mut running: Vec<AffinityId> = Vec::new();
        let mut msg = 0u32;
        for (pick, complete) in script {
            if complete && !running.is_empty() {
                let idx = pick as usize % running.len();
                let id = running.swap_remove(idx);
                sched.complete(id);
            } else {
                sched.enqueue(AffinityId(pick % n), msg);
                msg += 1;
            }
            // Drain everything runnable right now.
            while let Some((id, _)) = sched.pop_runnable() {
                // The new message must not conflict with anything running.
                for &r in &running {
                    prop_assert!(
                        !topo.conflicts(id, r),
                        "scheduler ran conflicting affinities {:?} and {:?}",
                        topo.name(id),
                        topo.name(r)
                    );
                }
                running.push(id);
            }
            sched.state().verify().unwrap();
        }
        // Drain to idle.
        for id in running.drain(..) {
            sched.complete(id);
        }
        while let Some((id, _)) = sched.pop_runnable() {
            sched.complete(id);
        }
        prop_assert!(sched.is_idle());
    }

    #[test]
    fn every_enqueued_message_eventually_runs(
        topo in topologies(),
        targets in prop::collection::vec(0u32..1000, 1..120),
    ) {
        let n = topo.len() as u32;
        let mut sched: Scheduler<usize> =
            Scheduler::new(ExclusionState::new(Arc::clone(&topo)));
        for (i, t) in targets.iter().enumerate() {
            sched.enqueue(AffinityId(t % n), i);
        }
        let mut seen = vec![false; targets.len()];
        // Pop-complete loop: no message may starve.
        let mut guard = 0;
        while !sched.is_idle() {
            guard += 1;
            prop_assert!(guard < 100_000, "livelock");
            if let Some((id, m)) = sched.pop_runnable() {
                prop_assert!(!seen[m], "message ran twice");
                seen[m] = true;
                sched.complete(id);
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every message ran exactly once");
        prop_assert_eq!(sched.executed(), targets.len() as u64);
    }

    #[test]
    fn classical_target_mapping_is_safe(
        stripes in 1u32..16,
        file in 0u64..1000,
        region in 0u64..1000,
    ) {
        let t = Topology::symmetric(Model::Classical, 1, 1, stripes, 1);
        let a = t.stripe_for(0, file, region);
        // Stripe targets stay; the id resolves without panicking.
        let mapped = t.classical_target(a);
        prop_assert_eq!(a, mapped);
        t.id(mapped);
    }
}
