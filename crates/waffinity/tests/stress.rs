//! Pool stress tests: message storms across the hierarchy with live
//! conflict detection, ordering checks, and lifecycle edges.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicI32, AtomicU64, Ordering};
use std::sync::Arc;
use waffinity::{Affinity, Model, Topology, WaffinityPool};

fn topo() -> Arc<Topology> {
    Arc::new(Topology::symmetric(Model::Hierarchical, 2, 2, 4, 4))
}

/// Per-affinity-subtree entry counters; any Serial message observing a
/// nonzero sum is a scheduler violation.
struct Detector {
    counts: Vec<AtomicI32>,
    violations: AtomicU64,
}

impl Detector {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(Self {
            counts: (0..n).map(|_| AtomicI32::new(0)).collect(),
            violations: AtomicU64::new(0),
        })
    }
}

#[test]
fn storm_of_mixed_affinities_never_violates_exclusion() {
    let topo = topo();
    let pool = WaffinityPool::new(Arc::clone(&topo), 4);
    let det = Detector::new(topo.len());

    // A message in affinity X bumps X's counter; a message in an ancestor
    // asserts every descendant counter in its subtree is zero.
    let all: Vec<Affinity> = vec![
        Affinity::Serial,
        Affinity::Aggregate(0),
        Affinity::Aggregate(1),
        Affinity::Volume(0),
        Affinity::Volume(3),
        Affinity::VolumeLogical(1),
        Affinity::Stripe(0, 0),
        Affinity::Stripe(0, 3),
        Affinity::Stripe(2, 1),
        Affinity::VolumeVbn(2),
        Affinity::VolVbnRange(1, 2),
        Affinity::AggrVbn(0),
        Affinity::AggrVbnRange(0, 1),
        Affinity::AggrVbnRange(1, 3),
    ];
    for round in 0..200usize {
        let a = all[round % all.len()];
        let id = topo.id(a);
        let det = Arc::clone(&det);
        let topo2 = Arc::clone(&topo);
        pool.send(a, move || {
            let me = id.0 as usize;
            // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
            det.counts[me].fetch_add(1, Ordering::SeqCst);
            // Check: no other running affinity may be my ancestor or
            // descendant. We verify the descendant direction (ancestors
            // hold the same invariant symmetrically from their side).
            for other in 0..det.counts.len() {
                if other == me {
                    continue;
                }
                // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                if det.counts[other].load(Ordering::SeqCst) > 0 {
                    let o = waffinity::AffinityId(other as u32);
                    if topo2.conflicts(id, o) {
                        // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                        det.violations.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            std::thread::yield_now();
            // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
            det.counts[me].fetch_sub(1, Ordering::SeqCst);
        });
    }
    pool.wait_idle();
    // ordering: test readback.
    assert_eq!(det.violations.load(Ordering::SeqCst), 0);
    assert_eq!(pool.total_messages(), 200);
}

#[test]
fn messages_sent_from_inside_messages_complete() {
    // Infra messages enqueue follow-up messages (commit → refill); the
    // pool must handle re-entrant sends.
    let topo = topo();
    let pool = Arc::new(WaffinityPool::new(Arc::clone(&topo), 3));
    let hits = Arc::new(AtomicU64::new(0));
    for i in 0..20u32 {
        let pool2 = Arc::clone(&pool);
        let hits2 = Arc::clone(&hits);
        pool.send(Affinity::AggrVbnRange(0, i % 4), move || {
            // ordering: statistics counter; staleness is acceptable.
            hits2.fetch_add(1, Ordering::Relaxed);
            let hits3 = Arc::clone(&hits2);
            pool2.send(Affinity::AggrVbnRange(1, i % 4), move || {
                // ordering: statistics counter; staleness is acceptable.
                hits3.fetch_add(1, Ordering::Relaxed);
            });
        });
    }
    // Wait for both generations.
    loop {
        pool.wait_idle();
        // ordering: statistics counter; staleness is acceptable.
        if hits.load(Ordering::Relaxed) >= 40 {
            break;
        }
    }
    // ordering: test readback.
    assert_eq!(hits.load(Ordering::Relaxed), 40);
}

#[test]
fn serial_message_sees_quiesced_system_under_storm() {
    let topo = topo();
    let pool = WaffinityPool::new(Arc::clone(&topo), 4);
    let in_flight = Arc::new(AtomicI32::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    for round in 0..300usize {
        if round % 30 == 29 {
            let f = Arc::clone(&in_flight);
            let v = Arc::clone(&violations);
            pool.send(Affinity::Serial, move || {
                // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                if f.load(Ordering::SeqCst) != 0 {
                    // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                    v.fetch_add(1, Ordering::SeqCst);
                }
            });
        } else {
            let f = Arc::clone(&in_flight);
            let vol = (round % 4) as u32;
            let stripe = (round % 4) as u32;
            pool.send(Affinity::Stripe(vol, stripe), move || {
                // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                f.fetch_add(1, Ordering::SeqCst);
                std::thread::yield_now();
                // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                f.fetch_sub(1, Ordering::SeqCst);
            });
        }
    }
    pool.wait_idle();
    // ordering: test readback.
    assert_eq!(violations.load(Ordering::SeqCst), 0);
}

#[test]
fn per_affinity_fifo_holds_under_concurrency() {
    let topo = topo();
    let pool = WaffinityPool::new(Arc::clone(&topo), 4);
    let logs: Vec<Arc<Mutex<Vec<u32>>>> =
        (0..3).map(|_| Arc::new(Mutex::new(Vec::new()))).collect();
    for i in 0..120u32 {
        let lane = (i % 3) as usize;
        let log = Arc::clone(&logs[lane]);
        pool.send(Affinity::VolVbnRange(lane as u32, 0), move || {
            log.lock().push(i);
        });
    }
    pool.wait_idle();
    for (lane, log) in logs.iter().enumerate() {
        let got = log.lock().clone();
        let expect: Vec<u32> = (0..120).filter(|i| (i % 3) as usize == lane).collect();
        assert_eq!(got, expect, "lane {lane} preserved FIFO");
    }
}

#[test]
fn single_thread_pool_is_equivalent_to_serial_execution() {
    let topo = topo();
    let pool = WaffinityPool::new(Arc::clone(&topo), 1);
    let log = Arc::new(Mutex::new(Vec::new()));
    for i in 0..50u32 {
        let log = Arc::clone(&log);
        // Alternate conflicting affinities: one worker must still make
        // progress through all of them.
        let a = if i % 2 == 0 {
            Affinity::Serial
        } else {
            Affinity::Stripe(0, 0)
        };
        pool.send(a, move || log.lock().push(i));
    }
    pool.wait_idle();
    assert_eq!(log.lock().len(), 50);
}

#[test]
fn drop_without_explicit_shutdown_drains() {
    let topo = topo();
    let hits = Arc::new(AtomicU64::new(0));
    {
        let pool = WaffinityPool::new(Arc::clone(&topo), 2);
        for _ in 0..25 {
            let hits = Arc::clone(&hits);
            pool.send(Affinity::Volume(1), move || {
                // ordering: statistics counter; staleness is acceptable.
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Drop runs shutdown, which drains queued messages.
    }
    // ordering: test readback.
    assert_eq!(hits.load(Ordering::Relaxed), 25);
}
