//! [`WaffinityPool`] — a real-thread Waffinity executor.
//!
//! Worker threads pull runnable messages from a shared [`Scheduler`]; the
//! affinity exclusion rules are enforced by construction because a message
//! is only popped when [`ExclusionState::can_run`] holds and the affinity
//! stays marked running until the closure returns.
//!
//! This backend exists for two reasons:
//!
//! 1. the White Alligator *infrastructure* runs "as messages in Waffinity"
//!    (§IV of the paper), so the allocator crate drives its metafile work
//!    through this pool in the real-thread configuration;
//! 2. the MP-safety test suite needs genuine concurrency: tests assert
//!    that no two conflicting messages ever overlap (instrumented with a
//!    conflict detector) while disjoint ones do.
//!
//! [`ExclusionState::can_run`]: crate::state::ExclusionState::can_run

use crate::hierarchy::{Affinity, AffinityId, Topology};
use crate::sched::Scheduler;
use crate::state::ExclusionState;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Inner {
    sched: Mutex<Scheduler<Job>>, // lock-rank: waffinity.sched 30
    /// Signaled when work arrives or completes (a completion can unblock
    /// any number of excluded affinities, so notify_all).
    work: Condvar,
    /// Signaled when the scheduler drains to idle.
    idle: Condvar,
    shutdown: AtomicBool,
    topo: Arc<Topology>,
    /// Per-affinity message counts (reporting; relaxed).
    msg_counts: Vec<AtomicU64>,
    /// Per-affinity busy nanoseconds (wall clock; reporting only).
    busy_ns: Vec<AtomicU64>,
}

/// A fixed-size pool of Waffinity worker threads.
///
/// Dropping the pool shuts it down after draining queued messages.
///
/// ```
/// use std::sync::Arc;
/// use waffinity::{Affinity, Model, Topology, WaffinityPool};
///
/// let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 2, 4, 4));
/// let pool = WaffinityPool::new(topo, 2);
/// // Messages in disjoint affinities run in parallel; conflicting ones
/// // are serialized by the scheduler.
/// pool.send(Affinity::Stripe(0, 0), || { /* client op */ });
/// pool.send(Affinity::AggrVbnRange(0, 1), || { /* bucket refill */ });
/// let answer = pool.call(Affinity::VolumeVbn(1), || 6 * 7);
/// assert_eq!(answer, 42);
/// pool.wait_idle();
/// assert_eq!(pool.total_messages(), 3);
/// ```
pub struct WaffinityPool {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl WaffinityPool {
    /// Spawn `threads` workers over a topology.
    pub fn new(topo: Arc<Topology>, threads: usize) -> Self {
        assert!(threads > 0, "pool needs at least one thread");
        let n = topo.len();
        let inner = Arc::new(Inner {
            sched: Mutex::new(Scheduler::new(ExclusionState::new(Arc::clone(&topo)))),
            work: Condvar::new(),
            idle: Condvar::new(),
            shutdown: AtomicBool::new(false),
            topo,
            msg_counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            busy_ns: (0..n).map(|_| AtomicU64::new(0)).collect(),
        });
        let workers = (0..threads)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("waffinity-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn waffinity worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// The pool's topology.
    #[inline]
    pub fn topology(&self) -> &Arc<Topology> {
        &self.inner.topo
    }

    /// Number of worker threads.
    #[inline]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Fire-and-forget: enqueue `f` to run in affinity `a`.
    pub fn send(&self, a: Affinity, f: impl FnOnce() + Send + 'static) {
        let id = self.inner.topo.id(a);
        self.send_id(id, Box::new(f));
    }

    fn send_id(&self, id: AffinityId, job: Job) {
        assert!(
            // ordering: Acquire — pairs with the Release shutdown store;
            // pairs-with: waffinity.shutdown.
            !self.inner.shutdown.load(Ordering::Acquire),
            "send() on a shut-down pool"
        );
        {
            let mut s = self.inner.sched.lock();
            s.enqueue(id, job);
        }
        self.inner.work.notify_all();
    }

    /// Run `f` in affinity `a` and wait for its result.
    ///
    /// Must not be called from inside a pool worker: the calling message
    /// would hold its affinity while blocking, which can deadlock against
    /// the exclusion rules (e.g., calling into an ancestor affinity).
    pub fn call<R: Send + 'static>(
        &self,
        a: Affinity,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> R {
        let (tx, rx) = crossbeam::channel::bounded(1);
        self.send(a, move || {
            let _ = tx.send(f());
        });
        rx.recv().expect("waffinity call target panicked")
    }

    /// Block until every queued and running message has finished.
    pub fn wait_idle(&self) {
        let mut s = self.inner.sched.lock();
        while !s.is_idle() {
            self.inner.idle.wait(&mut s);
        }
    }

    /// Messages executed in affinity `a` so far.
    pub fn messages_in(&self, a: Affinity) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.inner.msg_counts[self.inner.topo.id(a).0 as usize].load(Ordering::Relaxed)
    }

    /// Total messages executed.
    pub fn total_messages(&self) -> u64 {
        self.inner
            .msg_counts
            .iter()
            // ordering: statistics counter; staleness is acceptable.
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Wall-clock busy time accumulated in affinity `a` (reporting only).
    pub fn busy_ns_in(&self, a: Affinity) -> u64 {
        // ordering: statistics counter; staleness is acceptable.
        self.inner.busy_ns[self.inner.topo.id(a).0 as usize].load(Ordering::Relaxed)
    }

    /// Drain queued work and stop the workers.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        // ordering: Release — all work queued before shutdown is visible to
        // the draining workers; pairs-with: waffinity.shutdown.
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for WaffinityPool {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_impl();
        }
    }
}

impl std::fmt::Debug for WaffinityPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WaffinityPool")
            .field("threads", &self.workers.len())
            .field("affinities", &self.inner.topo.len())
            .finish()
    }
}

fn worker_loop(inner: &Inner) {
    let mut sched = inner.sched.lock();
    loop {
        if let Some((id, job)) = sched.pop_runnable() {
            drop(sched);
            let t0 = std::time::Instant::now();
            job();
            let dt = t0.elapsed().as_nanos() as u64;
            // ordering: statistics counter; staleness is acceptable.
            inner.msg_counts[id.0 as usize].fetch_add(1, Ordering::Relaxed);
            // ordering: statistics counter; staleness is acceptable.
            inner.busy_ns[id.0 as usize].fetch_add(dt, Ordering::Relaxed);
            sched = inner.sched.lock();
            sched.complete(id);
            // A completion may unblock other affinities, and may have
            // drained the scheduler.
            inner.work.notify_all();
            if sched.is_idle() {
                inner.idle.notify_all();
            }
        // ordering: Acquire — pairs with the Release shutdown store;
        // pairs-with: waffinity.shutdown.
        } else if inner.shutdown.load(Ordering::Acquire) && sched.queued() == 0 {
            // Nothing runnable and shutting down. Remaining queued work is
            // zero; running work belongs to other workers.
            return;
        } else {
            inner.work.wait(&mut sched);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Model;
    use std::sync::atomic::AtomicI32;

    fn topo() -> Arc<Topology> {
        Arc::new(Topology::symmetric(Model::Hierarchical, 1, 2, 4, 2))
    }

    #[test]
    fn executes_sent_messages() {
        let pool = WaffinityPool::new(topo(), 4);
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..100u32 {
            let hits = Arc::clone(&hits);
            pool.send(Affinity::Stripe(0, i % 4), move || {
                // ordering: statistics counter; staleness is acceptable.
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait_idle();
        // ordering: test readback.
        assert_eq!(hits.load(Ordering::Relaxed), 100);
        assert_eq!(pool.total_messages(), 100);
    }

    #[test]
    fn call_returns_result() {
        let pool = WaffinityPool::new(topo(), 2);
        let r = pool.call(Affinity::VolumeVbn(1), || 6 * 7);
        assert_eq!(r, 42);
    }

    #[test]
    fn conflicting_messages_never_overlap() {
        // Instrumented conflict detector: each message in Volume(0)'s
        // subtree bumps a counter on entry and drops it on exit; a Serial
        // message asserts the counter is zero for its whole duration.
        let pool = WaffinityPool::new(topo(), 4);
        let in_subtree = Arc::new(AtomicI32::new(0));
        let violations = Arc::new(AtomicU64::new(0));
        for round in 0..30u32 {
            for s in 0..4 {
                let c = Arc::clone(&in_subtree);
                pool.send(Affinity::Stripe(0, s), move || {
                    // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                    c.fetch_add(1, Ordering::SeqCst);
                    std::thread::yield_now();
                    // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                    c.fetch_sub(1, Ordering::SeqCst);
                });
            }
            if round % 5 == 0 {
                let c = Arc::clone(&in_subtree);
                let v = Arc::clone(&violations);
                pool.send(Affinity::Volume(0), move || {
                    // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                    if c.load(Ordering::SeqCst) != 0 {
                        // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                        v.fetch_add(1, Ordering::SeqCst);
                    }
                    std::thread::yield_now();
                    // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                    if c.load(Ordering::SeqCst) != 0 {
                        // ordering: SeqCst — the exclusion detector needs a single total order across its counters.
                        v.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
        }
        pool.wait_idle();
        // ordering: test readback.
        assert_eq!(violations.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn same_affinity_messages_run_in_order() {
        let pool = WaffinityPool::new(topo(), 4);
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..50u32 {
            let log = Arc::clone(&log);
            pool.send(Affinity::VolVbnRange(0, 1), move || {
                log.lock().push(i);
            });
        }
        pool.wait_idle();
        let got = log.lock().clone();
        assert_eq!(got, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let pool = WaffinityPool::new(topo(), 1);
        pool.wait_idle();
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let pool = WaffinityPool::new(topo(), 2);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let hits = Arc::clone(&hits);
            pool.send(Affinity::Stripe(1, 0), move || {
                // ordering: statistics counter; staleness is acceptable.
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        // ordering: test readback.
        assert_eq!(hits.load(Ordering::Relaxed), 20);
    }

    #[test]
    fn per_affinity_stats_accumulate() {
        let pool = WaffinityPool::new(topo(), 2);
        for _ in 0..5 {
            pool.send(Affinity::AggrVbn(0), || {});
        }
        pool.wait_idle();
        assert_eq!(pool.messages_in(Affinity::AggrVbn(0)), 5);
        assert_eq!(pool.messages_in(Affinity::Serial), 0);
    }
}
