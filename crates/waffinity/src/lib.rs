//! # waffinity — the WAFL affinity message scheduler
//!
//! WAFL parallelizes file-system processing with a message scheduler that
//! defines execution contexts called **affinities** (§III of the paper).
//! Two models shipped:
//!
//! * **Classical Waffinity** (Data ONTAP 7.2, 2006): user files are
//!   partitioned into *file stripes* rotated over a set of **Stripe**
//!   affinities; anything else runs in a **Serial** affinity that excludes
//!   all Stripe affinities (§III-B).
//! * **Hierarchical Waffinity** (Data ONTAP 8.1, 2011): a *hierarchy* of
//!   affinities (Figure 1) where "the scheduler enforced execution
//!   exclusivity between a given affinity and its children, so it only
//!   restricted the execution of an affinity's parents and children in the
//!   hierarchy; all other affinities could safely run in parallel"
//!   (§III-D).
//!
//! White Alligator's infrastructure runs *as messages in Waffinity*
//! (§IV-B2): per-aggregate and per-volume allocation bitmaps map to
//! **Aggregate-VBN** and **Volume-VBN** affinities, with **Range**
//! affinities underneath for parallel access to different block ranges of
//! a single metafile.
//!
//! ## Crate structure
//!
//! * [`hierarchy`] — the affinity tree: [`hierarchy::Affinity`] names,
//!   [`hierarchy::Topology`] instance counts, ancestor/conflict queries;
//! * [`state`] — [`state::ExclusionState`], the pure runnable/start/finish
//!   logic, shared verbatim by the real thread pool and by the
//!   discrete-event simulator (which needs to make identical scheduling
//!   decisions under virtual time);
//! * [`sched`] — [`sched::Scheduler`], per-affinity FIFO queues over an
//!   `ExclusionState`;
//! * [`pool`] — [`pool::WaffinityPool`], a real-thread executor: `send`
//!   fire-and-forget messages or `call` for a result, with per-affinity
//!   execution statistics.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod hierarchy;
pub mod pool;
pub mod sched;
pub mod state;

pub use hierarchy::{Affinity, AffinityId, Model, Topology};
pub use pool::WaffinityPool;
pub use sched::Scheduler;
pub use state::ExclusionState;
