//! Pure exclusion-state tracking, shared by the real thread pool and the
//! discrete-event simulator.
//!
//! A message in affinity `A` may start iff:
//!
//! 1. no message is currently running in `A` itself (an affinity is a
//!    serial execution context);
//! 2. no message is running in any *descendant* of `A`;
//! 3. no message is running in any *ancestor* of `A`.
//!
//! [`ExclusionState`] maintains, per affinity, a `running` flag and a
//! `subtree_running` count (running messages in the subtree rooted there,
//! including the node itself). The three conditions then collapse to two
//! O(depth) checks, with no per-pair conflict matrix.

use crate::hierarchy::{AffinityId, Topology};
use std::sync::Arc;

/// Tracks which affinities are executing and answers `can_run` queries.
#[derive(Debug, Clone)]
pub struct ExclusionState {
    topo: Arc<Topology>,
    running: Vec<bool>,
    subtree_running: Vec<u32>,
    active: u32,
}

impl ExclusionState {
    /// Fresh state: nothing running.
    pub fn new(topo: Arc<Topology>) -> Self {
        let n = topo.len();
        Self {
            topo,
            running: vec![false; n],
            subtree_running: vec![0; n],
            active: 0,
        }
    }

    /// The topology this state tracks.
    #[inline]
    pub fn topology(&self) -> &Arc<Topology> {
        &self.topo
    }

    /// Total messages currently executing.
    #[inline]
    pub fn active(&self) -> u32 {
        self.active
    }

    /// Is a message currently executing in `id` itself?
    #[inline]
    pub fn is_running(&self, id: AffinityId) -> bool {
        self.running[id.0 as usize]
    }

    /// May a message in `id` start now?
    pub fn can_run(&self, id: AffinityId) -> bool {
        // Conditions 1+2: nothing running at or below `id`.
        if self.subtree_running[id.0 as usize] != 0 {
            return false;
        }
        // Condition 3: nothing running at any proper ancestor.
        let mut cur = id;
        while let Some(p) = self.topo.parent(cur) {
            if self.running[p.0 as usize] {
                return false;
            }
            cur = p;
        }
        true
    }

    /// Mark a message started in `id`.
    ///
    /// # Panics
    /// Panics (debug) if `can_run(id)` is false — callers must check first.
    pub fn start(&mut self, id: AffinityId) {
        debug_assert!(self.can_run(id), "start() on excluded affinity {id:?}");
        self.running[id.0 as usize] = true;
        for a in self.topo.ancestors_inclusive(id).collect::<Vec<_>>() {
            self.subtree_running[a.0 as usize] += 1;
        }
        self.active += 1;
    }

    /// Mark the message in `id` finished.
    ///
    /// # Panics
    /// Panics if nothing is running in `id`.
    pub fn finish(&mut self, id: AffinityId) {
        assert!(
            self.running[id.0 as usize],
            "finish() on idle affinity {id:?}"
        );
        self.running[id.0 as usize] = false;
        for a in self.topo.ancestors_inclusive(id).collect::<Vec<_>>() {
            let c = &mut self.subtree_running[a.0 as usize];
            debug_assert!(*c > 0);
            *c -= 1;
        }
        self.active -= 1;
    }

    /// Exhaustive invariant check (test helper): no two running affinities
    /// conflict, and the subtree counters are exact.
    pub fn verify(&self) -> Result<(), String> {
        let n = self.topo.len();
        let running: Vec<AffinityId> = (0..n as u32)
            .map(AffinityId)
            .filter(|&i| self.running[i.0 as usize])
            .collect();
        for (i, &a) in running.iter().enumerate() {
            for &b in &running[i + 1..] {
                if self.topo.conflicts(a, b) {
                    return Err(format!(
                        "conflicting affinities running: {:?} and {:?}",
                        self.topo.name(a),
                        self.topo.name(b)
                    ));
                }
            }
        }
        for id in 0..n as u32 {
            let id = AffinityId(id);
            let expect = running
                .iter()
                .filter(|&&r| self.topo.is_ancestor_or_self(id, r))
                .count() as u32;
            if self.subtree_running[id.0 as usize] != expect {
                return Err(format!(
                    "subtree counter drift at {:?}: have {}, expect {expect}",
                    self.topo.name(id),
                    self.subtree_running[id.0 as usize]
                ));
            }
        }
        if self.active as usize != running.len() {
            return Err("active counter drift".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{Affinity, Model};

    fn state() -> ExclusionState {
        ExclusionState::new(Arc::new(Topology::symmetric(
            Model::Hierarchical,
            2,
            2,
            4,
            3,
        )))
    }

    #[test]
    fn start_blocks_ancestors_and_descendants_only() {
        let mut s = state();
        let t = Arc::clone(s.topology());
        let vl0 = t.id(Affinity::VolumeLogical(0));
        s.start(vl0);
        assert!(!s.can_run(t.id(Affinity::Stripe(0, 1))));
        assert!(!s.can_run(t.id(Affinity::Volume(0))));
        assert!(!s.can_run(t.id(Affinity::Aggregate(0))));
        assert!(!s.can_run(t.id(Affinity::Serial)));
        assert!(s.can_run(t.id(Affinity::VolumeVbn(0))));
        assert!(s.can_run(t.id(Affinity::VolumeLogical(1))));
        assert!(s.can_run(t.id(Affinity::AggrVbnRange(0, 0))));
        s.verify().unwrap();
    }

    #[test]
    fn affinity_serializes_its_own_messages() {
        let mut s = state();
        let t = Arc::clone(s.topology());
        let r = t.id(Affinity::VolVbnRange(1, 2));
        s.start(r);
        assert!(!s.can_run(r), "same affinity must serialize");
        s.finish(r);
        assert!(s.can_run(r));
    }

    #[test]
    fn serial_runs_only_alone() {
        let mut s = state();
        let t = Arc::clone(s.topology());
        let serial = t.id(Affinity::Serial);
        assert!(s.can_run(serial));
        s.start(t.id(Affinity::Stripe(3, 0)));
        assert!(!s.can_run(serial));
        s.finish(t.id(Affinity::Stripe(3, 0)));
        s.start(serial);
        for i in 1..t.len() as u32 {
            assert!(!s.can_run(AffinityId(i)), "Serial excludes everything");
        }
        s.verify().unwrap();
    }

    #[test]
    fn siblings_run_concurrently() {
        let mut s = state();
        let t = Arc::clone(s.topology());
        for i in 0..4 {
            let a = t.id(Affinity::Stripe(0, i));
            assert!(s.can_run(a));
            s.start(a);
        }
        assert_eq!(s.active(), 4);
        s.verify().unwrap();
    }

    #[test]
    fn finish_restores_runnability() {
        let mut s = state();
        let t = Arc::clone(s.topology());
        let vol = t.id(Affinity::Volume(1));
        let stripe = t.id(Affinity::Stripe(1, 0));
        s.start(vol);
        assert!(!s.can_run(stripe));
        s.finish(vol);
        assert!(s.can_run(stripe));
        s.verify().unwrap();
    }

    #[test]
    #[should_panic(expected = "finish() on idle affinity")]
    fn finish_idle_panics() {
        let mut s = state();
        let t = Arc::clone(s.topology());
        s.finish(t.id(Affinity::Serial));
    }

    #[test]
    fn randomized_start_finish_keeps_invariants() {
        // Pseudo-random torture: repeatedly start a runnable affinity or
        // finish a running one; verify() after every transition.
        let mut s = state();
        let t = Arc::clone(s.topology());
        let n = t.len() as u32;
        let mut running: Vec<AffinityId> = Vec::new();
        let mut seed = 0xdecafbad_u64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..2000 {
            let pick = rng();
            if pick % 2 == 0 || running.is_empty() {
                let id = AffinityId((rng() % n as u64) as u32);
                if s.can_run(id) {
                    s.start(id);
                    running.push(id);
                }
            } else {
                let idx = (rng() % running.len() as u64) as usize;
                let id = running.swap_remove(idx);
                s.finish(id);
            }
            s.verify().unwrap();
        }
    }
}
