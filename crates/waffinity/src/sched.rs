//! [`Scheduler`] — per-affinity FIFO message queues over an
//! [`ExclusionState`].
//!
//! This is the pure scheduling core: it owns no threads and makes no
//! timing decisions. The real-thread [`pool`](crate::pool) locks one of
//! these behind a mutex; the discrete-event simulator embeds one directly
//! and advances it under virtual time. Both therefore make *identical*
//! scheduling decisions, which is what lets the simulator stand in for the
//! missing 20-core testbed.

use crate::hierarchy::AffinityId;
use crate::state::ExclusionState;
use std::collections::VecDeque;

/// Per-affinity FIFO queues plus exclusion tracking.
#[derive(Debug)]
pub struct Scheduler<M> {
    state: ExclusionState,
    queues: Vec<VecDeque<M>>,
    queued: usize,
    /// Rotating scan start, for fairness across affinities.
    cursor: u32,
    executed: u64,
}

impl<M> Scheduler<M> {
    /// New scheduler over a topology's exclusion state.
    pub fn new(state: ExclusionState) -> Self {
        let n = state.topology().len();
        Self {
            state,
            queues: (0..n).map(|_| VecDeque::new()).collect(),
            queued: 0,
            cursor: 0,
            executed: 0,
        }
    }

    /// The exclusion state (e.g., for `active()` introspection).
    #[inline]
    pub fn state(&self) -> &ExclusionState {
        &self.state
    }

    /// Messages waiting in queues (not yet started).
    #[inline]
    pub fn queued(&self) -> usize {
        self.queued
    }

    /// Messages started over the scheduler's lifetime.
    #[inline]
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// True when no message is queued or running.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.queued == 0 && self.state.active() == 0
    }

    /// Enqueue a message for an affinity.
    pub fn enqueue(&mut self, id: AffinityId, msg: M) {
        self.queues[id.0 as usize].push_back(msg);
        self.queued += 1;
    }

    /// Pop one runnable message, marking its affinity started. Returns
    /// `None` if every queued message is currently excluded (or nothing is
    /// queued). The caller must call [`complete`](Self::complete) when the
    /// message finishes.
    pub fn pop_runnable(&mut self) -> Option<(AffinityId, M)> {
        if self.queued == 0 {
            return None;
        }
        let n = self.queues.len() as u32;
        for off in 0..n {
            let idx = (self.cursor + off) % n;
            let id = AffinityId(idx);
            if !self.queues[idx as usize].is_empty() && self.state.can_run(id) {
                let msg = self.queues[idx as usize].pop_front().unwrap();
                self.state.start(id);
                self.queued -= 1;
                self.executed += 1;
                self.cursor = (idx + 1) % n;
                return Some((id, msg));
            }
        }
        None
    }

    /// Would `pop_runnable` yield anything right now?
    pub fn has_runnable(&self) -> bool {
        if self.queued == 0 {
            return false;
        }
        (0..self.queues.len() as u32)
            .any(|i| !self.queues[i as usize].is_empty() && self.state.can_run(AffinityId(i)))
    }

    /// Mark a previously popped message finished, unblocking excluded
    /// affinities.
    pub fn complete(&mut self, id: AffinityId) {
        self.state.finish(id);
    }

    /// Number of messages queued for one affinity.
    pub fn queue_len(&self, id: AffinityId) -> usize {
        self.queues[id.0 as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{Affinity, Model, Topology};
    use std::sync::Arc;

    fn sched() -> Scheduler<u32> {
        let topo = Arc::new(Topology::symmetric(Model::Hierarchical, 1, 2, 4, 2));
        Scheduler::new(ExclusionState::new(topo))
    }

    #[test]
    fn fifo_within_one_affinity() {
        let mut s = sched();
        let t = Arc::clone(s.state().topology());
        let a = t.id(Affinity::Stripe(0, 0));
        s.enqueue(a, 1);
        s.enqueue(a, 2);
        let (id, m) = s.pop_runnable().unwrap();
        assert_eq!((id, m), (a, 1));
        assert!(s.pop_runnable().is_none(), "same affinity serializes");
        s.complete(a);
        assert_eq!(s.pop_runnable().unwrap().1, 2);
    }

    #[test]
    fn disjoint_affinities_pop_concurrently() {
        let mut s = sched();
        let t = Arc::clone(s.state().topology());
        s.enqueue(t.id(Affinity::Stripe(0, 0)), 1);
        s.enqueue(t.id(Affinity::Stripe(0, 1)), 2);
        s.enqueue(t.id(Affinity::VolumeVbn(0)), 3);
        s.enqueue(t.id(Affinity::Volume(1)), 4);
        let mut popped = Vec::new();
        while let Some((_, m)) = s.pop_runnable() {
            popped.push(m);
        }
        popped.sort_unstable();
        assert_eq!(popped, vec![1, 2, 3, 4]);
        assert_eq!(s.state().active(), 4);
    }

    #[test]
    fn excluded_message_waits_for_completion() {
        let mut s = sched();
        let t = Arc::clone(s.state().topology());
        let vl = t.id(Affinity::VolumeLogical(0));
        let stripe = t.id(Affinity::Stripe(0, 3));
        s.enqueue(vl, 1);
        let _ = s.pop_runnable().unwrap();
        s.enqueue(stripe, 2);
        assert!(!s.has_runnable());
        assert!(s.pop_runnable().is_none());
        s.complete(vl);
        assert_eq!(s.pop_runnable().unwrap(), (stripe, 2));
    }

    #[test]
    fn serial_message_drains_the_system_first() {
        let mut s = sched();
        let t = Arc::clone(s.state().topology());
        let stripe = t.id(Affinity::Stripe(1, 0));
        let serial = t.id(Affinity::Serial);
        s.enqueue(stripe, 1);
        let _ = s.pop_runnable().unwrap();
        s.enqueue(serial, 2);
        assert!(s.pop_runnable().is_none(), "Serial waits for the stripe");
        s.complete(stripe);
        assert_eq!(s.pop_runnable().unwrap(), (serial, 2));
        // While Serial runs, nothing else does.
        s.enqueue(stripe, 3);
        assert!(s.pop_runnable().is_none());
        s.complete(serial);
        assert_eq!(s.pop_runnable().unwrap(), (stripe, 3));
    }

    #[test]
    fn idle_and_counters() {
        let mut s = sched();
        let t = Arc::clone(s.state().topology());
        assert!(s.is_idle());
        let a = t.id(Affinity::VolVbnRange(0, 1));
        s.enqueue(a, 7);
        assert!(!s.is_idle());
        assert_eq!(s.queued(), 1);
        assert_eq!(s.queue_len(a), 1);
        let _ = s.pop_runnable().unwrap();
        assert!(!s.is_idle(), "running counts as non-idle");
        s.complete(a);
        assert!(s.is_idle());
        assert_eq!(s.executed(), 1);
    }

    #[test]
    fn rotating_cursor_gives_rough_fairness() {
        let mut s = sched();
        let t = Arc::clone(s.state().topology());
        let a = t.id(Affinity::Stripe(0, 0));
        let b = t.id(Affinity::Stripe(0, 1));
        for i in 0..10 {
            s.enqueue(a, i);
            s.enqueue(b, 100 + i);
        }
        // Pop-complete one at a time: both queues should drain together,
        // not a-then-b.
        let mut first_ten = Vec::new();
        for _ in 0..10 {
            let (id, m) = s.pop_runnable().unwrap();
            s.complete(id);
            first_ten.push(m);
        }
        assert!(
            first_ten.iter().any(|&m| m >= 100) && first_ten.iter().any(|&m| m < 100),
            "both affinities make progress: {first_ten:?}"
        );
    }
}
