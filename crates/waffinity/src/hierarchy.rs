//! The affinity hierarchy of Figure 1.
//!
//! ```text
//!                         Serial
//!                           │
//!                       Aggregate(a)          (one per aggregate)
//!                      ┌────┴─────────┐
//!                  Volume(v)      Aggregate-VBN(a)
//!                 ┌────┴──────┐        │
//!        Volume-Logical(v) Volume-VBN(v)  Range(a,r)   (Aggr-VBN ranges)
//!               │               │
//!          Stripe(v,s)      Range(v,r)    (Vol-VBN ranges)
//! ```
//!
//! Exclusion rule (§III-D): a running affinity excludes exactly its
//! ancestors and descendants. "For example, if the Volume Logical affinity
//! was running, then its Stripe affinities were excluded along with its
//! parent Volume, Aggregate, and Serial affinities. Other affinities, such
//! as Volume VBN, were allowed to run."
//!
//! [`Topology`] fixes the instance counts (aggregates, volumes per
//! aggregate, stripes per volume, ranges per volume/aggregate) and assigns
//! every affinity a dense [`AffinityId`] so schedulers can use flat arrays.

use serde::{Deserialize, Serialize};

/// Which Waffinity generation to model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Model {
    /// Classical Waffinity (§III-B): only `Serial` and `Stripe` affinities
    /// are legal message targets; everything non-stripe serializes.
    Classical,
    /// Hierarchical Waffinity (§III-D): the full Figure 1 tree.
    Hierarchical,
}

/// A symbolic affinity name. Instance indices are global (volume indices
/// run across the whole system; the topology maps volumes to aggregates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Affinity {
    /// Excludes everything; the root of the hierarchy.
    Serial,
    /// Everything within one aggregate.
    Aggregate(u32),
    /// Aggregate allocation metafiles (indexed by VBN), under `Aggregate`.
    AggrVbn(u32),
    /// One block range of the aggregate allocation metafiles.
    AggrVbnRange(u32, u32),
    /// Everything within one FlexVol volume, under its `Aggregate`.
    Volume(u32),
    /// Client-facing (logical) side of a volume, under `Volume`.
    VolumeLogical(u32),
    /// One user-file stripe of a volume, under `VolumeLogical`.
    Stripe(u32, u32),
    /// Volume allocation metafiles (indexed by VVBN), under `Volume`.
    VolumeVbn(u32),
    /// One block range of a volume's allocation metafiles.
    VolVbnRange(u32, u32),
}

/// Dense affinity index assigned by a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AffinityId(pub u32);

/// Instance counts and id assignment for one system's affinity tree.
///
/// ```
/// use waffinity::{Affinity, Model, Topology};
///
/// let t = Topology::symmetric(Model::Hierarchical, 1, 2, 4, 4);
/// let vl = t.id(Affinity::VolumeLogical(0));
/// // §III-D's worked example: Volume-Logical excludes its stripes and
/// // ancestors, but Volume-VBN work proceeds in parallel.
/// assert!(t.conflicts(vl, t.id(Affinity::Stripe(0, 2))));
/// assert!(t.conflicts(vl, t.id(Affinity::Serial)));
/// assert!(!t.conflicts(vl, t.id(Affinity::VolumeVbn(0))));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    model: Model,
    aggregates: u32,
    /// `volume_aggr[v]` = the aggregate housing volume `v`.
    volume_aggr: Vec<u32>,
    stripes_per_volume: u32,
    ranges_per_volume: u32,
    ranges_per_aggregate: u32,
    /// Parent of each affinity id (`u32::MAX` for Serial).
    parent: Vec<u32>,
    /// Name of each id, for display and reverse lookup.
    names: Vec<Affinity>,
    /// Depth of each id (Serial = 0).
    depth: Vec<u8>,
}

impl Topology {
    /// Build a topology. `volume_aggr[v]` assigns each volume to an
    /// aggregate.
    ///
    /// # Panics
    /// Panics if a volume references a nonexistent aggregate or any count
    /// is zero where one is required.
    pub fn new(
        model: Model,
        aggregates: u32,
        volume_aggr: Vec<u32>,
        stripes_per_volume: u32,
        ranges_per_volume: u32,
        ranges_per_aggregate: u32,
    ) -> Self {
        assert!(aggregates > 0, "need at least one aggregate");
        assert!(stripes_per_volume > 0, "need at least one stripe affinity");
        assert!(ranges_per_volume > 0 && ranges_per_aggregate > 0);
        for &a in &volume_aggr {
            assert!(a < aggregates, "volume assigned to missing aggregate");
        }
        let mut t = Self {
            model,
            aggregates,
            volume_aggr,
            stripes_per_volume,
            ranges_per_volume,
            ranges_per_aggregate,
            parent: Vec::new(),
            names: Vec::new(),
            depth: Vec::new(),
        };
        t.build_tree();
        t
    }

    /// A small symmetric topology: `aggregates` aggregates with
    /// `vols_per_aggr` volumes each.
    pub fn symmetric(
        model: Model,
        aggregates: u32,
        vols_per_aggr: u32,
        stripes_per_volume: u32,
        ranges: u32,
    ) -> Self {
        let volume_aggr = (0..aggregates)
            .flat_map(|a| std::iter::repeat_n(a, vols_per_aggr as usize))
            .collect();
        Self::new(
            model,
            aggregates,
            volume_aggr,
            stripes_per_volume,
            ranges,
            ranges,
        )
    }

    fn build_tree(&mut self) {
        // Emission order fixes the id space:
        //   Serial,
        //   per aggregate: Aggregate, AggrVbn, AggrVbnRange*,
        //   per volume: Volume, VolumeLogical, Stripe*, VolumeVbn, VolVbnRange*.
        let push = |names: &mut Vec<Affinity>,
                    parent: &mut Vec<u32>,
                    depth: &mut Vec<u8>,
                    name: Affinity,
                    par: u32|
         -> u32 {
            let id = names.len() as u32;
            names.push(name);
            parent.push(par);
            depth.push(if par == u32::MAX {
                0
            } else {
                depth[par as usize] + 1
            });
            id
        };
        let (mut names, mut parent, mut depth) = (Vec::new(), Vec::new(), Vec::new());
        let serial = push(
            &mut names,
            &mut parent,
            &mut depth,
            Affinity::Serial,
            u32::MAX,
        );
        let mut aggr_ids = Vec::with_capacity(self.aggregates as usize);
        for a in 0..self.aggregates {
            let ag = push(
                &mut names,
                &mut parent,
                &mut depth,
                Affinity::Aggregate(a),
                serial,
            );
            aggr_ids.push(ag);
            let avbn = push(
                &mut names,
                &mut parent,
                &mut depth,
                Affinity::AggrVbn(a),
                ag,
            );
            for r in 0..self.ranges_per_aggregate {
                push(
                    &mut names,
                    &mut parent,
                    &mut depth,
                    Affinity::AggrVbnRange(a, r),
                    avbn,
                );
            }
        }
        for (v, &a) in self.volume_aggr.clone().iter().enumerate() {
            let v = v as u32;
            let vol = push(
                &mut names,
                &mut parent,
                &mut depth,
                Affinity::Volume(v),
                aggr_ids[a as usize],
            );
            let vl = push(
                &mut names,
                &mut parent,
                &mut depth,
                Affinity::VolumeLogical(v),
                vol,
            );
            for s in 0..self.stripes_per_volume {
                push(
                    &mut names,
                    &mut parent,
                    &mut depth,
                    Affinity::Stripe(v, s),
                    vl,
                );
            }
            let vvbn = push(
                &mut names,
                &mut parent,
                &mut depth,
                Affinity::VolumeVbn(v),
                vol,
            );
            for r in 0..self.ranges_per_volume {
                push(
                    &mut names,
                    &mut parent,
                    &mut depth,
                    Affinity::VolVbnRange(v, r),
                    vvbn,
                );
            }
        }
        self.names = names;
        self.parent = parent;
        self.depth = depth;
    }

    /// The Waffinity generation being modeled.
    #[inline]
    pub fn model(&self) -> Model {
        self.model
    }

    /// Total number of affinity nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the tree is empty (never: Serial always exists).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Number of volumes.
    #[inline]
    pub fn volumes(&self) -> u32 {
        self.volume_aggr.len() as u32
    }

    /// Number of aggregates.
    #[inline]
    pub fn aggregates(&self) -> u32 {
        self.aggregates
    }

    /// Stripe affinities per volume.
    #[inline]
    pub fn stripes_per_volume(&self) -> u32 {
        self.stripes_per_volume
    }

    /// Range affinities per volume (Vol-VBN side).
    #[inline]
    pub fn ranges_per_volume(&self) -> u32 {
        self.ranges_per_volume
    }

    /// Range affinities per aggregate (Aggr-VBN side).
    #[inline]
    pub fn ranges_per_aggregate(&self) -> u32 {
        self.ranges_per_aggregate
    }

    /// The aggregate housing a volume.
    #[inline]
    pub fn aggr_of_volume(&self, v: u32) -> u32 {
        self.volume_aggr[v as usize]
    }

    /// Resolve a symbolic affinity to its dense id.
    ///
    /// In the [`Model::Classical`] topology only `Serial` and `Stripe` are
    /// legal message targets; resolving any other name panics, mirroring
    /// the fact that such work "ran in a Serial affinity" (§III-B) — the
    /// caller should map it to `Serial` explicitly (see
    /// [`Topology::classical_target`]).
    pub fn id(&self, a: Affinity) -> AffinityId {
        if self.model == Model::Classical {
            assert!(
                matches!(a, Affinity::Serial | Affinity::Stripe(..)),
                "Classical Waffinity has only Serial and Stripe affinities; got {a:?}"
            );
        }
        // Ids are assigned in a fixed arithmetic layout; compute directly.
        let per_aggr = 2 + self.ranges_per_aggregate; // Aggregate, AggrVbn, ranges
        let per_vol = 3 + self.stripes_per_volume + self.ranges_per_volume;
        let vol_base = 1 + self.aggregates * per_aggr;
        let id = match a {
            Affinity::Serial => 0,
            Affinity::Aggregate(x) => 1 + x * per_aggr,
            Affinity::AggrVbn(x) => 1 + x * per_aggr + 1,
            Affinity::AggrVbnRange(x, r) => {
                assert!(r < self.ranges_per_aggregate);
                1 + x * per_aggr + 2 + r
            }
            Affinity::Volume(v) => vol_base + v * per_vol,
            Affinity::VolumeLogical(v) => vol_base + v * per_vol + 1,
            Affinity::Stripe(v, s) => {
                assert!(s < self.stripes_per_volume);
                vol_base + v * per_vol + 2 + s
            }
            Affinity::VolumeVbn(v) => vol_base + v * per_vol + 2 + self.stripes_per_volume,
            Affinity::VolVbnRange(v, r) => {
                assert!(r < self.ranges_per_volume);
                vol_base + v * per_vol + 3 + self.stripes_per_volume + r
            }
        };
        debug_assert_eq!(self.names[id as usize], a, "id layout mismatch");
        AffinityId(id)
    }

    /// Map a desired affinity to its Classical-Waffinity execution target:
    /// Stripe affinities stay; everything else runs in Serial (§III-B).
    pub fn classical_target(&self, a: Affinity) -> Affinity {
        match a {
            Affinity::Stripe(..) => a,
            _ => Affinity::Serial,
        }
    }

    /// Reverse lookup: the symbolic name of a dense id.
    #[inline]
    pub fn name(&self, id: AffinityId) -> Affinity {
        self.names[id.0 as usize]
    }

    /// Parent of an affinity (`None` for Serial).
    #[inline]
    pub fn parent(&self, id: AffinityId) -> Option<AffinityId> {
        let p = self.parent[id.0 as usize];
        (p != u32::MAX).then_some(AffinityId(p))
    }

    /// Depth in the tree (Serial = 0).
    #[inline]
    pub fn depth(&self, id: AffinityId) -> u8 {
        self.depth[id.0 as usize]
    }

    /// Is `a` an ancestor of `b` (or equal)?
    pub fn is_ancestor_or_self(&self, a: AffinityId, b: AffinityId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.parent(cur) {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Do two affinities exclude each other? True iff one is an ancestor
    /// of the other (or they are the same affinity) — the §III-D rule.
    pub fn conflicts(&self, a: AffinityId, b: AffinityId) -> bool {
        self.is_ancestor_or_self(a, b) || self.is_ancestor_or_self(b, a)
    }

    /// Iterate over `id` and all its ancestors up to Serial.
    pub fn ancestors_inclusive(&self, id: AffinityId) -> AncestorIter<'_> {
        AncestorIter {
            topo: self,
            cur: Some(id),
        }
    }

    /// The Stripe affinity for a file region, using the rotation described
    /// in §III-B (file stripes "rotated over a set of Stripe affinities").
    #[inline]
    pub fn stripe_for(&self, volume: u32, file_id: u64, stripe_index: u64) -> Affinity {
        let mix = file_id
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(stripe_index);
        Affinity::Stripe(volume, (mix % self.stripes_per_volume as u64) as u32)
    }

    /// The Vol-VBN Range affinity covering a metafile block of a volume.
    #[inline]
    pub fn vol_range_for(&self, volume: u32, metafile_block: u64) -> Affinity {
        Affinity::VolVbnRange(
            volume,
            (metafile_block % self.ranges_per_volume as u64) as u32,
        )
    }

    /// The Aggr-VBN Range affinity covering a metafile block of an
    /// aggregate.
    #[inline]
    pub fn aggr_range_for(&self, aggr: u32, metafile_block: u64) -> Affinity {
        Affinity::AggrVbnRange(
            aggr,
            (metafile_block % self.ranges_per_aggregate as u64) as u32,
        )
    }
}

/// Iterator over an affinity and its ancestors (see
/// [`Topology::ancestors_inclusive`]).
pub struct AncestorIter<'a> {
    topo: &'a Topology,
    cur: Option<AffinityId>,
}

impl Iterator for AncestorIter<'_> {
    type Item = AffinityId;
    fn next(&mut self) -> Option<AffinityId> {
        let cur = self.cur?;
        self.cur = self.topo.parent(cur);
        Some(cur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::symmetric(Model::Hierarchical, 2, 2, 4, 3)
    }

    #[test]
    fn id_layout_roundtrips() {
        let t = topo();
        for i in 0..t.len() as u32 {
            let name = t.name(AffinityId(i));
            assert_eq!(t.id(name), AffinityId(i));
        }
    }

    #[test]
    fn figure1_example_volume_logical_exclusions() {
        // §III-D: "if the Volume Logical affinity was running, then its
        // Stripe affinities were excluded along with its parent Volume,
        // Aggregate, and Serial affinities. Other affinities, such as
        // Volume VBN, were allowed to run."
        let t = topo();
        let vl = t.id(Affinity::VolumeLogical(0));
        assert!(t.conflicts(vl, t.id(Affinity::Stripe(0, 2))));
        assert!(t.conflicts(vl, t.id(Affinity::Volume(0))));
        assert!(t.conflicts(vl, t.id(Affinity::Aggregate(0))));
        assert!(t.conflicts(vl, t.id(Affinity::Serial)));
        assert!(!t.conflicts(vl, t.id(Affinity::VolumeVbn(0))));
        assert!(!t.conflicts(vl, t.id(Affinity::VolVbnRange(0, 1))));
        assert!(!t.conflicts(vl, t.id(Affinity::AggrVbn(0))));
        assert!(!t.conflicts(vl, t.id(Affinity::VolumeLogical(1))));
    }

    #[test]
    fn serial_excludes_everything() {
        let t = topo();
        let s = t.id(Affinity::Serial);
        for i in 0..t.len() as u32 {
            assert!(t.conflicts(s, AffinityId(i)));
        }
    }

    #[test]
    fn disjoint_instances_never_conflict() {
        // "any two operations in different aggregates, FlexVol volumes, or
        // regions of blocks in a file" run in parallel (§III-D).
        let t = topo();
        let cases = [
            (Affinity::Aggregate(0), Affinity::Aggregate(1)),
            (Affinity::Volume(0), Affinity::Volume(1)),
            (Affinity::Stripe(0, 0), Affinity::Stripe(0, 1)),
            (Affinity::VolVbnRange(0, 0), Affinity::VolVbnRange(0, 2)),
            (Affinity::AggrVbnRange(0, 1), Affinity::AggrVbnRange(1, 1)),
            (Affinity::Volume(0), Affinity::AggrVbn(0)),
        ];
        for (a, b) in cases {
            assert!(
                !t.conflicts(t.id(a), t.id(b)),
                "{a:?} should not exclude {b:?}"
            );
        }
    }

    #[test]
    fn volume_conflicts_with_its_aggregate_chain_only() {
        let t = topo();
        let v2 = t.id(Affinity::Volume(2)); // housed in aggregate 1
        assert!(t.conflicts(v2, t.id(Affinity::Aggregate(1))));
        assert!(!t.conflicts(v2, t.id(Affinity::Aggregate(0))));
        assert!(t.conflicts(v2, t.id(Affinity::Stripe(2, 3))));
        assert!(!t.conflicts(v2, t.id(Affinity::Stripe(1, 0))));
    }

    #[test]
    fn conflict_matrix_is_symmetric_and_matches_ancestor_rule() {
        let t = Topology::symmetric(Model::Hierarchical, 1, 2, 2, 2);
        let n = t.len() as u32;
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (AffinityId(a), AffinityId(b));
                assert_eq!(t.conflicts(a, b), t.conflicts(b, a));
                let expected = t.is_ancestor_or_self(a, b) || t.is_ancestor_or_self(b, a);
                assert_eq!(t.conflicts(a, b), expected);
            }
        }
    }

    #[test]
    fn depths_match_figure1() {
        let t = topo();
        assert_eq!(t.depth(t.id(Affinity::Serial)), 0);
        assert_eq!(t.depth(t.id(Affinity::Aggregate(1))), 1);
        assert_eq!(t.depth(t.id(Affinity::Volume(3))), 2);
        assert_eq!(t.depth(t.id(Affinity::VolumeLogical(0))), 3);
        assert_eq!(t.depth(t.id(Affinity::Stripe(0, 0))), 4);
        assert_eq!(t.depth(t.id(Affinity::AggrVbn(0))), 2);
        assert_eq!(t.depth(t.id(Affinity::AggrVbnRange(0, 0))), 3);
        assert_eq!(t.depth(t.id(Affinity::VolVbnRange(0, 0))), 4);
    }

    #[test]
    fn classical_maps_non_stripe_work_to_serial() {
        let t = Topology::symmetric(Model::Classical, 1, 1, 8, 1);
        assert_eq!(t.classical_target(Affinity::VolumeVbn(0)), Affinity::Serial);
        assert_eq!(
            t.classical_target(Affinity::Stripe(0, 3)),
            Affinity::Stripe(0, 3)
        );
        // Stripe and Serial ids resolve fine in classical mode.
        t.id(Affinity::Serial);
        t.id(Affinity::Stripe(0, 7));
    }

    #[test]
    #[should_panic(expected = "Classical Waffinity")]
    fn classical_rejects_hierarchical_targets() {
        let t = Topology::symmetric(Model::Classical, 1, 1, 8, 1);
        t.id(Affinity::VolumeVbn(0));
    }

    #[test]
    fn stripe_rotation_is_deterministic_and_in_range() {
        let t = topo();
        for f in 0..20u64 {
            for s in 0..20u64 {
                let a = t.stripe_for(1, f, s);
                assert_eq!(a, t.stripe_for(1, f, s));
                match a {
                    Affinity::Stripe(v, idx) => {
                        assert_eq!(v, 1);
                        assert!(idx < 4);
                    }
                    _ => panic!("expected stripe"),
                }
            }
        }
    }

    #[test]
    fn range_mapping_partitions_metafile_blocks() {
        let t = topo();
        // Different metafile blocks map across the range space; the same
        // block always maps to the same range.
        let a = t.vol_range_for(0, 7);
        assert_eq!(a, t.vol_range_for(0, 7));
        let ids: std::collections::HashSet<_> =
            (0..30u64).map(|b| t.aggr_range_for(1, b)).collect();
        assert_eq!(ids.len(), 3, "blocks spread over all 3 ranges");
    }

    #[test]
    fn ancestors_iterate_to_serial() {
        let t = topo();
        let chain: Vec<_> = t
            .ancestors_inclusive(t.id(Affinity::Stripe(3, 1)))
            .map(|i| t.name(i))
            .collect();
        assert_eq!(
            chain,
            vec![
                Affinity::Stripe(3, 1),
                Affinity::VolumeLogical(3),
                Affinity::Volume(3),
                Affinity::Aggregate(1),
                Affinity::Serial
            ]
        );
    }
}
