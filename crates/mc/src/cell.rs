//! Race-tracked interior mutability: a loom-style `UnsafeCell` whose
//! `with`/`with_mut` accessors feed the vector-clock race detector.

use crate::exec::{current, Execution};
use std::panic::Location;
use std::sync::Arc;

/// Lazily-registered model id, epoch-stamped like the atomics' ids.
#[derive(Debug, Default)]
struct LazyId(std::sync::atomic::AtomicU64);

impl LazyId {
    const fn new() -> Self {
        LazyId(std::sync::atomic::AtomicU64::new(0))
    }

    fn get(&self, ex: &Execution) -> u32 {
        // ordering: the token-passing scheduler serializes model-thread code.
        let packed = self.0.load(std::sync::atomic::Ordering::Relaxed);
        let (ep, id) = ((packed >> 32) as u32, packed as u32);
        if ep == ex.epoch && id != 0 {
            return id;
        }
        let id = ex.register_cell();
        // ordering: the token-passing scheduler serializes model-thread code.
        self.0.store(
            ((ex.epoch as u64) << 32) | id as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        id
    }
}

/// An `UnsafeCell` whose shared (`with`) and exclusive (`with_mut`)
/// accesses are checked for data races under the model, and compile to
/// plain pointer access otherwise.
#[derive(Debug)]
pub struct UnsafeCell<T> {
    real: std::cell::UnsafeCell<T>,
    id: LazyId,
}

impl<T> UnsafeCell<T> {
    /// Create a cell holding `t`.
    pub const fn new(t: T) -> Self {
        Self {
            real: std::cell::UnsafeCell::new(t),
            id: LazyId::new(),
        }
    }

    fn model(&self) -> Option<(Arc<Execution>, usize, u32)> {
        let (ex, tid) = current()?;
        if ex.is_ended() || std::thread::panicking() {
            return None;
        }
        let id = self.id.get(&ex);
        Some((ex, tid, id))
    }

    /// Shared access: a model read event (races with concurrent writes
    /// are reported with both source locations).
    #[track_caller]
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        let loc = Location::caller();
        if let Some((ex, tid, id)) = self.model() {
            ex.cell_read(tid, id, loc);
        }
        f(self.real.get())
    }

    /// Exclusive access: a model write event.
    #[track_caller]
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        let loc = Location::caller();
        if let Some((ex, tid, id)) = self.model() {
            ex.cell_write(tid, id, loc);
        }
        f(self.real.get())
    }

    /// Raw pointer escape hatch — untracked; prefer `with`/`with_mut`.
    pub fn get(&self) -> *mut T {
        self.real.get()
    }

    /// Exclusive access through `&mut self` (no tracking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.real.get_mut()
    }

    /// Consume the cell.
    pub fn into_inner(self) -> T {
        self.real.into_inner()
    }
}
