//! The execution engine: real OS threads under a strict token-passing
//! scheduler.
//!
//! Every shimmed operation (atomic access, lock acquisition, condvar
//! wait/notify, cell access) is a *yield point*: the thread publishes the
//! operation it is about to perform, runs the scheduler pick itself under
//! the shared `Inner` lock, and blocks until the token is granted back to
//! it. Exactly one logical thread runs between yield points, so every
//! interleaving the checker explores is a deterministic function of the
//! schedule plan — replaying a plan replays the execution bit-for-bit
//! (provided the checked code itself is deterministic, which the shims
//! enforce by funnelling all shared-memory access through the model).
//!
//! On top of the scheduler sit three analyses:
//!
//! * a **vector-clock race detector** over shimmed `UnsafeCell` accesses
//!   (FastTrack-style epochs, `#[track_caller]` locations in reports),
//! * an **allowed-stale `Relaxed` load model**: each atomic keeps a
//!   bounded history of writes; a `Relaxed` load may return any
//!   coherence-permitted stale value, and the choice is a recorded
//!   scheduling decision (so exhaustive mode branches on it),
//! * **virtual timeouts**: a timed condvar wait only times out when no
//!   other thread is runnable, so lost-wakeup bugs manifest as a fired
//!   timeout (or a deadlock) rather than as wall-clock flakiness.

use crate::clock::{VClock, MAX_THREADS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::panic::Location;
use std::sync::atomic::{AtomicBool, Ordering as SOrd};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdGuard};

/// Writes remembered per atomic for the stale-`Relaxed` load model.
const WRITE_HISTORY: usize = 8;

// ---------------------------------------------------------------------------
// Operation signatures (for sleep-set independence) and pending ops
// ---------------------------------------------------------------------------

/// Access kind of a yield-point operation, for the independence relation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Reads shared state (two reads of the same object commute).
    Read,
    /// Writes shared state (conflicts with reads and writes).
    Write,
    /// Synchronisation op (lock, notify, wait entry) — conflicts with
    /// every op on the same object.
    Sync,
    /// Touches no shared object (spawn, join, yield) — commutes with all.
    Free,
}

/// What a thread is about to do at its yield point.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OpSig {
    /// Model object id, or 0 for object-free ops.
    pub obj: u32,
    /// Access kind.
    pub kind: OpKind,
}

impl OpSig {
    /// An operation that touches no shared object.
    pub const fn free() -> Self {
        OpSig {
            obj: 0,
            kind: OpKind::Free,
        }
    }
}

/// Dependence relation for sleep-set pruning: two ops conflict iff they
/// touch the same object and at least one writes/synchronises on it.
pub fn conflicts(a: OpSig, b: OpSig) -> bool {
    a.obj != 0 && a.obj == b.obj && !(a.kind == OpKind::Read && b.kind == OpKind::Read)
}

/// A thread's published pending operation.
#[derive(Clone, Copy, Debug)]
enum PendOp {
    /// A generic always-enabled step.
    Step(OpSig),
    /// Blocking lock acquisition — enabled iff the mutex is free.
    Lock(u32),
    /// Join on a logical thread — enabled iff the target has finished.
    Join(usize),
}

impl PendOp {
    fn sig(self) -> OpSig {
        match self {
            PendOp::Step(s) => s,
            PendOp::Lock(m) => OpSig {
                obj: m,
                kind: OpKind::Sync,
            },
            PendOp::Join(_) => OpSig::free(),
        }
    }
}

/// Logical thread state as seen by the scheduler.
#[derive(Clone, Copy, Debug)]
enum TState {
    /// Holds the token (or is between registration and first wait).
    Running,
    /// Parked at a yield point, waiting to be granted the token.
    AtYield(PendOp),
    /// Blocked in a condvar wait; woken by notify or (if `timed`) by a
    /// virtual timeout fired when nothing else can run.
    BlockedCv { cv: u32, mutex: u32, timed: bool },
    /// Ran to completion.
    Finished,
}

// ---------------------------------------------------------------------------
// Plans, decisions, outcomes
// ---------------------------------------------------------------------------

/// One forced decision in a guided (exhaustive-mode) replay.
#[derive(Clone, Debug)]
pub struct GStep {
    /// Chosen thread id (scheduler decisions) or candidate index (value
    /// decisions).
    pub choice: u32,
    /// Sleep set to install before picking (scheduler decisions only):
    /// the union of the inherited sleep set and the alternatives already
    /// explored at this node.
    pub sleep: Vec<u32>,
}

/// How an execution picks its decisions.
#[derive(Clone, Debug)]
pub enum Plan {
    /// Seeded pseudo-random choices; replayable from `sseed`.
    Random {
        /// Per-schedule seed (printed on failure, replayed via `MC_REPLAY`).
        sseed: u64,
    },
    /// Forced prefix of decisions (exhaustive DFS); past the prefix the
    /// run picks the smallest allowed candidate.
    Guided {
        /// The forced decisions, in decision order.
        steps: Vec<GStep>,
    },
}

/// One recorded decision (only decisions with ≥ 2 candidates are logged,
/// so guided replays index the log positionally).
#[derive(Clone, Debug)]
pub struct DecRecord {
    /// True for scheduler picks, false for value/waiter/timeout choices.
    pub sched: bool,
    /// Chosen tid (sched) or candidate index (non-sched).
    pub chosen: u32,
    /// Candidate count for non-sched decisions.
    pub n: u32,
    /// Enabled threads and their pending ops (sched only).
    pub enabled: Vec<(u32, OpSig)>,
    /// Sleep set in force at this decision (sched only).
    pub sleep: Vec<u32>,
}

/// How a single schedule ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// All threads finished; no violation observed.
    Done,
    /// A violation: assertion failure, detected race, deadlock, or replay
    /// divergence. The string is the human-readable report.
    Failed(String),
    /// Sleep-set pruning proved this branch redundant; abandoned early.
    Pruned,
    /// Hit the per-schedule step bound (livelock guard); abandoned.
    StepBound,
}

/// Everything the checker needs back from one schedule.
#[derive(Debug)]
pub struct RunResult {
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Decision log (drives exhaustive DFS frame construction).
    pub log: Vec<DecRecord>,
    /// Yield points executed.
    pub steps: usize,
    /// Virtual timeouts fired.
    pub timeouts: usize,
}

// ---------------------------------------------------------------------------
// Per-object model state
// ---------------------------------------------------------------------------

/// One write in an atomic's bounded history.
#[derive(Clone, Debug)]
struct WriteRec {
    val: u64,
    /// Modification-order position (monotone per atomic).
    seq: u64,
    /// Writer's clock at the write (coherence floor computation).
    writer_clock: VClock,
    /// Clock released by this write, if it heads/continues a release
    /// sequence; acquire loads that read it join this.
    release_clock: Option<VClock>,
}

/// Model state of one shimmed atomic.
struct AtomicMeta {
    writes: VecDeque<WriteRec>,
    /// Per-thread floor: a thread never reads a write older than one it
    /// already read (read-read coherence).
    last_read_floor: [u64; MAX_THREADS],
}

impl AtomicMeta {
    fn new(init: u64, creator_clock: VClock) -> Self {
        let mut writes = VecDeque::with_capacity(WRITE_HISTORY);
        writes.push_back(WriteRec {
            val: init,
            seq: 1,
            writer_clock: creator_clock,
            // Creation synchronises-with first acquire load: initialising
            // an atomic and publishing the structure is always intended
            // to make the initial value visible.
            release_clock: Some(creator_clock),
        });
        AtomicMeta {
            writes,
            last_read_floor: [0; MAX_THREADS],
        }
    }
}

/// FastTrack-style epochs for one race-tracked `UnsafeCell`.
struct CellMeta {
    write_tid: usize,
    write_epoch: u32,
    write_loc: Option<&'static Location<'static>>,
    read_epochs: [u32; MAX_THREADS],
    read_locs: [Option<&'static Location<'static>>; MAX_THREADS],
}

impl CellMeta {
    fn new() -> Self {
        CellMeta {
            write_tid: 0,
            write_epoch: 0,
            write_loc: None,
            read_epochs: [0; MAX_THREADS],
            read_locs: [None; MAX_THREADS],
        }
    }
}

// ---------------------------------------------------------------------------
// The execution
// ---------------------------------------------------------------------------

struct Inner {
    states: Vec<TState>,
    clocks: Vec<VClock>,
    final_clocks: Vec<VClock>,
    timed_flag: Vec<bool>,
    /// Which thread currently holds (or has been granted) the token.
    granted: Option<usize>,
    /// mutex id → holder tid.
    held: BTreeMap<u32, usize>,
    /// mutex id → clock released at last unlock (acquire joins it).
    mutex_clocks: BTreeMap<u32, VClock>,
    /// condvar id → (waiter tid, mutex id) in wait order.
    cv_waiters: BTreeMap<u32, Vec<(usize, u32)>>,
    atomics: BTreeMap<u32, AtomicMeta>,
    cells: BTreeMap<u32, CellMeta>,
    next_obj: u32,
    rng: u64,
    log: Vec<DecRecord>,
    /// Sleep set (sleep-set DPOR): threads that must not be picked
    /// because the resulting interleaving was already covered.
    sleep: BTreeSet<usize>,
    steps: usize,
    timeouts: usize,
    outcome: Option<Outcome>,
    /// Live OS threads spawned by this execution (teardown barrier).
    os_live: usize,
}

/// A single controlled execution of the test closure under one plan.
pub struct Execution {
    inner: StdMutex<Inner>,
    cvar: StdCondvar,
    plan: Plan,
    max_steps: usize,
    /// Cheap "this run is over" flag so shims can degrade to passthrough
    /// during teardown without taking the `inner` lock first.
    ended: AtomicBool,
    /// Unique per-process execution number; lazily-registered objects
    /// stamp it so ids from a previous run are never trusted.
    pub epoch: u32,
}

/// Memory ordering as seen by the model.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MOrd {
    /// No synchronisation; loads may observe allowed-stale values.
    Relaxed,
    /// Load side of a release/acquire pair.
    Acquire,
    /// Store side of a release/acquire pair.
    Release,
    /// Both sides (RMW).
    AcqRel,
    /// Sequentially consistent (modelled as AcqRel + reads-latest).
    SeqCst,
}

impl MOrd {
    fn acq(self) -> bool {
        matches!(self, MOrd::Acquire | MOrd::AcqRel | MOrd::SeqCst)
    }
    fn rel(self) -> bool {
        matches!(self, MOrd::Release | MOrd::AcqRel | MOrd::SeqCst)
    }
}

/// Panic payload used to unwind threads out of an abandoned execution.
/// Never escapes the mc runtime: wrappers downcast and swallow it.
pub(crate) struct McAbort;

fn abort_now() -> ! {
    std::panic::resume_unwind(Box::new(McAbort))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

static EXEC_EPOCH: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(1);

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The current thread's execution context, if it is a model thread.
pub fn current() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

pub(crate) fn set_ctx(v: Option<(Arc<Execution>, usize)>) {
    CTX.with(|c| *c.borrow_mut() = v);
}

impl Execution {
    fn new(plan: Plan, max_steps: usize) -> Self {
        let sseed = match &plan {
            Plan::Random { sseed } => *sseed,
            Plan::Guided { .. } => 0,
        };
        let mut root_clock = VClock::bottom();
        root_clock.tick(0);
        Execution {
            inner: StdMutex::new(Inner {
                states: vec![TState::Running],
                clocks: vec![root_clock],
                final_clocks: vec![VClock::bottom()],
                timed_flag: vec![false],
                granted: Some(0),
                held: BTreeMap::new(),
                mutex_clocks: BTreeMap::new(),
                cv_waiters: BTreeMap::new(),
                atomics: BTreeMap::new(),
                cells: BTreeMap::new(),
                next_obj: 1,
                rng: sseed ^ 0xA5A5_5A5A_DEAD_BEEF,
                log: Vec::new(),
                sleep: BTreeSet::new(),
                steps: 0,
                timeouts: 0,
                outcome: None,
                os_live: 0,
            }),
            cvar: StdCondvar::new(),
            plan,
            max_steps,
            ended: AtomicBool::new(false),
            epoch: EXEC_EPOCH.fetch_add(1, SOrd::Relaxed),
        }
    }

    /// Run `f` as logical thread 0 under `plan`; returns when every
    /// spawned OS thread has exited.
    pub fn run(plan: Plan, max_steps: usize, f: impl FnOnce()) -> RunResult {
        let ex = Arc::new(Execution::new(plan, max_steps));
        set_ctx(Some((ex.clone(), 0)));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        set_ctx(None);
        match r {
            Ok(()) => ex.thread_finish(0),
            Err(p) => ex.fail_from_payload(p),
        }
        ex.wait_done()
    }

    /// True once the run has an outcome; shims degrade to passthrough.
    pub fn is_ended(&self) -> bool {
        self.ended.load(SOrd::SeqCst)
    }

    /// Virtual timeouts fired so far in this run.
    pub fn timeouts_fired(&self) -> usize {
        self.lock().timeouts
    }

    fn lock(&self) -> StdGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn wait<'a>(&self, g: StdGuard<'a, Inner>) -> StdGuard<'a, Inner> {
        self.cvar.wait(g).unwrap_or_else(|p| p.into_inner())
    }

    fn set_outcome(&self, g: &mut Inner, o: Outcome) {
        if g.outcome.is_none() {
            g.outcome = Some(o);
        }
        self.ended.store(true, SOrd::SeqCst);
        self.cvar.notify_all();
    }

    /// Record a failure and unwind the calling thread.
    fn fail(&self, mut g: StdGuard<'_, Inner>, msg: String) -> ! {
        self.set_outcome(&mut g, Outcome::Failed(msg));
        drop(g);
        abort_now()
    }

    fn fail_from_payload(&self, p: Box<dyn std::any::Any + Send>) {
        if p.downcast_ref::<McAbort>().is_some() {
            return; // outcome already set by whoever aborted the run
        }
        let msg = if let Some(s) = p.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        };
        let mut g = self.lock();
        self.set_outcome(&mut g, Outcome::Failed(msg));
    }

    fn wait_done(&self) -> RunResult {
        let mut g = self.lock();
        while g.outcome.is_none() || g.os_live != 0 {
            g = self.wait(g);
        }
        RunResult {
            outcome: g.outcome.clone().expect("outcome set"),
            log: std::mem::take(&mut g.log),
            steps: g.steps,
            timeouts: g.timeouts,
        }
    }

    // -- decisions ---------------------------------------------------------

    /// Pick one of `n` candidates; a recorded branch point when `n > 1`.
    fn decide(&self, g: &mut Inner, n: usize) -> usize {
        if n <= 1 {
            return 0;
        }
        let d = g.log.len();
        let c = match &self.plan {
            Plan::Random { .. } => (splitmix64(&mut g.rng) % n as u64) as usize,
            Plan::Guided { steps } => {
                if d < steps.len() {
                    (steps[d].choice as usize).min(n - 1)
                } else {
                    0
                }
            }
        };
        g.log.push(DecRecord {
            sched: false,
            chosen: c as u32,
            n: n as u32,
            enabled: Vec::new(),
            sleep: Vec::new(),
        });
        c
    }

    fn is_enabled(g: &Inner, t: usize) -> bool {
        match g.states[t] {
            TState::AtYield(PendOp::Step(_)) => true,
            TState::AtYield(PendOp::Lock(m)) => !g.held.contains_key(&m),
            TState::AtYield(PendOp::Join(j)) => matches!(g.states[j], TState::Finished),
            _ => false,
        }
    }

    fn op_of(g: &Inner, t: usize) -> OpSig {
        match g.states[t] {
            TState::AtYield(p) => p.sig(),
            _ => OpSig::free(),
        }
    }

    /// Core scheduler: called by a thread that has published its pending
    /// op and set `granted = None`. Grants the token to some enabled
    /// thread, fires virtual timeouts when nothing is runnable, and
    /// declares Done/deadlock/Pruned/StepBound as appropriate.
    fn schedule(&self, g: &mut Inner, caller: usize) {
        if g.outcome.is_some() {
            return;
        }
        loop {
            let nthreads = g.states.len();
            let mut enabled: Vec<usize> = Vec::new();
            let mut all_finished = true;
            for t in 0..nthreads {
                if !matches!(g.states[t], TState::Finished) {
                    all_finished = false;
                }
                if Self::is_enabled(g, t) {
                    enabled.push(t);
                }
            }
            if all_finished {
                self.set_outcome(g, Outcome::Done);
                return;
            }
            if g.steps >= self.max_steps {
                self.set_outcome(g, Outcome::StepBound);
                return;
            }
            if !enabled.is_empty() {
                let pick = match self.pick_sched(g, &enabled) {
                    Some(p) => p,
                    None => {
                        // Sleep-set blocked: branch proven redundant.
                        self.set_outcome(g, Outcome::Pruned);
                        return;
                    }
                };
                // Waking rule: a sleeping thread wakes when the picked op
                // conflicts with its pending op (the commutation argument
                // that justified its sleep no longer holds).
                let pop = Self::op_of(g, pick);
                let sleepers: Vec<usize> = g.sleep.iter().copied().collect();
                for u in sleepers {
                    if !matches!(g.states[u], TState::AtYield(_))
                        || conflicts(Self::op_of(g, u), pop)
                    {
                        g.sleep.remove(&u);
                    }
                }
                g.sleep.remove(&pick);
                g.granted = Some(pick);
                if pick != caller {
                    self.cvar.notify_all();
                }
                return;
            }
            // Nobody runnable: fire a virtual timeout if a timed waiter
            // exists, else this is a genuine deadlock.
            let timed: Vec<usize> = (0..nthreads)
                .filter(|&t| matches!(g.states[t], TState::BlockedCv { timed: true, .. }))
                .collect();
            if !timed.is_empty() {
                let i = self.decide(g, timed.len());
                let t = timed[i];
                if let TState::BlockedCv { cv, mutex, .. } = g.states[t] {
                    if let Some(ws) = g.cv_waiters.get_mut(&cv) {
                        ws.retain(|&(w, _)| w != t);
                    }
                    g.timed_flag[t] = true;
                    g.timeouts += 1;
                    g.states[t] = TState::AtYield(PendOp::Lock(mutex));
                }
                continue;
            }
            let desc: Vec<String> = (0..nthreads)
                .map(|t| format!("t{}: {:?}", t, g.states[t]))
                .collect();
            self.set_outcome(
                g,
                Outcome::Failed(format!(
                    "deadlock: no thread enabled and no timed waiter [{}]",
                    desc.join("; ")
                )),
            );
            return;
        }
    }

    /// Scheduler pick among `enabled`, honouring the plan and the sleep
    /// set. Returns `None` when every enabled thread is asleep (prune).
    fn pick_sched(&self, g: &mut Inner, enabled: &[usize]) -> Option<usize> {
        // Forced singleton: not a branch point, not recorded.
        if enabled.len() == 1 {
            return Some(enabled[0]);
        }
        let d = g.log.len();
        let pick = match &self.plan {
            Plan::Random { .. } => {
                let r = splitmix64(&mut g.rng);
                enabled[(r % enabled.len() as u64) as usize]
            }
            Plan::Guided { steps } => {
                if d < steps.len() {
                    g.sleep = steps[d].sleep.iter().map(|&t| t as usize).collect();
                    let p = steps[d].choice as usize;
                    if !enabled.contains(&p) {
                        self.set_outcome(
                            g,
                            Outcome::Failed(format!(
                                "mc internal: replay divergence at decision {d}: forced t{p} not enabled (enabled: {enabled:?})"
                            )),
                        );
                        return None;
                    }
                    p
                } else {
                    *enabled.iter().find(|t| !g.sleep.contains(t))?
                }
            }
        };
        let rec_enabled: Vec<(u32, OpSig)> = enabled
            .iter()
            .map(|&t| (t as u32, Self::op_of(g, t)))
            .collect();
        g.log.push(DecRecord {
            sched: true,
            chosen: pick as u32,
            n: enabled.len() as u32,
            enabled: rec_enabled,
            sleep: g.sleep.iter().map(|&t| t as u32).collect(),
        });
        Some(pick)
    }

    /// Publish `op`, release the token, wait to be granted it back.
    /// Returns with the guard held, state `Running`, clock ticked.
    fn acquire_slot(&self, tid: usize, op: PendOp) -> StdGuard<'_, Inner> {
        let mut g = self.lock();
        if g.outcome.is_some() {
            drop(g);
            abort_now();
        }
        g.states[tid] = TState::AtYield(op);
        g.granted = None;
        self.schedule(&mut g, tid);
        loop {
            if g.outcome.is_some() {
                drop(g);
                abort_now();
            }
            if g.granted == Some(tid) {
                break;
            }
            g = self.wait(g);
        }
        // A woken cv waiter is granted while AtYield(Lock): cv_wait
        // finishes the mutex reacquire itself, so only flip to Running
        // here for plain yields.
        g.states[tid] = TState::Running;
        g.steps += 1;
        g.clocks[tid].tick(tid);
        g
    }

    // -- object registration ----------------------------------------------

    /// Register an atomic with its initial value. `tid` is the creating
    /// thread (its clock seeds the initial write's release clock).
    pub fn register_atomic(&self, tid: usize, init: u64) -> u32 {
        let mut g = self.lock();
        let id = g.next_obj;
        g.next_obj += 1;
        let c = g.clocks[tid];
        g.atomics.insert(id, AtomicMeta::new(init, c));
        id
    }

    /// Register a race-tracked cell.
    pub fn register_cell(&self) -> u32 {
        let mut g = self.lock();
        let id = g.next_obj;
        g.next_obj += 1;
        g.cells.insert(id, CellMeta::new());
        id
    }

    /// Register a mutex or condvar (scheduler-side state only).
    pub fn register_sync_obj(&self) -> u32 {
        let mut g = self.lock();
        let id = g.next_obj;
        g.next_obj += 1;
        id
    }

    // -- atomics -----------------------------------------------------------

    /// Model an atomic load. `Relaxed` loads may return any
    /// coherence-allowed stale value (a recorded branch point).
    pub fn atomic_load(&self, tid: usize, obj: u32, ord: MOrd) -> u64 {
        let mut g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj,
                kind: OpKind::Read,
            }),
        );
        let myclock = g.clocks[tid];
        let meta = g.atomics.get(&obj).expect("atomic registered");
        let floor_hb = meta
            .writes
            .iter()
            .filter(|w| w.writer_clock.le(&myclock))
            .map(|w| w.seq)
            .max()
            .unwrap_or(0);
        let floor = floor_hb.max(meta.last_read_floor[tid]);
        let cands: Vec<usize> = if ord.acq() {
            // Soundness gap, documented in the README: acquire/SeqCst
            // loads read the latest write rather than choosing among
            // stale-but-allowed ones.
            vec![meta.writes.len() - 1]
        } else {
            (0..meta.writes.len())
                .filter(|&i| meta.writes[i].seq >= floor)
                .collect()
        };
        let ci = cands[self.decide(&mut g, cands.len())];
        let meta = g.atomics.get_mut(&obj).expect("atomic registered");
        let (val, seq, rc) = {
            let w = &meta.writes[ci];
            (w.val, w.seq, w.release_clock)
        };
        meta.last_read_floor[tid] = meta.last_read_floor[tid].max(seq);
        if ord.acq() {
            if let Some(rc) = rc {
                g.clocks[tid].join(&rc);
            }
        }
        val
    }

    /// Model an atomic store.
    pub fn atomic_store(&self, tid: usize, obj: u32, val: u64, ord: MOrd) {
        let mut g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj,
                kind: OpKind::Write,
            }),
        );
        let myclock = g.clocks[tid];
        let meta = g.atomics.get_mut(&obj).expect("atomic registered");
        let seq = meta.writes.back().expect("nonempty history").seq + 1;
        // A plain store does NOT continue an earlier release sequence:
        // only the store's own ordering decides whether it releases.
        let rc = if ord.rel() { Some(myclock) } else { None };
        meta.writes.push_back(WriteRec {
            val,
            seq,
            writer_clock: myclock,
            release_clock: rc,
        });
        if meta.writes.len() > WRITE_HISTORY {
            meta.writes.pop_front();
        }
    }

    /// Model an atomic read-modify-write (`fetch_add`, `swap`, …): reads
    /// the latest value, continues release sequences. Returns the old
    /// value.
    pub fn atomic_rmw(&self, tid: usize, obj: u32, f: impl FnOnce(u64) -> u64, ord: MOrd) -> u64 {
        let mut g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj,
                kind: OpKind::Write,
            }),
        );
        self.rmw_locked(&mut g, tid, obj, f, ord)
    }

    fn rmw_locked(
        &self,
        g: &mut Inner,
        tid: usize,
        obj: u32,
        f: impl FnOnce(u64) -> u64,
        ord: MOrd,
    ) -> u64 {
        let (old, inherited, last_seq) = {
            let meta = g.atomics.get(&obj).expect("atomic registered");
            let w = meta.writes.back().expect("nonempty history");
            (w.val, w.release_clock, w.seq)
        };
        if ord.acq() {
            if let Some(rc) = inherited {
                g.clocks[tid].join(&rc);
            }
        }
        let myclock = g.clocks[tid];
        // Release-sequence continuation: an RMW inherits the head's
        // release clock, joining its own if it also releases.
        let rc = match (inherited, ord.rel()) {
            (Some(mut h), true) => {
                h.join(&myclock);
                Some(h)
            }
            (Some(h), false) => Some(h),
            (None, true) => Some(myclock),
            (None, false) => None,
        };
        let meta = g.atomics.get_mut(&obj).expect("atomic registered");
        meta.writes.push_back(WriteRec {
            val: f(old),
            seq: last_seq + 1,
            writer_clock: myclock,
            release_clock: rc,
        });
        if meta.writes.len() > WRITE_HISTORY {
            meta.writes.pop_front();
        }
        meta.last_read_floor[tid] = meta.last_read_floor[tid].max(last_seq);
        old
    }

    /// Model `compare_exchange`: success behaves like an RMW with the
    /// success ordering; failure is a load of the latest value with the
    /// failure ordering.
    pub fn atomic_cas(
        &self,
        tid: usize,
        obj: u32,
        cur: u64,
        new: u64,
        ok: MOrd,
        fail: MOrd,
    ) -> Result<u64, u64> {
        let mut g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj,
                kind: OpKind::Write,
            }),
        );
        let (latest, rc, seq) = {
            let meta = g.atomics.get(&obj).expect("atomic registered");
            let w = meta.writes.back().expect("nonempty history");
            (w.val, w.release_clock, w.seq)
        };
        if latest == cur {
            let old = self.rmw_locked(&mut g, tid, obj, |_| new, ok);
            Ok(old)
        } else {
            if fail.acq() {
                if let Some(rc) = rc {
                    g.clocks[tid].join(&rc);
                }
            }
            let meta = g.atomics.get_mut(&obj).expect("atomic registered");
            meta.last_read_floor[tid] = meta.last_read_floor[tid].max(seq);
            Err(latest)
        }
    }

    // -- race-tracked cells -------------------------------------------------

    /// Model a shared read of a tracked cell; fails the run on a race
    /// with a concurrent write.
    pub fn cell_read(&self, tid: usize, obj: u32, loc: &'static Location<'static>) {
        let g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj,
                kind: OpKind::Read,
            }),
        );
        let mut g = g;
        let myclock = g.clocks[tid];
        let meta = g.cells.get(&obj).expect("cell registered");
        if meta.write_epoch > myclock.get(meta.write_tid) {
            let wloc = meta
                .write_loc
                .map(|l| format!("{}:{}", l.file(), l.line()))
                .unwrap_or_else(|| "?".into());
            let wt = meta.write_tid;
            self.fail(
                g,
                format!(
                    "data race: read at {}:{} (t{tid}) not ordered after write at {wloc} (t{wt})",
                    loc.file(),
                    loc.line()
                ),
            );
        }
        let my_epoch = myclock.get(tid);
        let meta = g.cells.get_mut(&obj).expect("cell registered");
        meta.read_epochs[tid] = my_epoch;
        meta.read_locs[tid] = Some(loc);
    }

    /// Model an exclusive write to a tracked cell; fails the run on a
    /// race with any concurrent read or write.
    pub fn cell_write(&self, tid: usize, obj: u32, loc: &'static Location<'static>) {
        let mut g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj,
                kind: OpKind::Write,
            }),
        );
        let myclock = g.clocks[tid];
        let meta = g.cells.get(&obj).expect("cell registered");
        if meta.write_epoch > myclock.get(meta.write_tid) {
            let wloc = meta
                .write_loc
                .map(|l| format!("{}:{}", l.file(), l.line()))
                .unwrap_or_else(|| "?".into());
            let wt = meta.write_tid;
            self.fail(
                g,
                format!(
                    "data race: write at {}:{} (t{tid}) not ordered after write at {wloc} (t{wt})",
                    loc.file(),
                    loc.line()
                ),
            );
        }
        for u in 0..MAX_THREADS {
            if meta.read_epochs[u] > myclock.get(u) {
                let rloc = meta.read_locs[u]
                    .map(|l| format!("{}:{}", l.file(), l.line()))
                    .unwrap_or_else(|| "?".into());
                self.fail(
                    g,
                    format!(
                        "data race: write at {}:{} (t{tid}) not ordered after read at {rloc} (t{u})",
                        loc.file(),
                        loc.line()
                    ),
                );
            }
        }
        let my_epoch = myclock.get(tid);
        let meta = g.cells.get_mut(&obj).expect("cell registered");
        meta.write_tid = tid;
        meta.write_epoch = my_epoch;
        meta.write_loc = Some(loc);
    }

    // -- mutexes & condvars --------------------------------------------------

    /// Blocking lock: enabled (grantable) only while the mutex is free.
    pub fn mutex_lock(&self, tid: usize, m: u32) {
        let mut g = self.acquire_slot(tid, PendOp::Lock(m));
        debug_assert!(!g.held.contains_key(&m), "granted lock on held mutex");
        g.held.insert(m, tid);
        if let Some(mc) = g.mutex_clocks.get(&m).copied() {
            g.clocks[tid].join(&mc);
        }
    }

    /// Non-blocking lock attempt (a yield point either way).
    pub fn mutex_try_lock(&self, tid: usize, m: u32) -> bool {
        let mut g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj: m,
                kind: OpKind::Sync,
            }),
        );
        if g.held.contains_key(&m) {
            return false;
        }
        g.held.insert(m, tid);
        if let Some(mc) = g.mutex_clocks.get(&m).copied() {
            g.clocks[tid].join(&mc);
        }
        true
    }

    /// Unlock: a yield point that publishes the holder's clock.
    pub fn mutex_unlock(&self, tid: usize, m: u32) {
        let mut g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj: m,
                kind: OpKind::Sync,
            }),
        );
        Self::unlock_locked(&mut g, tid, m);
    }

    fn unlock_locked(g: &mut Inner, tid: usize, m: u32) {
        debug_assert_eq!(g.held.get(&m), Some(&tid), "unlock by non-holder");
        g.held.remove(&m);
        let c = g.clocks[tid];
        g.mutex_clocks
            .entry(m)
            .and_modify(|mc| mc.join(&c))
            .or_insert(c);
    }

    /// Best-effort unlock during panic unwinding: releases scheduler
    /// state without yielding (the run is being torn down).
    pub fn mutex_unlock_abort(&self, tid: usize, m: u32) {
        let mut g = self.lock();
        if g.held.get(&m) == Some(&tid) {
            g.held.remove(&m);
        }
        self.cvar.notify_all();
    }

    /// Condvar wait: atomically releases `m` and blocks; reacquires `m`
    /// before returning. Returns true iff woken by a (virtual) timeout.
    /// Timed waits only time out when no other thread is runnable.
    pub fn cv_wait(&self, tid: usize, cv: u32, m: u32, timed: bool) -> bool {
        let mut g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj: cv,
                kind: OpKind::Sync,
            }),
        );
        Self::unlock_locked(&mut g, tid, m);
        g.cv_waiters.entry(cv).or_default().push((tid, m));
        g.states[tid] = TState::BlockedCv {
            cv,
            mutex: m,
            timed,
        };
        g.granted = None;
        self.schedule(&mut g, tid);
        loop {
            if g.outcome.is_some() {
                drop(g);
                abort_now();
            }
            if g.granted == Some(tid) {
                break;
            }
            g = self.wait(g);
        }
        // Granted implies notify/timeout flipped us to AtYield(Lock(m))
        // and the scheduler saw m free: finish the reacquire.
        debug_assert!(!g.held.contains_key(&m), "granted cv wakeup on held mutex");
        g.held.insert(m, tid);
        if let Some(mc) = g.mutex_clocks.get(&m).copied() {
            g.clocks[tid].join(&mc);
        }
        g.states[tid] = TState::Running;
        g.steps += 1;
        g.clocks[tid].tick(tid);
        let to = g.timed_flag[tid];
        g.timed_flag[tid] = false;
        to
    }

    /// Notify one (scheduler-chosen) waiter or all waiters. Returns the
    /// number of threads woken.
    pub fn cv_notify(&self, tid: usize, cv: u32, all: bool) -> usize {
        let mut g = self.acquire_slot(
            tid,
            PendOp::Step(OpSig {
                obj: cv,
                kind: OpKind::Sync,
            }),
        );
        let waiters = g.cv_waiters.get(&cv).cloned().unwrap_or_default();
        if waiters.is_empty() {
            return 0;
        }
        let woken: Vec<(usize, u32)> = if all {
            waiters.clone()
        } else {
            // Which waiter wakes is a real source of nondeterminism —
            // a recorded branch point.
            let i = self.decide(&mut g, waiters.len());
            vec![waiters[i]]
        };
        if let Some(ws) = g.cv_waiters.get_mut(&cv) {
            ws.retain(|e| !woken.contains(e));
        }
        let myclock = g.clocks[tid];
        for &(w, m) in &woken {
            g.states[w] = TState::AtYield(PendOp::Lock(m));
            g.clocks[w].join(&myclock);
        }
        woken.len()
    }

    // -- threads -------------------------------------------------------------

    /// Register a child logical thread (called by the parent at a yield
    /// point); the child inherits the parent's clock. Fails the run if
    /// `MAX_THREADS` is exceeded.
    pub fn register_child(&self, parent: usize) -> usize {
        let mut g = self.acquire_slot(parent, PendOp::Step(OpSig::free()));
        let child = g.states.len();
        if child >= MAX_THREADS {
            self.fail(
                g,
                format!("mc: execution spawned more than MAX_THREADS={MAX_THREADS} threads"),
            );
        }
        let mut c = g.clocks[parent];
        c.tick(child);
        g.states.push(TState::AtYield(PendOp::Step(OpSig::free())));
        g.clocks.push(c);
        g.final_clocks.push(VClock::bottom());
        g.timed_flag.push(false);
        g.os_live += 1;
        child
    }

    /// First wait of a freshly spawned OS thread: block until granted.
    pub fn first_wait(&self, tid: usize) {
        let mut g = self.lock();
        loop {
            if g.outcome.is_some() {
                drop(g);
                abort_now();
            }
            if g.granted == Some(tid) {
                break;
            }
            g = self.wait(g);
        }
        g.states[tid] = TState::Running;
        g.steps += 1;
        g.clocks[tid].tick(tid);
    }

    /// Logical thread completion: publish the final clock and hand the
    /// token back to the scheduler.
    pub fn thread_finish(&self, tid: usize) {
        let mut g = self.lock();
        if g.outcome.is_some() {
            return;
        }
        g.final_clocks[tid] = g.clocks[tid];
        g.states[tid] = TState::Finished;
        g.granted = None;
        self.schedule(&mut g, tid);
    }

    /// Join on a logical thread: blocks (as a scheduler-visible op) until
    /// the target finishes, then joins its final clock.
    pub fn join_thread(&self, tid: usize, target: usize) {
        let mut g = self.acquire_slot(tid, PendOp::Join(target));
        let fc = g.final_clocks[target];
        g.clocks[tid].join(&fc);
    }

    /// OS-thread bookkeeping: called by the spawn wrapper on exit.
    pub fn os_thread_exit(&self) {
        let mut g = self.lock();
        g.os_live -= 1;
        self.cvar.notify_all();
    }

    /// A plain yield point with no shared-object footprint
    /// (`thread::yield_now` under the model).
    pub fn yield_now(&self, tid: usize) {
        let _g = self.acquire_slot(tid, PendOp::Step(OpSig::free()));
    }

    /// Whether `p` is the mc teardown payload (spawn wrappers swallow it).
    pub fn is_abort_payload(p: &(dyn std::any::Any + Send)) -> bool {
        p.downcast_ref::<McAbort>().is_some()
    }

    /// Report a model failure from a spawned thread's panic payload.
    pub fn fail_thread(&self, p: Box<dyn std::any::Any + Send>) {
        self.fail_from_payload(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = 42;
        let mut b = 42;
        assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        assert_eq!(a, b);
    }

    #[test]
    fn conflict_relation() {
        let r = |o| OpSig {
            obj: o,
            kind: OpKind::Read,
        };
        let w = |o| OpSig {
            obj: o,
            kind: OpKind::Write,
        };
        assert!(!conflicts(r(1), r(1)));
        assert!(conflicts(r(1), w(1)));
        assert!(conflicts(w(1), w(1)));
        assert!(!conflicts(w(1), w(2)));
        assert!(!conflicts(OpSig::free(), w(1)));
    }
}
