//! The schedule-exploration driver.
//!
//! Two modes:
//!
//! * **Random** (default): `schedules` seeded pseudo-random
//!   interleavings. Every schedule's seed is derived from the base seed
//!   (`MC_SEED`) and its index; a failure prints the per-schedule seed,
//!   and `MC_REPLAY=<sseed>` reruns exactly that interleaving.
//! * **Exhaustive** (`.exhaustive()`): depth-first enumeration of all
//!   interleavings with sleep-set pruning (DPOR-lite) — sound for
//!   safety violations and deadlocks, pruning only provably-redundant
//!   orders. Bounded by the same schedule budget.
//!
//! Environment knobs: `MC_SEED` (base seed), `MC_SCHEDULES` (budget
//! override, the CI lever), `MC_REPLAY` (single-schedule replay),
//! `MC_MAX_STEPS` (per-schedule step bound).

use crate::exec::{DecRecord, Execution, GStep, OpSig, Outcome, Plan, RunResult};

/// Statistics from a completed (non-failing) check.
#[derive(Debug, Clone)]
pub struct Report {
    /// Schedules actually executed.
    pub schedules_run: usize,
    /// Exhaustive mode only: true iff the full (pruned) tree was
    /// explored within budget.
    pub complete: bool,
    /// Total virtual timeouts fired across schedules.
    pub timeouts: usize,
    /// Schedules abandoned by sleep-set pruning.
    pub pruned: usize,
    /// Total yield points executed across schedules.
    pub steps: usize,
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Failure {
    /// Human-readable violation report.
    pub message: String,
    /// Per-schedule seed (random mode) for `MC_REPLAY`.
    pub sseed: Option<u64>,
    /// Index of the failing schedule.
    pub schedule: usize,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "schedule #{}: {}", self.schedule, self.message)?;
        if let Some(s) = self.sseed {
            write!(
                f,
                "\n  replay with: MC_REPLAY={s:#x} (and the same MC_* env)"
            )?;
        } else {
            write!(
                f,
                "\n  exhaustive mode is deterministic: rerun the test to reproduce"
            )?;
        }
        Ok(())
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let v = std::env::var(name).ok()?;
    let v = v.trim();
    let parsed = if let Some(hex) = v.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        v.parse()
    };
    match parsed {
        Ok(x) => Some(x),
        Err(_) => panic!("mc: could not parse {name}={v} as u64"),
    }
}

fn mix(seed: u64, i: u64) -> u64 {
    let mut s = seed ^ (i.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut z = s;
    s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z ^= s;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One node of the exhaustive-mode DFS stack.
struct Frame {
    sched: bool,
    /// Enabled threads and their pending ops at this node (sched only).
    enabled: Vec<(u32, OpSig)>,
    /// Candidate count (non-sched decisions).
    n: u32,
    /// Sleep set inherited on first arrival at this node.
    base_sleep: Vec<u32>,
    /// Choices fully explored at this node.
    explored: Vec<u32>,
    /// Choice the current run took here.
    chosen: u32,
}

impl Frame {
    fn from_log(r: &DecRecord) -> Self {
        Frame {
            sched: r.sched,
            enabled: r.enabled.clone(),
            n: r.n,
            base_sleep: r.sleep.clone(),
            explored: Vec::new(),
            chosen: r.chosen,
        }
    }

    /// Next unexplored, non-sleeping candidate after marking `chosen`
    /// explored; `None` when the node is exhausted.
    fn advance(&mut self) -> Option<u32> {
        self.explored.push(self.chosen);
        let next = if self.sched {
            self.enabled
                .iter()
                .map(|&(t, _)| t)
                .find(|t| !self.base_sleep.contains(t) && !self.explored.contains(t))
        } else {
            (0..self.n).find(|c| !self.explored.contains(c))
        };
        if let Some(c) = next {
            self.chosen = c;
        }
        next
    }

    /// Sleep set to install when re-entering this node: everything the
    /// node inherited plus every sibling already explored — a sibling's
    /// subtree covers all orders that merely commute with it.
    fn sleep_for_replay(&self) -> Vec<u32> {
        let mut s = self.base_sleep.clone();
        for &e in &self.explored {
            if e != self.chosen && !s.contains(&e) {
                s.push(e);
            }
        }
        s
    }
}

/// A configured model-checking run over a closure.
pub struct Checker {
    name: String,
    schedules: usize,
    exhaustive: bool,
    max_steps: usize,
    seed: u64,
}

impl Checker {
    /// Create a checker. `name` labels reports and replay lines.
    pub fn new(name: &str) -> Self {
        Checker {
            name: name.to_string(),
            schedules: env_u64("MC_SCHEDULES").map(|v| v as usize).unwrap_or(1000),
            exhaustive: false,
            max_steps: env_u64("MC_MAX_STEPS")
                .map(|v| v as usize)
                .unwrap_or(20_000),
            seed: env_u64("MC_SEED").unwrap_or(0x57AB_1E5E_ED00_0001),
        }
    }

    /// Set the schedule budget (still overridden by `MC_SCHEDULES`).
    pub fn schedules(mut self, n: usize) -> Self {
        if std::env::var("MC_SCHEDULES").is_err() {
            self.schedules = n;
        }
        self
    }

    /// Switch to bounded exhaustive (sleep-set DFS) exploration.
    pub fn exhaustive(mut self) -> Self {
        self.exhaustive = true;
        self
    }

    /// Override the per-schedule step bound.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.max_steps = n;
        self
    }

    /// Explore; panic with a replayable report on the first violation.
    pub fn check(self, f: impl Fn()) -> Report {
        let name = self.name.clone();
        match self.try_check(f) {
            Ok(r) => r,
            Err(e) => panic!("mc[{name}] found a violation on {e}"),
        }
    }

    /// Explore; return the first violation instead of panicking (used by
    /// the detection-power self-tests, which *expect* failures).
    pub fn try_check(self, f: impl Fn()) -> Result<Report, Failure> {
        if self.exhaustive {
            self.run_exhaustive(f)
        } else {
            self.run_random(f)
        }
    }

    fn run_random(self, f: impl Fn()) -> Result<Report, Failure> {
        let mut report = Report {
            schedules_run: 0,
            complete: false,
            timeouts: 0,
            pruned: 0,
            steps: 0,
        };
        if let Some(sseed) = env_u64("MC_REPLAY") {
            let r = Execution::run(Plan::Random { sseed }, self.max_steps, &f);
            report.schedules_run = 1;
            report.timeouts = r.timeouts;
            report.steps = r.steps;
            if let Outcome::Failed(message) = r.outcome {
                return Err(Failure {
                    message,
                    sseed: Some(sseed),
                    schedule: 0,
                });
            }
            return Ok(report);
        }
        for i in 0..self.schedules {
            let sseed = mix(self.seed, i as u64);
            let r = Execution::run(Plan::Random { sseed }, self.max_steps, &f);
            report.schedules_run += 1;
            report.timeouts += r.timeouts;
            report.steps += r.steps;
            if r.outcome == Outcome::StepBound {
                report.pruned += 1;
            }
            if let Outcome::Failed(message) = r.outcome {
                return Err(Failure {
                    message,
                    sseed: Some(sseed),
                    schedule: i,
                });
            }
        }
        Ok(report)
    }

    fn run_exhaustive(self, f: impl Fn()) -> Result<Report, Failure> {
        let mut report = Report {
            schedules_run: 0,
            complete: false,
            timeouts: 0,
            pruned: 0,
            steps: 0,
        };
        let mut stack: Vec<Frame> = Vec::new();
        loop {
            if report.schedules_run >= self.schedules {
                return Ok(report); // budget exhausted, complete = false
            }
            let steps: Vec<GStep> = stack
                .iter()
                .map(|fr| GStep {
                    choice: fr.chosen,
                    sleep: if fr.sched {
                        fr.sleep_for_replay()
                    } else {
                        Vec::new()
                    },
                })
                .collect();
            let forced = steps.len();
            let r: RunResult = Execution::run(Plan::Guided { steps }, self.max_steps, &f);
            report.schedules_run += 1;
            report.timeouts += r.timeouts;
            report.steps += r.steps;
            match &r.outcome {
                Outcome::Failed(message) => {
                    return Err(Failure {
                        message: message.clone(),
                        sseed: None,
                        schedule: report.schedules_run - 1,
                    });
                }
                Outcome::Pruned | Outcome::StepBound => report.pruned += 1,
                Outcome::Done => {}
            }
            // Merge: the forced prefix must replay identically; frames
            // beyond it are new DFS nodes discovered by this run.
            for (i, rec) in r.log.iter().enumerate() {
                if i < forced {
                    assert_eq!(
                        rec.chosen, stack[i].chosen,
                        "mc internal: exhaustive replay diverged at decision {i}"
                    );
                } else if i == stack.len() {
                    stack.push(Frame::from_log(rec));
                } else {
                    panic!("mc internal: decision log skipped a frame at {i}");
                }
            }
            // Backtrack: advance the deepest frame with an unexplored
            // sibling; pop exhausted frames.
            loop {
                let Some(fr) = stack.last_mut() else {
                    report.complete = true;
                    return Ok(report);
                };
                if fr.advance().is_some() {
                    break;
                }
                stack.pop();
            }
        }
    }
}

/// Virtual timeouts fired so far in the *current* execution (0 outside a
/// model run). Invariant tests assert this alongside their results to
/// prove no wakeup was lost.
pub fn timeouts_fired() -> usize {
    crate::exec::current()
        .map(|(ex, _)| ex.timeouts_fired())
        .unwrap_or(0)
}
