//! Model-aware threads: `spawn`/`join` register logical threads with the
//! current execution so the scheduler controls their interleaving; with
//! no execution in scope they are plain `std::thread` calls.

use crate::exec::{current, set_ctx, Execution};
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Mutex as StdMutex};

enum Imp<T> {
    Model {
        os: Option<std::thread::JoinHandle<()>>,
        target: usize,
        slot: Arc<StdMutex<Option<T>>>,
    },
    Pass(std::thread::JoinHandle<T>),
}

/// Handle to a spawned thread; joining is a scheduler-visible blocking
/// op under the model.
pub struct JoinHandle<T>(Imp<T>);

/// Spawn a thread. Inside a model execution this registers a logical
/// thread (bounded by `MAX_THREADS`); the closure runs only when the
/// scheduler grants it the token.
pub fn spawn<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> JoinHandle<T> {
    match current() {
        Some((ex, parent)) if !ex.is_ended() => {
            let child = ex.register_child(parent);
            let slot = Arc::new(StdMutex::new(None));
            let slot2 = Arc::clone(&slot);
            let ex2 = Arc::clone(&ex);
            let os = std::thread::spawn(move || {
                set_ctx(Some((Arc::clone(&ex2), child)));
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    ex2.first_wait(child);
                    let v = f();
                    *slot2.lock().unwrap_or_else(|p| p.into_inner()) = Some(v);
                    ex2.thread_finish(child);
                }));
                set_ctx(None);
                if let Err(p) = r {
                    if !Execution::is_abort_payload(&*p) {
                        // A real panic (failed assertion in checked
                        // code): record it as the run's failure.
                        ex2.fail_thread(p);
                    }
                }
                ex2.os_thread_exit();
            });
            JoinHandle(Imp::Model {
                os: Some(os),
                target: child,
                slot,
            })
        }
        _ => JoinHandle(Imp::Pass(std::thread::spawn(f))),
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread and return its result.
    pub fn join(mut self) -> std::thread::Result<T> {
        match &mut self.0 {
            Imp::Model { os, target, slot } => {
                if let Some((ex, tid)) = current() {
                    if !ex.is_ended() {
                        ex.join_thread(tid, *target);
                    }
                }
                let _ = os.take().expect("join called once").join();
                match slot.lock().unwrap_or_else(|p| p.into_inner()).take() {
                    Some(v) => Ok(v),
                    None => Err(Box::new("mc: thread aborted before producing a value")
                        as Box<dyn std::any::Any + Send>),
                }
            }
            Imp::Pass(_) => match self.0 {
                Imp::Pass(h) => h.join(),
                Imp::Model { .. } => unreachable!(),
            },
        }
    }
}

/// Yield: a no-footprint scheduler yield point under the model.
pub fn yield_now() {
    if let Some((ex, tid)) = current() {
        if !ex.is_ended() && !std::thread::panicking() {
            ex.yield_now(tid);
            return;
        }
    }
    std::thread::yield_now();
}
