//! Vector clocks — the happens-before backbone of the race detector and
//! the allowed-stale `Relaxed` load model.
//!
//! Fixed-width clocks (one slot per logical thread, bounded by
//! [`MAX_THREADS`]) keep joins and comparisons branch-light; model
//! executions are small by construction, so a hard thread cap is a
//! feature, not a limitation.

/// Maximum logical threads per execution (including the root closure).
pub const MAX_THREADS: usize = 8;

/// A fixed-width vector clock: `c[t]` counts the events thread `t` has
/// performed that the clock's owner has (transitively) observed.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct VClock {
    c: [u32; MAX_THREADS],
}

impl VClock {
    /// The zero clock (observes nothing) — `⊥`, ≤ every clock.
    pub const fn bottom() -> Self {
        Self {
            c: [0; MAX_THREADS],
        }
    }

    /// Component for thread `t`.
    #[inline]
    pub fn get(&self, t: usize) -> u32 {
        self.c[t]
    }

    /// Advance this clock's own component (one new event by thread `t`).
    #[inline]
    pub fn tick(&mut self, t: usize) {
        self.c[t] += 1;
    }

    /// Pointwise maximum: after `self.join(o)`, everything `o` observed
    /// is observed by `self` too (the happens-before union).
    #[inline]
    pub fn join(&mut self, o: &VClock) {
        for (a, b) in self.c.iter_mut().zip(o.c.iter()) {
            *a = (*a).max(*b);
        }
    }

    /// Pointwise ≤: does every event in `self` happen before (or equal
    /// to) the observation frontier of `o`?
    #[inline]
    pub fn le(&self, o: &VClock) -> bool {
        self.c.iter().zip(o.c.iter()).all(|(a, b)| a <= b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_pointwise_max_and_le_is_pointwise() {
        let mut a = VClock::bottom();
        let mut b = VClock::bottom();
        a.tick(0);
        a.tick(0);
        b.tick(1);
        assert!(!a.le(&b));
        assert!(!b.le(&a));
        let mut j = a;
        j.join(&b);
        assert!(a.le(&j));
        assert!(b.le(&j));
        assert_eq!(j.get(0), 2);
        assert_eq!(j.get(1), 1);
        assert!(VClock::bottom().le(&a));
    }
}
