//! Model-aware drop-in replacements for `std::sync::atomic`, `Mutex`,
//! and `Condvar`.
//!
//! Every type here has two modes, decided per operation:
//!
//! * **model**: the calling thread belongs to a live [`Execution`] —
//!   the op becomes a scheduler yield point and its semantics come from
//!   the model (stale-`Relaxed` loads, virtual timeouts, …);
//! * **passthrough**: no execution context (plain `cargo test` with the
//!   `mc` feature unified on), the run has ended, or the thread is
//!   unwinding — the op delegates to the real std primitive.
//!
//! Atomics keep a real std atomic mirroring the *latest* model value, so
//! passthrough reads after a run observe a consistent final state, and
//! lazy registration can seed the model from values written before the
//! execution started (e.g. in `const` initialisers).

use crate::exec::{current, Execution, MOrd};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

fn mord(o: Ordering) -> MOrd {
    match o {
        // ordering: this match *translates* orderings; it performs no access.
        Ordering::Relaxed => MOrd::Relaxed,
        Ordering::Acquire => MOrd::Acquire,
        Ordering::Release => MOrd::Release,
        Ordering::AcqRel => MOrd::AcqRel,
        _ => MOrd::SeqCst,
    }
}

/// Lazily-assigned model object id, stamped with the execution epoch so
/// ids from a previous run are never trusted (objects can outlive one
/// schedule via statics or leaks).
#[derive(Debug, Default)]
struct LazyId(std::sync::atomic::AtomicU64);

impl LazyId {
    const fn new() -> Self {
        LazyId(std::sync::atomic::AtomicU64::new(0))
    }

    fn get(&self, ex: &Execution, register: impl FnOnce() -> u32) -> u32 {
        // ordering: the token-passing scheduler serializes model-thread code.
        let packed = self.0.load(Ordering::Relaxed);
        let (ep, id) = ((packed >> 32) as u32, packed as u32);
        if ep == ex.epoch && id != 0 {
            return id;
        }
        // Only the token-holding thread executes user code, so lazy
        // registration cannot race another model thread.
        let id = register();
        // ordering: the token-passing scheduler serializes model-thread code.
        self.0
            .store(((ex.epoch as u64) << 32) | id as u64, Ordering::Relaxed);
        id
    }
}

/// Model context for this op, or `None` → passthrough.
fn model_ctx() -> Option<(Arc<Execution>, usize)> {
    let (ex, tid) = current()?;
    if ex.is_ended() || std::thread::panicking() {
        return None;
    }
    Some((ex, tid))
}

macro_rules! atomic_int {
    ($name:ident, $raw:ty, $prim:ty) => {
        /// Model-aware atomic integer (see module docs for mode rules).
        #[derive(Debug, Default)]
        pub struct $name {
            real: $raw,
            id: LazyId,
        }

        impl $name {
            /// Create with an initial value (const, like std).
            pub const fn new(v: $prim) -> Self {
                Self {
                    real: <$raw>::new(v),
                    id: LazyId::new(),
                }
            }

            fn model(&self) -> Option<(Arc<Execution>, usize, u32)> {
                let (ex, tid) = model_ctx()?;
                let id = self.id.get(&ex, || {
                    // ordering: non-model mirror; the model layer owns it.
                    ex.register_atomic(tid, self.real.load(Ordering::Relaxed) as u64)
                });
                Some((ex, tid, id))
            }

            /// Atomic load; under the model a `Relaxed` load may return
            /// any coherence-allowed stale value.
            pub fn load(&self, ord: Ordering) -> $prim {
                match self.model() {
                    Some((ex, tid, id)) => ex.atomic_load(tid, id, mord(ord)) as $prim,
                    None => self.real.load(ord),
                }
            }

            /// Atomic store.
            pub fn store(&self, v: $prim, ord: Ordering) {
                match self.model() {
                    Some((ex, tid, id)) => {
                        ex.atomic_store(tid, id, v as u64, mord(ord));
                        self.real.store(v, Ordering::Relaxed); // ordering: non-model mirror; the model layer owns ordering.
                    }
                    None => self.real.store(v, ord),
                }
            }

            /// Atomic swap; returns the previous value.
            pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                match self.model() {
                    Some((ex, tid, id)) => {
                        let old = ex.atomic_rmw(tid, id, |_| v as u64, mord(ord)) as $prim;
                        self.real.store(v, Ordering::Relaxed); // ordering: non-model mirror; the model layer owns ordering.
                        old
                    }
                    None => self.real.swap(v, ord),
                }
            }

            /// Atomic add; returns the previous value.
            pub fn fetch_add(&self, v: $prim, ord: Ordering) -> $prim {
                match self.model() {
                    Some((ex, tid, id)) => {
                        let old = ex.atomic_rmw(
                            tid,
                            id,
                            |x| (x as $prim).wrapping_add(v) as u64,
                            mord(ord),
                        ) as $prim;
                        self.real.store(old.wrapping_add(v), Ordering::Relaxed); // ordering: non-model mirror; the model layer owns ordering.
                        old
                    }
                    None => self.real.fetch_add(v, ord),
                }
            }

            /// Atomic subtract; returns the previous value.
            pub fn fetch_sub(&self, v: $prim, ord: Ordering) -> $prim {
                match self.model() {
                    Some((ex, tid, id)) => {
                        let old = ex.atomic_rmw(
                            tid,
                            id,
                            |x| (x as $prim).wrapping_sub(v) as u64,
                            mord(ord),
                        ) as $prim;
                        self.real.store(old.wrapping_sub(v), Ordering::Relaxed); // ordering: non-model mirror; the model layer owns ordering.
                        old
                    }
                    None => self.real.fetch_sub(v, ord),
                }
            }

            /// Atomic max; returns the previous value.
            pub fn fetch_max(&self, v: $prim, ord: Ordering) -> $prim {
                match self.model() {
                    Some((ex, tid, id)) => {
                        let old = ex.atomic_rmw(tid, id, |x| (x as $prim).max(v) as u64, mord(ord))
                            as $prim;
                        self.real.store(old.max(v), Ordering::Relaxed); // ordering: non-model mirror; the model layer owns ordering.
                        old
                    }
                    None => self.real.fetch_max(v, ord),
                }
            }

            /// Strong compare-exchange.
            pub fn compare_exchange(
                &self,
                cur: $prim,
                new: $prim,
                ok: Ordering,
                fail: Ordering,
            ) -> Result<$prim, $prim> {
                match self.model() {
                    Some((ex, tid, id)) => {
                        let r =
                            ex.atomic_cas(tid, id, cur as u64, new as u64, mord(ok), mord(fail));
                        if r.is_ok() {
                            self.real.store(new, Ordering::Relaxed); // ordering: non-model mirror; the model layer owns ordering.
                        }
                        r.map(|v| v as $prim).map_err(|v| v as $prim)
                    }
                    None => self.real.compare_exchange(cur, new, ok, fail),
                }
            }

            /// Weak compare-exchange (modelled identically to the strong
            /// one — the model has no spurious failures).
            pub fn compare_exchange_weak(
                &self,
                cur: $prim,
                new: $prim,
                ok: Ordering,
                fail: Ordering,
            ) -> Result<$prim, $prim> {
                self.compare_exchange(cur, new, ok, fail)
            }

            /// Exclusive access to the value (no yield: `&mut self`
            /// proves no concurrent model thread can touch it).
            pub fn get_mut(&mut self) -> &mut $prim {
                self.real.get_mut()
            }

            /// Consume, returning the latest value.
            pub fn into_inner(self) -> $prim {
                self.real.into_inner()
            }
        }
    };
}

atomic_int!(AtomicU32, std::sync::atomic::AtomicU32, u32);
atomic_int!(AtomicU64, std::sync::atomic::AtomicU64, u64);
atomic_int!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

/// Model-aware atomic pointer (pointers are modelled as their address).
#[derive(Debug)]
pub struct AtomicPtr<T> {
    real: std::sync::atomic::AtomicPtr<T>,
    id: LazyId,
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> AtomicPtr<T> {
    /// Create with an initial pointer.
    pub const fn new(p: *mut T) -> Self {
        Self {
            real: std::sync::atomic::AtomicPtr::new(p),
            id: LazyId::new(),
        }
    }

    fn model(&self) -> Option<(Arc<Execution>, usize, u32)> {
        let (ex, tid) = model_ctx()?;
        let id = self.id.get(&ex, || {
            // ordering: non-model mirror; the model layer owns ordering.
            ex.register_atomic(tid, self.real.load(Ordering::Relaxed) as u64)
        });
        Some((ex, tid, id))
    }

    /// Atomic pointer load.
    pub fn load(&self, ord: Ordering) -> *mut T {
        match self.model() {
            Some((ex, tid, id)) => ex.atomic_load(tid, id, mord(ord)) as usize as *mut T,
            None => self.real.load(ord),
        }
    }

    /// Atomic pointer store.
    pub fn store(&self, p: *mut T, ord: Ordering) {
        match self.model() {
            Some((ex, tid, id)) => {
                ex.atomic_store(tid, id, p as u64, mord(ord));
                self.real.store(p, Ordering::Relaxed); // ordering: non-model mirror; the model layer owns ordering.
            }
            None => self.real.store(p, ord),
        }
    }

    /// Atomic pointer swap; returns the previous pointer.
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        match self.model() {
            Some((ex, tid, id)) => {
                let old = ex.atomic_rmw(tid, id, |_| p as u64, mord(ord)) as usize as *mut T;
                self.real.store(p, Ordering::Relaxed); // ordering: non-model mirror; the model layer owns ordering.
                old
            }
            None => self.real.swap(p, ord),
        }
    }

    /// Strong pointer compare-exchange.
    pub fn compare_exchange(
        &self,
        cur: *mut T,
        new: *mut T,
        ok: Ordering,
        fail: Ordering,
    ) -> Result<*mut T, *mut T> {
        match self.model() {
            Some((ex, tid, id)) => {
                let r = ex.atomic_cas(tid, id, cur as u64, new as u64, mord(ok), mord(fail));
                if r.is_ok() {
                    self.real.store(new, Ordering::Relaxed); // ordering: non-model mirror; the model layer owns ordering.
                }
                r.map(|v| v as usize as *mut T)
                    .map_err(|v| v as usize as *mut T)
            }
            None => self.real.compare_exchange(cur, new, ok, fail),
        }
    }

    /// Exclusive access to the pointer.
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.real.get_mut()
    }
}

// ---------------------------------------------------------------------------
// Mutex / Condvar (parking_lot-flavoured API)
// ---------------------------------------------------------------------------

/// Model-aware mutex with a `parking_lot`-style infallible API.
pub struct Mutex<T> {
    /// Passthrough exclusion; the model uses the scheduler instead.
    raw: std::sync::Mutex<()>,
    data: std::cell::UnsafeCell<T>,
    id: LazyId,
}

impl<T> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

// SAFETY: in passthrough mode `raw` provides exclusion for `data`; in
// model mode the scheduler's held-map does (only the token-holding
// thread runs, and the model grants a lock only while it is free).
unsafe impl<T: Send> Send for Mutex<T> {}
// SAFETY: as above — `&Mutex<T>` only hands out `&T`/`&mut T` through a
// guard whose uniqueness is enforced by `raw` or by the model.
unsafe impl<T: Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]; unlocks (as a model yield point) on drop.
pub struct MutexGuard<'a, T> {
    m: &'a Mutex<T>,
    raw: Option<std::sync::MutexGuard<'a, ()>>,
    model: Option<(Arc<Execution>, usize, u32)>,
}

impl<T> Mutex<T> {
    /// Create a mutex protecting `t`.
    pub const fn new(t: T) -> Self {
        Self {
            raw: std::sync::Mutex::new(()),
            data: std::cell::UnsafeCell::new(t),
            id: LazyId::new(),
        }
    }

    fn model(&self) -> Option<(Arc<Execution>, usize, u32)> {
        let (ex, tid) = model_ctx()?;
        let id = self.id.get(&ex, || ex.register_sync_obj());
        Some((ex, tid, id))
    }

    /// Lock, blocking (a scheduler-visible blocking op under the model).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.model() {
            Some((ex, tid, id)) => {
                ex.mutex_lock(tid, id);
                MutexGuard {
                    m: self,
                    raw: None,
                    model: Some((ex, tid, id)),
                }
            }
            None => MutexGuard {
                m: self,
                raw: Some(self.raw.lock().unwrap_or_else(|p| p.into_inner())),
                model: None,
            },
        }
    }

    /// Non-blocking lock attempt.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.model() {
            Some((ex, tid, id)) => {
                if ex.mutex_try_lock(tid, id) {
                    Some(MutexGuard {
                        m: self,
                        raw: None,
                        model: Some((ex, tid, id)),
                    })
                } else {
                    None
                }
            }
            None => match self.raw.try_lock() {
                Ok(g) => Some(MutexGuard {
                    m: self,
                    raw: Some(g),
                    model: None,
                }),
                Err(std::sync::TryLockError::WouldBlock) => None,
                Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                    m: self,
                    raw: Some(p.into_inner()),
                    model: None,
                }),
            },
        }
    }

    /// Exclusive access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard's existence proves exclusion (raw lock held
        // in passthrough; model grant in model mode).
        unsafe { &*self.m.data.get() }
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as in `deref` — exclusive while the guard lives.
        unsafe { &mut *self.m.data.get() }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some((ex, tid, id)) = self.model.take() {
            if ex.is_ended() || std::thread::panicking() {
                // Teardown: release scheduler state without yielding
                // (yielding could panic inside this Drop).
                ex.mutex_unlock_abort(tid, id);
            } else {
                ex.mutex_unlock(tid, id);
            }
        }
    }
}

/// Result of a timed condvar wait.
pub struct WaitTimeoutResult(pub(crate) bool);

impl WaitTimeoutResult {
    /// True iff the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Model-aware condition variable. Under the model, timed waits use
/// *virtual* time: they only time out when no other thread is runnable,
/// so a fired timeout is a scheduler-proven liveness fact, not a race
/// against the wall clock.
#[derive(Default)]
pub struct Condvar {
    real: std::sync::Condvar,
    id: LazyId,
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

impl Condvar {
    /// Create a condvar.
    pub const fn new() -> Self {
        Self {
            real: std::sync::Condvar::new(),
            id: LazyId::new(),
        }
    }

    fn model_for<T>(&self, guard: &MutexGuard<'_, T>) -> Option<(Arc<Execution>, usize, u32, u32)> {
        let (ex, tid, mid) = guard.model.clone()?;
        if ex.is_ended() || std::thread::panicking() {
            return None;
        }
        let cid = self.id.get(&ex, || ex.register_sync_obj());
        Some((ex, tid, mid, cid))
    }

    /// Block until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        match self.model_for(guard) {
            Some((ex, tid, mid, cid)) => {
                ex.cv_wait(tid, cid, mid, false);
            }
            None => {
                if let Some(raw) = guard.raw.take() {
                    guard.raw = Some(self.real.wait(raw).unwrap_or_else(|p| p.into_inner()));
                }
            }
        }
    }

    /// Block until notified or the deadline passes (virtual under the
    /// model: fires only when nothing else can run).
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        match self.model_for(guard) {
            Some((ex, tid, mid, cid)) => WaitTimeoutResult(ex.cv_wait(tid, cid, mid, true)),
            None => {
                let Some(raw) = guard.raw.take() else {
                    // Model guard on an ended run: nothing to wait for.
                    return WaitTimeoutResult(true);
                };
                let dur = deadline.saturating_duration_since(Instant::now());
                let (raw, r) = self
                    .real
                    .wait_timeout(raw, dur)
                    .unwrap_or_else(|p| p.into_inner());
                guard.raw = Some(raw);
                WaitTimeoutResult(r.timed_out())
            }
        }
    }

    /// Wake one waiter (scheduler-chosen under the model).
    pub fn notify_one(&self) {
        match model_ctx() {
            Some((ex, tid)) => {
                let cid = self.id.get(&ex, || ex.register_sync_obj());
                ex.cv_notify(tid, cid, false);
            }
            None => self.real.notify_one(),
        }
    }

    /// Wake all waiters; returns how many were woken (0 in passthrough,
    /// where std does not report a count).
    pub fn notify_all(&self) -> usize {
        match model_ctx() {
            Some((ex, tid)) => {
                let cid = self.id.get(&ex, || ex.register_sync_obj());
                ex.cv_notify(tid, cid, true)
            }
            None => {
                self.real.notify_all();
                0
            }
        }
    }
}
