//! Spin hints. Under the model a spin hint is a no-op: the atomic load
//! the spin re-checks is itself a yield point, so the scheduler already
//! controls when the spinning thread observes new values.

/// Drop-in for `std::hint::spin_loop`.
pub fn spin_loop() {
    if crate::exec::current().is_none() {
        std::hint::spin_loop();
    }
}
