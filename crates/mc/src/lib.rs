//! `mc` — an in-repo deterministic concurrency model checker.
//!
//! A loom/shuttle-style controlled scheduler with no external
//! dependencies: test closures run under a virtual scheduler where every
//! shimmed atomic access, lock acquisition, and condvar operation is a
//! yield point, so the checker — not the OS — decides every
//! interleaving. Schedules are explored either pseudo-randomly with
//! replayable per-schedule seeds, or exhaustively with sleep-set
//! pruning (DPOR-lite). Along the way a vector-clock race detector
//! checks tracked `UnsafeCell` accesses, and an allowed-stale model for
//! `Relaxed` loads catches ordering bugs that pass every test on x86.
//!
//! See `crates/mc/README.md` for the replay workflow
//! (`MC_SEED`/`MC_SCHEDULES`/`MC_REPLAY`) and the model's documented
//! soundness gaps.
//!
//! ```
//! use mc::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! let report = mc::Checker::new("counter").schedules(64).check(|| {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let c2 = Arc::clone(&c);
//!     let t = mc::thread::spawn(move || {
//!         // ordering: model-checked example; Relaxed RMWs still count.
//!         c2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     // ordering: as above.
//!     c.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     // ordering: as above.
//!     assert_eq!(c.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.schedules_run >= 1);
//! ```

#![warn(missing_docs)]

pub mod cell;
mod checker;
mod clock;
mod exec;
pub mod hint;
pub mod sync_impl;
pub mod thread;

pub use checker::{timeouts_fired, Checker, Failure, Report};
pub use clock::MAX_THREADS;

/// Model-aware `Mutex`/`Condvar` and atomics (`mc::sync::atomic::*`).
pub mod sync {
    pub use crate::sync_impl::{Condvar, Mutex, MutexGuard, WaitTimeoutResult};

    /// Model-aware atomic integers and pointers.
    pub mod atomic {
        pub use crate::sync_impl::{AtomicPtr, AtomicU32, AtomicU64, AtomicUsize};
        pub use std::sync::atomic::Ordering;
    }
}
