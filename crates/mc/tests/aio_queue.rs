//! Model-checked invariants for the async I/O completion-queue protocol
//! (`wafl_blockdev::CompletionRing`, built with `--features mc` so
//! every sequenced-slot atomic is a scheduler yield point).
//!
//! The ring is the lock-free MPMC hand-off between `blockdev::aio`
//! workers (producers) and pollers/drainers (consumers). Its contract,
//! checked here across submit/poll/drain interleavings:
//!
//! * **no completion lost** — every pushed value is eventually popped
//!   exactly once (none vanish into a recycled slot);
//! * **no completion double-delivered** — two consumers never pop the
//!   same value (the head CAS grants exclusive slot access);
//! * **drain is a true barrier** — a drainer that has observed
//!   `completed == submitted` (the `AioEngine::drain` spin condition,
//!   modeled with the same Release/Acquire counter pair) must find
//!   *every* completion in the ring: the Release bump after the push
//!   publishes the slot write to the counter's Acquire reader.
//!
//! A final detection-power test proves the harness catches a broken
//! hand-off (a flag-free queue whose unsynchronised cell access the
//! vector-clock race detector must flag) — the license for the passing
//! models. Structure mirrors `arena_reclaim.rs`: seeded-random
//! schedules broad and cheap, bounded-exhaustive DFS systematic over a
//! shorter model. Replay failures with `MC_REPLAY=<seed>`; see
//! `crates/mc/README.md`.

use mc::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wafl_blockdev::CompletionRing;

// ---------------------------------------------------------------------------
// Invariant 1: nothing lost, nothing double-delivered.
// ---------------------------------------------------------------------------

/// Two producers push disjoint tickets through a capacity-2 ring (so
/// slot recycling and the full-ring retry path are both exercised)
/// while two consumers pop concurrently; the main thread then drains
/// the leftovers. The union of everything popped must be exactly the
/// set pushed.
fn no_loss_no_dup_model() {
    let ring: Arc<CompletionRing<u64>> = Arc::new(CompletionRing::with_capacity(2));
    let producers: Vec<_> = (0..2u64)
        .map(|p| {
            let ring = Arc::clone(&ring);
            mc::thread::spawn(move || {
                for i in 0..2u64 {
                    let mut v = p * 2 + i;
                    // Full ring: yield to let a consumer make room.
                    while let Err(back) = ring.try_push(v) {
                        v = back;
                        mc::thread::yield_now();
                    }
                }
            })
        })
        .collect();
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let ring = Arc::clone(&ring);
            mc::thread::spawn(move || {
                let mut got = Vec::new();
                // Each consumer makes a bounded number of attempts; the
                // main thread sweeps whatever remains after the joins.
                for _ in 0..4 {
                    if let Some(v) = ring.try_pop() {
                        got.push(v);
                    }
                }
                got
            })
        })
        .collect();
    for p in producers {
        p.join().unwrap();
    }
    let mut all: Vec<u64> = consumers
        .into_iter()
        .flat_map(|c| c.join().unwrap())
        .collect();
    while let Some(v) = ring.try_pop() {
        all.push(v);
    }
    all.sort_unstable();
    assert_eq!(
        all,
        vec![0, 1, 2, 3],
        "every completion delivered exactly once"
    );
}

#[test]
fn completions_never_lost_or_double_delivered() {
    mc::Checker::new("aio-ring-no-loss-no-dup")
        .schedules(400)
        .check(no_loss_no_dup_model);
}

/// Exhaustive variant over a smaller model: one producer, two racing
/// consumers, ring capacity ≥ pushes (no unbounded retry spin, so the
/// DFS frontier stays finite).
#[test]
fn completions_never_lost_or_double_delivered_exhaustive() {
    let report = mc::Checker::new("aio-ring-no-loss-dfs")
        .exhaustive()
        .schedules(40_000)
        .check(|| {
            let ring: Arc<CompletionRing<u64>> = Arc::new(CompletionRing::with_capacity(4));
            let producer = {
                let ring = Arc::clone(&ring);
                mc::thread::spawn(move || {
                    for v in 0..3u64 {
                        ring.try_push(v).expect("capacity covers all pushes");
                    }
                })
            };
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let ring = Arc::clone(&ring);
                    mc::thread::spawn(move || {
                        let mut got = Vec::new();
                        for _ in 0..2 {
                            if let Some(v) = ring.try_pop() {
                                got.push(v);
                            }
                        }
                        got
                    })
                })
                .collect();
            producer.join().unwrap();
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|c| c.join().unwrap())
                .collect();
            while let Some(v) = ring.try_pop() {
                all.push(v);
            }
            all.sort_unstable();
            assert_eq!(all, vec![0, 1, 2], "exactly-once delivery");
        });
    assert!(report.schedules_run >= 1);
}

// ---------------------------------------------------------------------------
// Invariant 2: drain is a true barrier.
// ---------------------------------------------------------------------------

/// The drain protocol of `AioEngine`, reduced to its synchronization
/// skeleton: a worker pushes a completion into the ring and *then*
/// bumps `completed` with Release; the drainer spins on
/// `completed == submitted` with Acquire and only then sweeps the ring.
/// The barrier property: after the spin exits, every completion is in
/// the ring and the sweep misses nothing — no completion may still be
/// "in flight between the slot write and the counter bump" from the
/// drainer's point of view.
fn drain_barrier_model() {
    const SUBMITTED: u64 = 3;
    let ring: Arc<CompletionRing<u64>> = Arc::new(CompletionRing::with_capacity(4));
    let completed = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..2u64)
        .map(|w| {
            let ring = Arc::clone(&ring);
            let completed = Arc::clone(&completed);
            // Worker 0 services tickets {0, 1}, worker 1 ticket {2}.
            let tickets: Vec<u64> = if w == 0 { vec![0, 1] } else { vec![2] };
            mc::thread::spawn(move || {
                for t in tickets {
                    ring.try_push(t).expect("capacity covers all pushes");
                    // ordering: Release — publishes the slot write to the
                    // drainer's Acquire load of the counter, exactly as the
                    // worker's `completed.fetch_add(1, Release)` does in
                    // `blockdev::aio::complete`; pairs-with: mc.aio-completed.
                    completed.fetch_add(1, Ordering::Release);
                }
            })
        })
        .collect();
    // The drainer: spin until all submissions completed, then sweep.
    let mut spins = 0;
    // ordering: Acquire — pairs with the workers' Release bumps; seeing
    // `completed == SUBMITTED` implies all ring writes are visible;
    // pairs-with: mc.aio-completed.
    while completed.load(Ordering::Acquire) < SUBMITTED {
        mc::thread::yield_now();
        spins += 1;
        assert!(spins < 1_000, "drain spin failed to converge");
    }
    let mut swept = Vec::new();
    while let Some(v) = ring.try_pop() {
        swept.push(v);
    }
    swept.sort_unstable();
    assert_eq!(
        swept,
        vec![0, 1, 2],
        "drain barrier missed an in-flight completion"
    );
    for w in workers {
        w.join().unwrap();
    }
}

#[test]
fn drain_observes_every_completion() {
    mc::Checker::new("aio-drain-barrier")
        .schedules(400)
        .check(drain_barrier_model);
}

/// Spin-free variant for the exhaustive DFS (a spin loop would make the
/// starvation schedule — drainer runs 1000 times before any worker — a
/// reachable "violation"): the barrier property stated conditionally.
/// *If* a single Acquire load observes `completed == submitted`, the
/// sweep must find every completion. DFS covers both the observed and
/// unobserved branches.
#[test]
fn drain_observes_every_completion_exhaustive() {
    let report = mc::Checker::new("aio-drain-barrier-dfs")
        .exhaustive()
        .schedules(40_000)
        .check(|| {
            const SUBMITTED: u64 = 2;
            let ring: Arc<CompletionRing<u64>> = Arc::new(CompletionRing::with_capacity(4));
            let completed = Arc::new(AtomicU64::new(0));
            let workers: Vec<_> = (0..2u64)
                .map(|t| {
                    let ring = Arc::clone(&ring);
                    let completed = Arc::clone(&completed);
                    mc::thread::spawn(move || {
                        ring.try_push(t).expect("capacity covers all pushes");
                        // ordering: Release — publishes the slot write, as in
                        // `blockdev::aio::complete`;
                        // pairs-with: mc.aio-completed.
                        completed.fetch_add(1, Ordering::Release);
                    })
                })
                .collect();
            // ordering: Acquire — pairs with the workers' Release bumps;
            // pairs-with: mc.aio-completed.
            if completed.load(Ordering::Acquire) == SUBMITTED {
                let mut swept = Vec::new();
                while let Some(v) = ring.try_pop() {
                    swept.push(v);
                }
                swept.sort_unstable();
                assert_eq!(
                    swept,
                    vec![0, 1],
                    "drain barrier missed an in-flight completion"
                );
            }
            for w in workers {
                w.join().unwrap();
            }
        });
    assert!(report.schedules_run >= 1);
}

// ---------------------------------------------------------------------------
// Detection power: the harness must CATCH a broken hand-off.
// ---------------------------------------------------------------------------

/// A deliberately broken completion queue: the producer writes the
/// payload cell and raises a ready flag, but with Relaxed ordering on
/// both sides — no happens-before edge from slot write to consumer
/// read. The vector-clock race detector must flag the unsynchronised
/// cell access, proving the passing models above would catch a ring
/// whose seq protocol lost its Release/Acquire pairing.
#[test]
fn checker_finds_unsynchronized_completion_handoff() {
    use mc::sync::atomic::AtomicU32;

    struct BrokenSlot {
        val: mc::cell::UnsafeCell<u64>,
        ready: AtomicU32,
    }
    // SAFETY: deliberately racy test fixture; the point is that the
    // checker, not the type system, rejects the missing happens-before.
    unsafe impl Send for BrokenSlot {}
    // SAFETY: as above.
    unsafe impl Sync for BrokenSlot {}

    let failure = mc::Checker::new("aio-broken-handoff")
        .schedules(200)
        .try_check(|| {
            let slot = Arc::new(BrokenSlot {
                val: mc::cell::UnsafeCell::new(0),
                ready: AtomicU32::new(0),
            });
            let producer = {
                let slot = Arc::clone(&slot);
                mc::thread::spawn(move || {
                    // SAFETY: intentionally unsound — the planted race
                    // under test (no synchronization with the reader).
                    slot.val.with_mut(|p| unsafe { *p = 7 });
                    // ordering: Relaxed — deliberately NOT Release; the
                    // bug under test.
                    slot.ready.store(1, Ordering::Relaxed);
                })
            };
            // ordering: Relaxed — deliberately NOT Acquire; the bug
            // under test.
            if slot.ready.load(Ordering::Relaxed) == 1 {
                // SAFETY: intentionally unsound — see above.
                let v = slot.val.with(|p| unsafe { *p });
                assert_eq!(v, 7);
            }
            producer.join().unwrap();
        })
        .expect_err("checker must detect the flag-free hand-off race");
    assert!(
        failure.message.contains("data race"),
        "unexpected failure message: {}",
        failure.message
    );
}
