//! Self-tests for the checker engine: these validate the *checker*, not
//! the code under check. Half of them are detection-power tests — they
//! hand the checker a deliberately buggy model and require it to fail —
//! because a model checker that cannot find planted bugs proves nothing
//! when it passes.

use mc::sync::atomic::{AtomicU64, Ordering};
use mc::sync::{Condvar, Mutex};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Two racing read-modify-write-by-hand increments (load; store) lose an
/// update in some interleaving; the checker must find it.
#[test]
fn finds_lost_update_between_plain_load_store() {
    let failure = mc::Checker::new("lost-update")
        .schedules(200)
        .try_check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let mut ts = Vec::new();
            for _ in 0..2 {
                let c = Arc::clone(&c);
                ts.push(mc::thread::spawn(move || {
                    // ordering: deliberately non-atomic increment (the bug
                    // under test); SeqCst so only the interleaving, not
                    // stale values, can break it.
                    let v = c.load(Ordering::SeqCst);
                    c.store(v + 1, Ordering::SeqCst); // ordering: see comment above
                }));
            }
            for t in ts {
                t.join().unwrap();
            }
            // ordering: test harness readback.
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("checker must find the lost update");
    assert!(failure.message.contains("lost update"), "{failure}");
    assert!(failure.sseed.is_some(), "random mode must report a seed");
}

/// The same failing model must fail identically when re-run: the whole
/// point of seeded schedules is bit-for-bit reproducibility.
#[test]
fn failures_are_deterministic_across_reruns() {
    let run = || {
        mc::Checker::new("determinism")
            .schedules(200)
            .try_check(|| {
                let c = Arc::new(AtomicU64::new(0));
                let c2 = Arc::clone(&c);
                let t = mc::thread::spawn(move || {
                    // ordering: planted lost-update bug (see above).
                    let v = c2.load(Ordering::SeqCst);
                    c2.store(v + 1, Ordering::SeqCst); // ordering: see comment above
                });
                // ordering: planted lost-update bug (see above).
                let v = c.load(Ordering::SeqCst);
                c.store(v + 1, Ordering::SeqCst); // ordering: see comment above
                t.join().unwrap();
                // ordering: test harness readback.
                assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
            })
            .expect_err("must fail")
    };
    let a = run();
    let b = run();
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.sseed, b.sseed);
    assert_eq!(a.message, b.message);
}

/// Mutex-protected increments never lose updates, under every schedule.
#[test]
fn mutex_excludes_under_all_schedules() {
    let report = mc::Checker::new("mutex-counter").schedules(150).check(|| {
        let c = Arc::new(Mutex::new(0u64));
        let mut ts = Vec::new();
        for _ in 0..3 {
            let c = Arc::clone(&c);
            ts.push(mc::thread::spawn(move || {
                *c.lock() += 1;
            }));
        }
        for t in ts {
            t.join().unwrap();
        }
        assert_eq!(*c.lock(), 3);
    });
    assert!(report.schedules_run >= 1);
}

/// Proper RMW increments are atomic even at `Relaxed`.
#[test]
fn fetch_add_is_atomic() {
    mc::Checker::new("fetch-add").schedules(100).check(|| {
        let c = Arc::new(AtomicU64::new(0));
        let c2 = Arc::clone(&c);
        let t = mc::thread::spawn(move || {
            // ordering: Relaxed suffices — RMW atomicity is independent
            // of memory ordering; only the count matters here.
            c2.fetch_add(1, Ordering::Relaxed);
        });
        // ordering: as above.
        c.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        // ordering: join above established happens-before with both adds.
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
}

/// Message passing through a Relaxed flag is broken: the data load may
/// observe a stale value because nothing orders it after the data store.
/// TSan-style or stress tests on x86 structurally cannot catch this;
/// the allowed-stale model must.
#[test]
fn catches_relaxed_publication_bug() {
    let failure = mc::Checker::new("relaxed-pub")
        .schedules(300)
        .try_check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let flag = Arc::new(AtomicU64::new(0));
            let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
            let t = mc::thread::spawn(move || {
                // ordering: payload write; deliberately Relaxed — the
                // planted bug is the missing release/acquire pair.
                d2.store(42, Ordering::Relaxed);
                // ordering: planted bug — should be Release.
                f2.store(1, Ordering::Relaxed);
            });
            // ordering: planted bug — should be Acquire.
            if flag.load(Ordering::Relaxed) == 1 {
                // ordering: Relaxed payload read, may legally be stale.
                let v = data.load(Ordering::Relaxed);
                assert_eq!(v, 42, "stale publication");
            }
            t.join().unwrap();
        })
        .expect_err("checker must catch the missing release/acquire pair");
    assert!(failure.message.contains("stale publication"), "{failure}");
}

/// The fixed version of the same protocol — Release store, Acquire load
/// — must pass every schedule: the acquire join makes the stale value
/// coherence-forbidden.
#[test]
fn release_acquire_publication_is_clean() {
    mc::Checker::new("relacq-pub").schedules(300).check(|| {
        let data = Arc::new(AtomicU64::new(0));
        let flag = Arc::new(AtomicU64::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = mc::thread::spawn(move || {
            // ordering: payload write ordered before the Release flag
            // store below.
            d2.store(42, Ordering::Relaxed);
            // ordering: Release publishes the payload to Acquire loaders;
            // pairs-with: mc.self-flag.
            f2.store(1, Ordering::Release);
        });
        // ordering: Acquire pairs with the Release store of the flag;
        // pairs-with: mc.self-flag.
        if flag.load(Ordering::Acquire) == 1 {
            // ordering: happens-after the payload write via the
            // acquired flag; stale 0 is coherence-forbidden.
            assert_eq!(data.load(Ordering::Relaxed), 42);
        }
        t.join().unwrap();
    });
}

/// The race detector flags unsynchronised cell access with both source
/// locations.
#[test]
fn detects_data_race_on_tracked_cell() {
    struct Shared(mc::cell::UnsafeCell<u64>);
    // SAFETY: deliberately racy test fixture; the point is that the
    // checker, not the type system, rejects it.
    unsafe impl Send for Shared {}
    // SAFETY: as above.
    unsafe impl Sync for Shared {}

    let failure = mc::Checker::new("race")
        .schedules(100)
        .try_check(|| {
            let s = Arc::new(Shared(mc::cell::UnsafeCell::new(0)));
            let s2 = Arc::clone(&s);
            let t = mc::thread::spawn(move || {
                // SAFETY: single-threaded under the model token; the
                // *race* (no happens-before with the main thread's
                // write) is the planted bug.
                s2.0.with_mut(|p| unsafe { *p += 1 });
            });
            // SAFETY: as above — planted race.
            s.0.with_mut(|p| unsafe { *p += 1 });
            t.join().unwrap();
        })
        .expect_err("checker must detect the cell race");
    assert!(failure.message.contains("data race"), "{failure}");
    assert!(failure.message.contains("checker_self.rs"), "{failure}");
}

/// Mutex-protected cell access is race-free.
#[test]
fn mutex_protected_cell_is_race_free() {
    struct Shared {
        m: Mutex<()>,
        v: mc::cell::UnsafeCell<u64>,
    }
    // SAFETY: all cell access happens under `m` (checked by the model).
    unsafe impl Send for Shared {}
    // SAFETY: as above.
    unsafe impl Sync for Shared {}

    mc::Checker::new("guarded-cell").schedules(100).check(|| {
        let s = Arc::new(Shared {
            m: Mutex::new(()),
            v: mc::cell::UnsafeCell::new(0),
        });
        let s2 = Arc::clone(&s);
        let t = mc::thread::spawn(move || {
            let _g = s2.m.lock();
            // SAFETY: exclusive under `m`.
            s2.v.with_mut(|p| unsafe { *p += 1 });
        });
        {
            let _g = s.m.lock();
            // SAFETY: exclusive under `m`.
            s.v.with_mut(|p| unsafe { *p += 1 });
        }
        t.join().unwrap();
        let _g = s.m.lock();
        // SAFETY: exclusive under `m`; both writers joined or locked out.
        s.v.with(|p| assert_eq!(unsafe { *p }, 2));
    });
}

/// A waiter whose notify is missing deadlocks (untimed) — the scheduler
/// proves the lost wakeup instead of hanging the test.
#[test]
fn detects_deadlock_from_missing_notify() {
    let failure = mc::Checker::new("missing-notify")
        .schedules(50)
        .try_check(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = mc::thread::spawn(move || {
                // Planted bug: sets the flag but never notifies.
                *p2.0.lock() = true;
            });
            let mut g = pair.0.lock();
            // Predicate checked once before waiting — combined with the
            // missing notify this deadlocks in schedules where the
            // setter runs after the predicate check.
            if !*g {
                pair.1.wait(&mut g);
            }
            drop(g);
            t.join().unwrap();
        })
        .expect_err("checker must detect the deadlock");
    assert!(failure.message.contains("deadlock"), "{failure}");
}

/// Timed waits use virtual time: with a correct notify protocol the
/// timeout never fires (no lost wakeup); `mc::timeouts_fired()` is the
/// witness.
#[test]
fn correct_notify_protocol_never_times_out() {
    let report = mc::Checker::new("no-lost-wakeup").schedules(200).check(|| {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = mc::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_one();
        });
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut g = pair.0.lock();
        while !*g {
            let r = pair.1.wait_until(&mut g, deadline);
            assert!(
                !r.timed_out(),
                "lost wakeup: timed out with a pending notify"
            );
        }
        drop(g);
        t.join().unwrap();
        assert_eq!(mc::timeouts_fired(), 0, "virtual timeout fired");
    });
    assert!(report.timeouts == 0);
}

/// A timed wait with no notifier fires the virtual timeout (rather than
/// deadlocking), and reports it.
#[test]
fn timed_wait_without_notify_fires_virtual_timeout() {
    let report = mc::Checker::new("virtual-timeout").schedules(20).check(|| {
        let pair = (Mutex::new(()), Condvar::new());
        let mut g = pair.0.lock();
        let r = pair
            .1
            .wait_until(&mut g, Instant::now() + Duration::from_secs(60));
        assert!(r.timed_out());
        assert_eq!(mc::timeouts_fired(), 1);
    });
    assert!(report.timeouts >= 1);
}

/// Exhaustive mode on a correct 2-thread model explores the (pruned)
/// tree to completion and agrees there is no bug.
#[test]
fn exhaustive_mode_completes_on_correct_model() {
    let report = mc::Checker::new("exhaustive-ok")
        .schedules(5000)
        .exhaustive()
        .check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = mc::thread::spawn(move || {
                // ordering: atomic RMW; ordering irrelevant to the count.
                c2.fetch_add(1, Ordering::Relaxed);
            });
            // ordering: as above.
            c.fetch_add(1, Ordering::Relaxed);
            t.join().unwrap();
            // ordering: reads after join (happens-before established).
            assert_eq!(c.load(Ordering::SeqCst), 2);
        });
    assert!(report.complete, "DFS should finish within budget");
    assert!(report.schedules_run >= 2, "must explore both orders");
}

/// Exhaustive mode finds the lost update without any randomness.
#[test]
fn exhaustive_mode_finds_lost_update() {
    let failure = mc::Checker::new("exhaustive-bug")
        .schedules(5000)
        .exhaustive()
        .try_check(|| {
            let c = Arc::new(AtomicU64::new(0));
            let c2 = Arc::clone(&c);
            let t = mc::thread::spawn(move || {
                // ordering: planted lost-update bug.
                let v = c2.load(Ordering::SeqCst);
                c2.store(v + 1, Ordering::SeqCst); // ordering: see comment above
            });
            // ordering: planted lost-update bug.
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst); // ordering: see comment above
            t.join().unwrap();
            // ordering: test harness readback.
            assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("exhaustive mode must find the lost update");
    assert!(failure.message.contains("lost update"), "{failure}");
}

/// Sleep sets prune: for two threads touching *different* atomics the
/// orders commute, so the pruned tree is much smaller than 2^steps.
#[test]
fn sleep_sets_prune_independent_ops() {
    let report = mc::Checker::new("sleep-prune")
        .schedules(5000)
        .exhaustive()
        .check(|| {
            let a = Arc::new(AtomicU64::new(0));
            let b = Arc::new(AtomicU64::new(0));
            let a2 = Arc::clone(&a);
            let t = mc::thread::spawn(move || {
                // ordering: independent object; any order is equivalent.
                a2.store(1, Ordering::SeqCst);
            });
            // ordering: independent object; any order is equivalent.
            b.store(1, Ordering::SeqCst);
            t.join().unwrap();
        });
    assert!(report.complete);
    // Without pruning this would need every interleaving of the two
    // stores plus bookkeeping steps; with sleep sets a handful suffice.
    assert!(
        report.schedules_run <= 16,
        "expected heavy pruning, ran {} schedules",
        report.schedules_run
    );
}
