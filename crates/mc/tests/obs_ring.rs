//! Model-checked invariants for `obs::EventRing` (built with
//! `--features mc`, so every seqlock atomic below is a scheduler yield
//! point). The ring is the per-thread trace buffer behind
//! `trace_span!`/`trace_instant!`; its contract is a single writer,
//! concurrent snapshot readers, overwrite-oldest with a drop counter.
//!
//! The checked invariant is the **accounting rule** of
//! `crates/obs/src/ring.rs`: in any snapshot, every recorded event is
//! either readable or already counted dropped —
//! `events.len() + dropped >= head`. No event may vanish before the
//! drop counter says so (the writer increments `dropped` *before* its
//! busy swap exactly so this holds under every interleaving).
//!
//! Replay a failure with `MC_REPLAY=<seed> cargo test -p mc <test>`;
//! see `crates/mc/README.md`.

use obs::{EventKind, EventRing};
use std::sync::Arc;

/// Writer records 6 events into a capacity-4 ring while a reader takes
/// two snapshots at arbitrary points. Every snapshot must satisfy the
/// accounting invariant, return internally consistent payloads (never a
/// torn slot), and list events in order.
#[test]
fn no_event_lost_before_the_drop_counter_says_so() {
    mc::Checker::new("obs-ring-accounting")
        .schedules(400)
        .check(|| {
            let ring = Arc::new(EventRing::with_capacity(4));
            let w = {
                let ring = Arc::clone(&ring);
                mc::thread::spawn(move || {
                    for i in 0..6u64 {
                        // ts == dur == arg == event number: lets the
                        // reader detect a torn slot by equality.
                        ring.record(EventKind::Custom, i, i, i);
                    }
                })
            };
            let r = {
                let ring = Arc::clone(&ring);
                mc::thread::spawn(move || {
                    for _ in 0..2 {
                        let snap = ring.snapshot();
                        assert!(
                            snap.events.len() as u64 + snap.dropped >= snap.head,
                            "event lost before the drop counter said so: \
                             {} readable + {} dropped < head {}",
                            snap.events.len(),
                            snap.dropped,
                            snap.head
                        );
                        let mut prev = None;
                        for ev in &snap.events {
                            assert_eq!(ev.ts_ns, ev.seq, "slot holds another event's payload");
                            assert_eq!(ev.dur_ns, ev.seq, "torn slot accepted");
                            assert_eq!(ev.arg, ev.seq, "torn slot accepted");
                            if let Some(p) = prev {
                                assert!(ev.seq > p, "snapshot out of order");
                            }
                            prev = Some(ev.seq);
                        }
                    }
                })
            };
            w.join().unwrap();
            r.join().unwrap();
            // Quiescent accounting is exact: 6 recorded, 4 slots → the
            // final snapshot reads 4 events and counts 2 drops.
            let fin = ring.snapshot();
            assert_eq!(fin.head, 6);
            assert_eq!(fin.events.len() as u64 + fin.dropped, 6);
            assert_eq!(fin.dropped, 2);
            let seqs: Vec<u64> = fin.events.iter().map(|e| e.seq).collect();
            assert_eq!(seqs, vec![2, 3, 4, 5], "survivors are the newest");
        });
}
