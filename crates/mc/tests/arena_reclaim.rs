//! Model-checked invariants for the bounded Treiber arena
//! (`alligator::Arena`, built with `--features mc` so every atomic is a
//! scheduler yield point): epoch advancement never outruns a pinned
//! reader, the recycled free lists never double-allocate a node, and
//! chunk retirement never frees a slab a reader can still dereference.
//! A final detection-power test proves the checker (via the arena's
//! hard null-slab assert) catches the use-after-reclaim that skipping
//! the pin discipline produces — the license for the passing models.
//!
//! Each invariant runs in two modes, per the reclamation test plan:
//! seeded-random schedules (broad, cheap) and bounded-exhaustive DFS
//! (systematic over the short model). Replay a failure with
//! `MC_REPLAY=<seed> cargo test -p mc <test>`; see `crates/mc/README.md`.

use alligator::arena::CHUNK_NODES;
use alligator::{Arena, TreiberStack};
use mc::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Two mc-sized chunks: big enough to exercise chunk crossing and
/// retirement, small enough for exhaustive exploration.
const CAP: usize = 2 * CHUNK_NODES;

// ---------------------------------------------------------------------------
// Invariant 1: a pinned operation bounds the global epoch.
// ---------------------------------------------------------------------------

/// A pin observed at epoch `e` blocks the global epoch at `e + 1`: the
/// advancer must see every claimed slot at the current epoch before its
/// CAS, so a stale pin freezes the clock — the property the 2-epoch
/// grace period (and therefore every slab free) rests on.
fn epoch_bounded_by_pin_model() {
    let a = Arc::new(Arena::<u64>::new(CAP));
    let a1 = Arc::clone(&a);
    let reader = mc::thread::spawn(move || {
        let pin = a1.pin();
        // The pin registered at or before this sample, so the epoch can
        // advance at most once more while it lives.
        let e1 = a1.current_epoch();
        for _ in 0..2 {
            let now = a1.current_epoch();
            assert!(
                now <= e1 + 1,
                "epoch ran to {now} past pinned reader at {e1}"
            );
        }
        drop(pin);
    });
    let a2 = Arc::clone(&a);
    let advancer = mc::thread::spawn(move || {
        for _ in 0..3 {
            a2.try_advance();
        }
    });
    reader.join().unwrap();
    advancer.join().unwrap();
    // Quiescent (no pins): advancement must be possible again.
    assert!(a.try_advance(), "advance blocked with no pins outstanding");
}

#[test]
fn epoch_never_advances_past_pinned_reader() {
    mc::Checker::new("arena-epoch-bound")
        .schedules(400)
        .check(epoch_bounded_by_pin_model);
}

#[test]
fn epoch_never_advances_past_pinned_reader_exhaustive() {
    let report = mc::Checker::new("arena-epoch-bound-dfs")
        .exhaustive()
        .schedules(40_000)
        .check(epoch_bounded_by_pin_model);
    assert!(report.schedules_run >= 1);
}

// ---------------------------------------------------------------------------
// Invariant 2: the recycled free lists never hand one node to two owners.
// ---------------------------------------------------------------------------

/// Concurrent alloc/free churn through the slot caches and per-chunk
/// free lists (the tagged-CAS paths a stale Acquire read would turn
/// into ABA): a shared claim table witnesses that no index is ever
/// owned by two operations at once, and that every free really
/// relinquishes before the node can be re-issued.
fn no_double_alloc_model() {
    let a = Arc::new(Arena::<u64>::new(CAP));
    // claims[i] = current owners of node i; must never exceed 1.
    let claims: Arc<Vec<AtomicU32>> = Arc::new((0..CAP).map(|_| AtomicU32::new(0)).collect());
    let mut handles = Vec::new();
    for _ in 0..2 {
        let a = Arc::clone(&a);
        let claims = Arc::clone(&claims);
        handles.push(mc::thread::spawn(move || {
            let pin = a.pin();
            let mut held = Vec::new();
            for _ in 0..2 {
                // Transient ArenaFull under adversarial scheduling (a
                // peer parked mid-chunk-setup) is acceptable; double
                // allocation is not.
                if let Ok(idx) = a.alloc(&pin) {
                    // ordering: AcqRel — the claim handoff is the
                    // property under test; pairs with the release below;
                    // pairs-with: mc.arena-claims.
                    let prev = claims[idx as usize].fetch_add(1, Ordering::AcqRel);
                    assert_eq!(prev, 0, "node {idx} allocated to two owners");
                    held.push(idx);
                }
            }
            for idx in held {
                // Relinquish the claim *before* the free so the peer's
                // re-allocation of a recycled index observes 0.
                // ordering: AcqRel — pairs with the acquire above;
                // pairs-with: mc.arena-claims.
                claims[idx as usize].fetch_sub(1, Ordering::AcqRel);
                a.free(&pin, idx);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn free_list_never_double_allocates() {
    mc::Checker::new("arena-no-double-alloc")
        .schedules(400)
        .check(no_double_alloc_model);
}

#[test]
fn free_list_never_double_allocates_exhaustive() {
    let report = mc::Checker::new("arena-no-double-alloc-dfs")
        .exhaustive()
        .schedules(40_000)
        .check(no_double_alloc_model);
    assert!(report.schedules_run >= 1);
}

// ---------------------------------------------------------------------------
// Invariant 3: retirement never frees a slab under a live reader.
// ---------------------------------------------------------------------------

/// Stack traffic racing `maintain()`: the popper walks the Treiber head
/// (dereferencing nodes under its pin) while the maintainer retires and
/// — after the grace period — frees fully-recycled chunks. The arena's
/// hard null-slab assert in `node()` turns any grace-period violation
/// into a deterministic panic, so this model passing means no
/// interleaving reclaims memory a reader can still reach. Conservation
/// is checked on top: retirement must not eat items.
fn retire_never_frees_under_reader_model() {
    let arena = Arc::new(Arena::<u64>::new(CAP));
    let s = Arc::new(TreiberStack::with_arena(Arc::clone(&arena)));
    // Mint chunk 0 full, then drain: the stack is empty and chunk 0 is
    // fully recycled — exactly retire-eligible when the race starts.
    for i in 0..CHUNK_NODES as u64 {
        s.push(i);
    }
    while s.pop().is_some() {}
    let s1 = Arc::clone(&s);
    let t1 = mc::thread::spawn(move || {
        // Re-allocates recycled nodes (free-list pop vs the retirer's
        // poison-drain) and walks the head under a pin (deref vs slab
        // free).
        s1.push(100);
        s1.push(101);
        let mut got = Vec::new();
        got.extend(s1.pop());
        got.extend(s1.pop());
        got
    });
    let a2 = Arc::clone(&arena);
    let t2 = mc::thread::spawn(move || {
        for _ in 0..3 {
            a2.maintain();
        }
    });
    let mut all = t1.join().unwrap();
    t2.join().unwrap();
    while let Some(v) = s.pop() {
        all.push(v);
    }
    all.sort_unstable();
    assert_eq!(all, vec![100, 101], "retirement lost or duplicated items");
    assert!(arena.chunks_live() >= 1, "working-set floor violated");
}

#[test]
fn chunk_retire_never_frees_under_a_reader() {
    mc::Checker::new("arena-retire-vs-deref")
        .schedules(400)
        .check(retire_never_frees_under_reader_model);
}

#[test]
fn chunk_retire_never_frees_under_a_reader_exhaustive() {
    let report = mc::Checker::new("arena-retire-vs-deref-dfs")
        .exhaustive()
        .schedules(40_000)
        .check(retire_never_frees_under_reader_model);
    assert!(report.schedules_run >= 1);
}

// ---------------------------------------------------------------------------
// Detection power: the harness must CATCH a pin-discipline violation.
// ---------------------------------------------------------------------------

/// Skip the pin and dereference after reclamation: fill and drain both
/// chunks, run enough maintenance rounds for the grace period to
/// elapse (each round advances the epoch once), then probe a node of
/// the reclaimed chunk without holding a pin. The arena's null-slab
/// assert must fire and the checker must report it — proving the
/// passing models above would have caught a real reclamation bug.
#[test]
fn checker_finds_use_after_reclaim_without_pinning() {
    let result = mc::Checker::new("arena-unpinned-deref")
        .schedules(10)
        .try_check(|| {
            let a = Arena::<u64>::new(CAP);
            let pin = a.pin();
            let mut held = Vec::new();
            // Fill both chunks so chunk 0 is not the mint frontier
            // (the frontier is exempt from retirement).
            for _ in 0..CAP {
                held.push(a.alloc(&pin).expect("capacity is exactly CAP"));
            }
            for idx in held {
                a.free(&pin, idx);
            }
            drop(pin);
            // Round 1 retires chunk 0 at epoch e; rounds 2-3 advance to
            // e+2 and collect the limbo slab.
            for _ in 0..3 {
                a.maintain();
            }
            // No pin: nothing stops epoch advance + slab free above, so
            // this deref is exactly the use-after-reclaim under test.
            let _ = a.probe_key(0);
        });
    let failure = result.expect_err("the checker must detect the unpinned deref");
    assert!(
        failure.message.contains("reclaimed chunk"),
        "unexpected failure message: {}",
        failure.message
    );
}
