//! Model-checked invariants for `alligator::TreiberStack` (built with
//! `--features mc`, so every atomic access below is a scheduler yield
//! point), plus a detection-power test proving the checker catches the
//! classic ABA bug the tagged stack exists to prevent.
//!
//! Replay a failure with `MC_REPLAY=<seed> cargo test -p mc <test>`;
//! see `crates/mc/README.md`.

use alligator::TreiberStack;
use mc::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// Conservation: across concurrent push/pop from two threads, every
/// pushed item is popped exactly once (by a thread or the final drain)
/// — no loss, no duplication. This is the bucket-conservation invariant
/// of DESIGN.md applied to the raw stack.
#[test]
fn concurrent_push_pop_conserves_items() {
    mc::Checker::new("treiber-conservation")
        .schedules(400)
        .check(|| {
            let s = Arc::new(TreiberStack::new());
            let s1 = Arc::clone(&s);
            let t1 = mc::thread::spawn(move || {
                s1.push(1u64);
                s1.push(2);
                s1.pop()
            });
            let s2 = Arc::clone(&s);
            let t2 = mc::thread::spawn(move || {
                s2.push(3u64);
                s2.pop()
            });
            let mut all = Vec::new();
            all.extend(t1.join().unwrap());
            all.extend(t2.join().unwrap());
            while let Some(v) = s.pop() {
                all.push(v);
            }
            all.sort_unstable();
            assert_eq!(all, vec![1, 2, 3], "an item was lost or duplicated");
        });
}

/// `push_many` is single-CAS atomic: a concurrent batched popper sees
/// either none of the batch or a whole prefix in order — never an
/// interleaved or partial suffix.
#[test]
fn push_many_is_collectively_visible() {
    mc::Checker::new("treiber-batch-atomic")
        .schedules(400)
        .check(|| {
            let s = Arc::new(TreiberStack::new());
            let s1 = Arc::clone(&s);
            let t1 = mc::thread::spawn(move || {
                s1.push_many([10u64, 20, 30]);
            });
            let s2 = Arc::clone(&s);
            let t2 = mc::thread::spawn(move || s2.pop_many(3));
            t1.join().unwrap();
            let got = t2.join().unwrap();
            assert!(
                got.is_empty() || got == vec![10, 20, 30],
                "observed a partial batch: {got:?}"
            );
            let mut rest = Vec::new();
            while let Some(v) = s.pop() {
                rest.push(v);
            }
            let mut all = got;
            all.extend(rest);
            all.sort_unstable();
            assert_eq!(all, vec![10, 20, 30], "batch conservation");
        });
}

/// ABA regression, exhaustively explored: the schedule that breaks an
/// untagged Treiber stack (T1 stalls between reading `head`/`next` and
/// its CAS while T2 pops two nodes and re-pushes the first) must NOT
/// break the tagged stack — T1's stale CAS fails on the tag and retries.
#[test]
fn tagged_stack_survives_the_aba_interleaving() {
    let report = mc::Checker::new("treiber-aba-regression")
        .schedules(600)
        .check(|| {
            let s = Arc::new(TreiberStack::new());
            s.push(1u64);
            s.push(2); // stack top-down: [2, 1]
            let s1 = Arc::clone(&s);
            let t1 = mc::thread::spawn(move || s1.pop());
            let s2 = Arc::clone(&s);
            let t2 = mc::thread::spawn(move || {
                let a = s2.pop();
                let b = s2.pop();
                // Re-push whatever came off first: when that is the node
                // T1 read as head, an untagged CAS would ABA.
                let mut kept = Vec::new();
                if let Some(a) = a {
                    s2.push(a);
                }
                kept.extend(b);
                kept
            });
            let mut all = Vec::new();
            all.extend(t1.join().unwrap());
            all.extend(t2.join().unwrap());
            while let Some(v) = s.pop() {
                all.push(v);
            }
            all.sort_unstable();
            assert_eq!(all, vec![1, 2], "ABA: an item was lost or duplicated");
        });
    assert!(report.schedules_run >= 1);
}

/// `pop_many_same_key` never mixes keys even while a concurrent pusher
/// is appending a differently-keyed batch — the refill-round boundary
/// rule (§IV-D) at the stack level.
#[test]
fn keyed_batch_pop_never_mixes_keys() {
    mc::Checker::new("treiber-key-boundary")
        .schedules(400)
        .check(|| {
            let s = Arc::new(TreiberStack::new());
            s.push_many_keyed([(1u64, 1u64), (2, 1)]);
            let s1 = Arc::clone(&s);
            let t1 = mc::thread::spawn(move || {
                s1.push_many_keyed([(3u64, 2u64), (4, 2)]);
            });
            let s2 = Arc::clone(&s);
            let t2 = mc::thread::spawn(move || s2.pop_many_same_key(8));
            t1.join().unwrap();
            let got = t2.join().unwrap();
            let round_of = |v: u64| if v <= 2 { 1u64 } else { 2 };
            assert!(
                got.windows(2).all(|w| round_of(w[0]) == round_of(w[1])),
                "batched pop straddled a key boundary: {got:?}"
            );
        });
}

// ---------------------------------------------------------------------------
// Detection power: the checker must FIND the ABA bug in an untagged stack.
// ---------------------------------------------------------------------------

const NIL: u32 = u32::MAX;

/// A deliberately broken Treiber stack: same algorithm as
/// `alligator::TreiberStack` but the head word is a bare node index —
/// no ABA tag. Three preallocated nodes; `pushed`/`popped` counters
/// witness conservation.
struct UntaggedStack {
    head: AtomicU32,
    next: [AtomicU32; 3],
    pushed: [AtomicU32; 3],
    popped: [AtomicU32; 3],
}

impl UntaggedStack {
    fn new() -> Self {
        Self {
            head: AtomicU32::new(NIL),
            next: std::array::from_fn(|_| AtomicU32::new(NIL)),
            pushed: std::array::from_fn(|_| AtomicU32::new(0)),
            popped: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    fn push(&self, idx: u32) {
        // ordering: test counter, racing increments only need atomicity.
        self.pushed[idx as usize].fetch_add(1, Ordering::Relaxed);
        loop {
            // ordering: Acquire/Release/AcqRel mirror the real stack —
            // the bug under test is the missing tag, not the ordering;
            // pairs-with: mc.toy-head.
            let h = self.head.load(Ordering::Acquire);
            // ordering: as above; pairs-with: mc.toy-link.
            self.next[idx as usize].store(h, Ordering::Release);
            if self
                .head
                // ordering: as above — deliberately untagged (ABA-tag-free) CAS;
                // pairs-with: mc.toy-head.
                .compare_exchange(h, idx, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return;
            }
        }
    }

    fn pop(&self) -> Option<u32> {
        loop {
            // ordering: as in `push`; pairs-with: mc.toy-head.
            let h = self.head.load(Ordering::Acquire);
            if h == NIL {
                return None;
            }
            // ordering: as in `push` — this is the stale read ABA turns
            // into a corrupted head; pairs-with: mc.toy-link.
            let next = self.next[h as usize].load(Ordering::Acquire);
            if self
                .head
                // ordering: as in `push` — deliberately untagged (ABA-tag-free) CAS;
                // pairs-with: mc.toy-head.
                .compare_exchange(h, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                // ordering: test counter.
                self.popped[h as usize].fetch_add(1, Ordering::Relaxed);
                return Some(h);
            }
        }
    }
}

/// Seeded-bug test: exhaustive exploration MUST find the interleaving
/// where the untagged CAS succeeds on a recycled head and a node is
/// popped more often than it was pushed. This is the checker's license
/// to claim the tagged stack's pass means something.
#[test]
fn checker_finds_aba_on_untagged_stack() {
    let result = mc::Checker::new("untagged-aba")
        .exhaustive()
        .schedules(50_000)
        .try_check(|| {
            let s = Arc::new(UntaggedStack::new());
            s.push(0);
            s.push(1); // stack top-down: [1, 0]
            let s1 = Arc::clone(&s);
            let t1 = mc::thread::spawn(move || s1.pop());
            let s2 = Arc::clone(&s);
            let t2 = mc::thread::spawn(move || {
                let a = s2.pop();
                let _b = s2.pop();
                if let Some(a) = a {
                    s2.push(a); // recycle the node T1 may have read as head
                }
            });
            t1.join().unwrap();
            t2.join().unwrap();
            while s.pop().is_some() {}
            for i in 0..3 {
                // ordering: single-threaded post-join reads.
                let pushed = s.pushed[i].load(Ordering::Relaxed);
                // ordering: single-threaded post-join reads.
                let popped = s.popped[i].load(Ordering::Relaxed);
                assert_eq!(
                    pushed, popped,
                    "node {i}: pushed {pushed} times but popped {popped} (ABA)"
                );
            }
        });
    let failure = result.expect_err("the checker must detect the ABA double-pop");
    assert!(
        failure.message.contains("ABA"),
        "unexpected failure message: {}",
        failure.message
    );
}
