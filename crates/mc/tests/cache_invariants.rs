//! Model-checked invariants for `alligator::BucketCache` — the
//! lock-free GET path, the seqlock publish gate, the undo paths, and
//! the waiter protocol — explored under the controlled scheduler
//! (`alligator` is built with `--features mc` here).
//!
//! Replay a failure with `MC_REPLAY=<seed> cargo test -p mc <test>`;
//! see `crates/mc/README.md`. The detection-power tests at the bottom
//! seed the bugs this cache's design guards against (gate-polling undo,
//! ordering-weakened seqlock) and assert the checker finds them.

use alligator::{AllocStats, Bucket, BucketCache, Tetris, TreiberStack};
use mc::sync::atomic::{AtomicU64, Ordering};
use mc::sync::Mutex;
use std::sync::Arc;
use std::time::Duration;
use wafl_blockdev::{AaId, DriveId, DriveKind, GeometryBuilder, IoEngine, RaidGroupId, Vbn};

/// One shared (model-invisible) I/O engine: bucket construction cost is
/// paid once per test, not once per bucket per schedule.
fn engine() -> Arc<IoEngine> {
    Arc::new(IoEngine::new(
        Arc::new(
            GeometryBuilder::new()
                .aa_stripes(32)
                .raid_group(1, 1, 4096)
                .build(),
        ),
        DriveKind::Ssd,
    ))
}

fn mk_bucket(engine: &Arc<IoEngine>, drive: u32, start: u64, generation: u64) -> Bucket {
    let t = Tetris::new(
        RaidGroupId(0),
        1,
        Arc::clone(engine),
        Arc::new(AllocStats::default()),
    );
    Bucket::new(
        RaidGroupId(0),
        0,
        DriveId(drive),
        AaId {
            rg: RaidGroupId(0),
            index: 0,
        },
        (start..start + 4).map(Vbn).collect(),
        0,
        t,
        generation,
    )
}

fn lf_cache(nshards: usize) -> Arc<BucketCache> {
    Arc::new(BucketCache::with_shards(
        nshards,
        Arc::new(AllocStats::default()),
    ))
}

/// Bucket conservation across concurrent GETs (home hits and steals):
/// every inserted bucket is delivered to exactly one consumer, none are
/// lost, none are duplicated — under every explored interleaving. Also
/// witnesses liveness: with 3 buckets and 2 getters, neither getter may
/// need its (virtual) timeout.
#[test]
fn concurrent_gets_conserve_buckets() {
    let eng = engine();
    mc::Checker::new("cache-conservation")
        .schedules(300)
        .check(|| {
            let c = lf_cache(2);
            c.insert_all([
                mk_bucket(&eng, 0, 0, 1),
                mk_bucket(&eng, 1, 100, 1),
                mk_bucket(&eng, 2, 200, 1),
            ]);
            let c1 = Arc::clone(&c);
            let t1 = mc::thread::spawn(move || {
                c1.get_timeout_from(0, Duration::from_secs(5))
                    .map(|b| b.start_vbn().0)
            });
            let c2 = Arc::clone(&c);
            let t2 = mc::thread::spawn(move || {
                c2.get_timeout_from(1, Duration::from_secs(5))
                    .map(|b| b.start_vbn().0)
            });
            let mut got = Vec::new();
            got.extend(t1.join().unwrap());
            got.extend(t2.join().unwrap());
            assert_eq!(got.len(), 2, "a getter starved with buckets available");
            assert_eq!(mc::timeouts_fired(), 0, "a getter needed its timeout");
            while let Some(b) = c.try_get() {
                got.push(b.start_vbn().0);
            }
            got.sort_unstable();
            assert_eq!(got, vec![0, 100, 200], "bucket lost or duplicated");
        });
}

/// §IV-D collective visibility: a getter that observes any bucket of a
/// refill batch observes the whole batch. With a 2-bucket batch and a
/// single consumer, the first successful GET implies the second cannot
/// miss.
#[test]
fn insert_all_is_collectively_visible() {
    let eng = engine();
    mc::Checker::new("cache-collective")
        .schedules(300)
        .check(|| {
            let c = lf_cache(2);
            let c1 = Arc::clone(&c);
            let eng1 = Arc::clone(&eng);
            let pub1 = mc::thread::spawn(move || {
                c1.insert_all([mk_bucket(&eng1, 0, 0, 1), mk_bucket(&eng1, 1, 100, 1)]);
            });
            let c2 = Arc::clone(&c);
            let get = mc::thread::spawn(move || {
                if c2.try_get_from(0).is_some() {
                    // Half the batch was visible — the other half must be too.
                    assert!(
                        c2.try_get_from(1).is_some(),
                        "observed a partially published batch"
                    );
                }
            });
            pub1.join().unwrap();
            get.join().unwrap();
        });
}

/// Oldest-round-first across the undo path (the satellite-1 regression):
/// a getter whose CAS pop races one or two collective publishes must
/// never let a round-1 bucket get buried under round 2/3 — whichever
/// interleaving the undo takes, the oldest live round stays on top.
/// Reverting `unpop_lf`/`insert_lf` to gate-polling (instead of holding
/// `publish`) makes this fail — see
/// `checker_finds_burial_with_gate_polling_undo` below for the seeded
/// version of that bug.
#[test]
fn oldest_round_pops_first_despite_undo_races() {
    let eng = engine();
    mc::Checker::new("cache-oldest-first")
        .schedules(400)
        .check(|| {
            let c = lf_cache(1);
            c.insert_all([mk_bucket(&eng, 0, 0, 1)]);
            let c1 = Arc::clone(&c);
            let getter = mc::thread::spawn(move || c1.try_get_from(0).map(|b| b.generation()));
            let c2 = Arc::clone(&c);
            let eng2 = Arc::clone(&eng);
            let publisher = mc::thread::spawn(move || {
                c2.insert_all([mk_bucket(&eng2, 0, 100, 2)]);
                c2.insert_all([mk_bucket(&eng2, 0, 200, 3)]);
            });
            let got = getter.join().unwrap();
            publisher.join().unwrap();
            assert_eq!(
                got,
                Some(1),
                "getter must receive the oldest round (round 1 was never consumed)"
            );
            let mut gens = Vec::new();
            while let Some(b) = c.try_get() {
                gens.push(b.generation());
            }
            let mut sorted = gens.clone();
            sorted.sort_unstable();
            assert_eq!(gens, sorted, "an older round was buried: {gens:?}");
        });
}

/// No lost wakeup: a getter parked on shard 1 must be woken by an
/// insert into shard 0 (cross-shard `wake_parked`), and must never need
/// the virtual timeout to make progress. A schedule where the park and
/// the insert interleave so the notify is missed shows up as
/// `timeouts_fired() == 1` — a scheduler-proven liveness failure, not a
/// wall-clock race.
#[test]
fn cross_shard_insert_never_loses_a_wakeup() {
    let eng = engine();
    mc::Checker::new("cache-lost-wakeup")
        .schedules(400)
        .check(|| {
            let c = lf_cache(2);
            let c1 = Arc::clone(&c);
            let waiter = mc::thread::spawn(move || c1.get_timeout_from(1, Duration::from_secs(5)));
            c.insert(mk_bucket(&eng, 0, 0, 1));
            let got = waiter.join().unwrap();
            assert!(got.is_some(), "waiter timed out with a bucket available");
            assert_eq!(
                mc::timeouts_fired(),
                0,
                "wakeup was lost: the waiter only progressed via its timeout"
            );
        });
}

/// Batched GET vs a racing collective publish: the batch never mixes
/// refill rounds, never loses buckets across the undo/retry, and leaves
/// the cache drainable in round order.
#[test]
fn get_many_respects_round_boundary_under_publish() {
    let eng = engine();
    mc::Checker::new("cache-batch-boundary")
        .schedules(400)
        .check(|| {
            let c = lf_cache(1);
            c.insert_all([mk_bucket(&eng, 0, 0, 1), mk_bucket(&eng, 0, 10, 1)]);
            let c1 = Arc::clone(&c);
            let batcher = mc::thread::spawn(move || {
                c1.get_many_from(0, 8)
                    .into_iter()
                    .map(|b| (b.generation(), b.start_vbn().0))
                    .collect::<Vec<_>>()
            });
            let c2 = Arc::clone(&c);
            let eng2 = Arc::clone(&eng);
            let publisher = mc::thread::spawn(move || {
                c2.insert_all([mk_bucket(&eng2, 0, 100, 2), mk_bucket(&eng2, 0, 110, 2)]);
            });
            let batch = batcher.join().unwrap();
            publisher.join().unwrap();
            assert!(
                !batch.is_empty(),
                "batched GET starved with buckets present"
            );
            assert!(
                batch.iter().all(|&(g, _)| g == 1),
                "batch mixed rounds or skipped round 1: {batch:?}"
            );
            let mut all: Vec<(u64, u64)> = batch;
            let mut drain_gens = Vec::new();
            while let Some(b) = c.try_get() {
                drain_gens.push(b.generation());
                all.push((b.generation(), b.start_vbn().0));
            }
            let mut sorted = drain_gens.clone();
            sorted.sort_unstable();
            assert_eq!(
                drain_gens, sorted,
                "drain out of round order: {drain_gens:?}"
            );
            all.sort_unstable();
            assert_eq!(
                all.iter().map(|&(_, v)| v).collect::<Vec<_>>(),
                vec![0, 10, 100, 110],
                "bucket lost or duplicated across the batch undo"
            );
        });
}

// ---------------------------------------------------------------------------
// Detection power: seed the bugs this design rules out; the checker
// must find each one.
// ---------------------------------------------------------------------------

/// The bucket cache's publish protocol with the undo bug the real cache
/// fixed: the undo path *polls* the gate for evenness and then pushes,
/// instead of holding the `publish` mutex across the push. A publisher
/// can start its drain+republish between the poll and the push, so the
/// undone (older) item lands *under* the new batch.
struct GatePollingCache {
    stack: TreiberStack<u64>,
    gate: AtomicU64,
    publish: Mutex<()>,
}

impl GatePollingCache {
    fn new() -> Self {
        Self {
            stack: TreiberStack::new(),
            gate: AtomicU64::new(0),
            publish: Mutex::new(()),
        }
    }

    fn gate_wait_even(&self) -> u64 {
        loop {
            // ordering: Acquire — pairs with the publisher's AcqRel gate
            // increments, as in the real cache;
            // pairs-with: mc.cache-gate.
            let g = self.gate.load(Ordering::Acquire);
            if g & 1 == 0 {
                return g;
            }
            mc::thread::yield_now();
        }
    }

    /// Collective publish: drain leftovers, republish them on top of the
    /// new item (identical to `insert_all_lf`).
    fn publish(&self, gen: u64) {
        let _p = self.publish.lock();
        // ordering: AcqRel — open the window (see `insert_all_lf`);
        // pairs-with: mc.cache-gate.
        self.gate.fetch_add(1, Ordering::AcqRel);
        let older = self.stack.pop_many(usize::MAX);
        self.stack
            .push_many_keyed(older.into_iter().chain([gen]).map(|g| (g, g)));
        // ordering: AcqRel — close the window; pairs-with: mc.cache-gate.
        self.gate.fetch_add(1, Ordering::AcqRel);
    }

    /// BUG (the pre-fix undo): wait for an even gate, then push. The
    /// gate can go odd again between the check and the push.
    fn undo_buggy(&self, gen: u64) {
        self.gate_wait_even();
        self.stack.push_keyed(gen, gen);
    }
}

/// Seeded-bug test: the checker must find a schedule where the
/// gate-polling undo lands a round-1 item inside a publisher's
/// drain→republish window, burying it under round 2/3.
#[test]
fn checker_finds_burial_with_gate_polling_undo() {
    let result = mc::Checker::new("gate-polling-burial")
        .schedules(2000)
        .try_check(|| {
            let c = Arc::new(GatePollingCache::new());
            // Pre-state: a getter popped the round-1 item and detected a
            // gate change, so it owes an undo push (also pre-warms the
            // stack's node arena so the racing ops below are compact).
            c.stack.push_keyed(1, 1);
            assert_eq!(c.stack.pop(), Some(1));
            let c1 = Arc::clone(&c);
            let undoer = mc::thread::spawn(move || c1.undo_buggy(1));
            let c2 = Arc::clone(&c);
            let publisher = mc::thread::spawn(move || {
                c2.publish(2);
                c2.publish(3);
            });
            undoer.join().unwrap();
            publisher.join().unwrap();
            let drained = c.stack.pop_many(usize::MAX);
            let mut sorted = drained.clone();
            sorted.sort_unstable();
            assert_eq!(
                drained, sorted,
                "older round buried under a newer batch: {drained:?}"
            );
        });
    let failure = result.expect_err("the checker must detect the undo burial");
    assert!(
        failure.message.contains("buried"),
        "unexpected failure message: {}",
        failure.message
    );
    assert!(
        failure.sseed.is_some(),
        "random-mode failure must be replayable"
    );
}

/// Seeded-bug test: a seqlock whose gate is written/read `Relaxed`
/// (instead of Release/Acquire as in the real cache) lets a reader see
/// the gate closed while the published data is still stale. The
/// allowed-stale model must find it even though the interleaving looks
/// sequential.
#[test]
fn checker_finds_relaxed_seqlock_gate() {
    let result = mc::Checker::new("relaxed-seqlock")
        .schedules(500)
        .try_check(|| {
            let data = Arc::new(AtomicU64::new(0));
            let gate = Arc::new(AtomicU64::new(0));
            let d1 = Arc::clone(&data);
            let g1 = Arc::clone(&gate);
            let publisher = mc::thread::spawn(move || {
                // ordering: deliberately Relaxed — the seeded bug.
                g1.store(1, Ordering::Relaxed);
                // ordering: deliberately Relaxed — the seeded bug.
                d1.store(42, Ordering::Relaxed);
                // ordering: deliberately Relaxed (should be Release).
                g1.store(2, Ordering::Relaxed);
            });
            // ordering: deliberately Relaxed (should be Acquire).
            if gate.load(Ordering::Relaxed) == 2 {
                // ordering: deliberately Relaxed — may legally see 0.
                let v = data.load(Ordering::Relaxed);
                assert_eq!(v, 42, "seqlock gate closed but data is stale ({v})");
            }
            publisher.join().unwrap();
        });
    let failure = result.expect_err("the checker must catch the stale read");
    assert!(
        failure.message.contains("stale"),
        "unexpected failure message: {}",
        failure.message
    );
}
