//! # wafl-repro — workspace root
//!
//! This crate re-exports the workspace's public surface for convenience
//! and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! The reproduction implements *Scalable Write Allocation in the WAFL
//! File System* (ICPP 2017). Start with:
//!
//! * [`wafl::Filesystem`] — the end-to-end file system (see
//!   `examples/quickstart.rs`);
//! * [`alligator`] — the White Alligator write allocator (the paper's
//!   contribution);
//! * [`wafl_simsrv`] — the many-core storage-server model that
//!   regenerates the paper's figures.

#![warn(missing_docs)]

pub use alligator;
pub use waffinity;
pub use wafl;
pub use wafl_blockdev;
pub use wafl_metafile;
pub use wafl_simsrv;
