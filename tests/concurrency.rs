//! Real-thread concurrency stress: clients write while CPs run on a
//! Waffinity pool with multiple cleaner threads. Validates the MP-safety
//! invariants of DESIGN.md §8 under genuine interleaving.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

fn big_fs() -> Arc<Filesystem> {
    let mut cfg = FsConfig::default();
    cfg.cleaner.threads = 4;
    Arc::new(Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(256)
            .raid_group(4, 1, 64 * 1024)
            .build(),
        DriveKind::Ssd,
        ExecMode::Pool(3),
    ))
}

#[test]
fn concurrent_writers_with_back_to_back_cps() {
    let fs = big_fs();
    fs.create_volume(VolumeId(0));
    const WRITERS: u64 = 4;
    const FILES_PER_WRITER: u64 = 4;
    const BLOCKS: u64 = 64;
    for w in 0..WRITERS {
        for f in 0..FILES_PER_WRITER {
            fs.create_file(VolumeId(0), FileId(w * FILES_PER_WRITER + f));
        }
    }
    let stop = Arc::new(AtomicBool::new(false));
    let generations = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let fs = Arc::clone(&fs);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut generation = 1u64;
            // ordering: shutdown flag; no data is published through it.
            while !stop.load(Ordering::Relaxed) {
                for f in 0..FILES_PER_WRITER {
                    let file = FileId(w * FILES_PER_WRITER + f);
                    for fbn in 0..BLOCKS {
                        fs.write(VolumeId(0), file, fbn, stamp(file.0, fbn, generation));
                    }
                }
                generation += 1;
            }
            generation
        }));
    }

    // CP thread: run CPs continuously while writers are active.
    let cp_fs = Arc::clone(&fs);
    let cp_stop = Arc::clone(&stop);
    let cp_handle = std::thread::spawn(move || {
        let mut cps = 0u32;
        // ordering: shutdown flag; no data is published through it.
        while !cp_stop.load(Ordering::Relaxed) {
            cp_fs.run_cp();
            cps += 1;
        }
        cps
    });

    std::thread::sleep(std::time::Duration::from_millis(400));
    // ordering: shutdown flag; no data is published through it.
    stop.store(true, Ordering::Relaxed);
    let gens: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let cps = cp_handle.join().unwrap();
    // ordering: statistics counter; staleness is acceptable.
    generations.store(gens.iter().copied().min().unwrap(), Ordering::Relaxed);
    assert!(cps > 0, "at least one CP ran");

    // Final CP: all acknowledged data becomes durable.
    fs.run_cp();
    fs.verify_integrity().unwrap();

    // Every block holds *some complete generation's* stamp for its file
    // (writes are per-block atomic; the logical view can't interleave
    // within a block).
    for w in 0..WRITERS {
        for f in 0..FILES_PER_WRITER {
            let file = FileId(w * FILES_PER_WRITER + f);
            for fbn in 0..BLOCKS {
                let got = fs.read(VolumeId(0), file, fbn).expect("block exists");
                let max_gen = gens[w as usize] + 1;
                let valid = (1..=max_gen).any(|g| got == stamp(file.0, fbn, g));
                assert!(
                    valid,
                    "file {file:?} fbn {fbn} holds a stamp from no generation"
                );
            }
        }
    }
}

#[test]
fn writes_racing_a_cp_are_never_lost() {
    let fs = big_fs();
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(7));
    // Seed with generation 1.
    for fbn in 0..512 {
        fs.write(VolumeId(0), FileId(7), fbn, stamp(7, fbn, 1));
    }
    // Writer races the CP with generation 2.
    let w_fs = Arc::clone(&fs);
    let writer = std::thread::spawn(move || {
        for fbn in 0..512 {
            w_fs.write(VolumeId(0), FileId(7), fbn, stamp(7, fbn, 2));
        }
    });
    fs.run_cp();
    writer.join().unwrap();
    // Whatever the race outcome, a second CP commits generation 2 fully.
    fs.run_cp();
    for fbn in 0..512 {
        assert_eq!(
            fs.read_persisted(VolumeId(0), FileId(7), fbn),
            Some(stamp(7, fbn, 2)),
            "generation 2 lost at fbn {fbn}"
        );
    }
    fs.verify_integrity().unwrap();
}

#[test]
fn region_split_cleans_one_large_inode_with_many_cleaners() {
    // §IV-A: multiple cleaner threads on different regions of one inode.
    let mut cfg = FsConfig::default();
    cfg.cleaner.threads = 4;
    cfg.cleaner.region_split_threshold = 128;
    cfg.cleaner.region_size = 64;
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(256)
            .raid_group(4, 1, 64 * 1024)
            .build(),
        DriveKind::Ssd,
        ExecMode::Pool(2),
    );
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(1));
    for fbn in 0..2000 {
        fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    let r = fs.run_cp();
    assert_eq!(r.buffers_cleaned, 2000);
    assert!(
        r.cleaner_messages >= 2000 / 64,
        "large inode split into region messages: {}",
        r.cleaner_messages
    );
    for fbn in (0..2000).step_by(97) {
        assert_eq!(
            fs.read_persisted(VolumeId(0), FileId(1), fbn),
            Some(stamp(1, fbn, 1))
        );
    }
    fs.verify_integrity().unwrap();
}

#[test]
fn dynamic_active_limit_changes_mid_flight() {
    let fs = big_fs();
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(1));
    for round in 1..=4u64 {
        for fbn in 0..500 {
            fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, round));
        }
        fs.cleaner_pool()
            .set_active_limit(((round % 4) + 1) as usize);
        fs.run_cp();
    }
    fs.cleaner_pool().set_active_limit(4);
    fs.verify_integrity().unwrap();
}
