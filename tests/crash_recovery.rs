//! Crash/recovery matrix: CP atomicity and NVRAM replay (§II-C;
//! DESIGN.md §8.5).

use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

fn fs() -> Filesystem {
    Filesystem::new(
        FsConfig::default(),
        GeometryBuilder::new()
            .aa_stripes(128)
            .raid_group(3, 1, 16 * 1024)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    )
}

#[test]
fn crash_with_no_committed_cp_replays_all_ops() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for fbn in 0..50 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    let r = f.crash_and_recover(ExecMode::Inline);
    for fbn in 0..50 {
        assert_eq!(r.read(VolumeId(0), FileId(1), fbn), Some(stamp(1, fbn, 1)));
    }
    r.run_cp();
    r.verify_integrity().unwrap();
}

#[test]
fn crash_between_cps_loses_nothing() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    // Committed state.
    for fbn in 0..100 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    f.run_cp();
    // Acknowledged-only state: partial overwrites + a new file.
    for fbn in 0..30 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 2));
    }
    f.create_file(VolumeId(0), FileId(2));
    f.write(VolumeId(0), FileId(2), 0, 0x42);

    let r = f.crash_and_recover(ExecMode::Inline);
    for fbn in 0..30 {
        assert_eq!(r.read(VolumeId(0), FileId(1), fbn), Some(stamp(1, fbn, 2)));
    }
    for fbn in 30..100 {
        assert_eq!(r.read(VolumeId(0), FileId(1), fbn), Some(stamp(1, fbn, 1)));
    }
    assert_eq!(r.read(VolumeId(0), FileId(2), 0), Some(0x42));
    r.run_cp();
    r.verify_integrity().unwrap();
}

#[test]
fn repeated_crash_recover_cycles_converge() {
    let mut current = fs();
    current.create_volume(VolumeId(0));
    current.create_file(VolumeId(0), FileId(1));
    for cycle in 1..=6u64 {
        for fbn in 0..40 {
            current.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, cycle));
        }
        if cycle % 2 == 0 {
            current.run_cp(); // even cycles commit before crashing
        }
        current = current.crash_and_recover(ExecMode::Inline);
        for fbn in 0..40 {
            assert_eq!(
                current.read(VolumeId(0), FileId(1), fbn),
                Some(stamp(1, fbn, cycle)),
                "cycle {cycle} fbn {fbn}"
            );
        }
    }
    current.run_cp();
    current.verify_integrity().unwrap();
}

#[test]
fn recovery_frees_nothing_it_should_not() {
    // After recovery, the free count must equal total minus exactly the
    // blocks referenced by the recovered image.
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for fbn in 0..64 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    f.run_cp();
    let r = f.crash_and_recover(ExecMode::Inline);
    let total = r.io().geometry().total_vbns();
    let free = r.allocator().infra().aggmap().free_count();
    let used = total - free;
    // 64 data blocks + metafile blocks (small).
    assert!(used >= 64, "committed data blocks are adopted: used {used}");
    assert!(used < 64 + 32, "no wild over-adoption: used {used}");
    r.allocator().infra().aggmap().verify().unwrap();
}

#[test]
fn post_recovery_writes_commit_with_pool_executor() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    for fbn in 0..32 {
        f.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    f.run_cp();
    // Recover into a pool-backed instance and keep working.
    let r = f.crash_and_recover(ExecMode::Pool(2));
    for fbn in 32..64 {
        r.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    r.run_cp();
    for fbn in 0..64 {
        assert_eq!(
            r.read_persisted(VolumeId(0), FileId(1), fbn),
            Some(stamp(1, fbn, 1))
        );
    }
    r.verify_integrity().unwrap();
}

#[test]
fn double_crash_without_intervening_cp_keeps_committed_image() {
    // Regression: the superblock must survive recovery itself — a second
    // crash before any post-recovery CP must still find the image.
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    f.write(VolumeId(0), FileId(1), 0, 0x77);
    f.run_cp();
    let once = f.crash_and_recover(ExecMode::Inline);
    let twice = once.crash_and_recover(ExecMode::Inline);
    assert_eq!(twice.read(VolumeId(0), FileId(1), 0), Some(0x77));
    assert_eq!(twice.read_persisted(VolumeId(0), FileId(1), 0), Some(0x77));
    twice.verify_integrity().unwrap();
}

#[test]
fn uncommitted_data_never_visible_via_read_persisted() {
    let f = fs();
    f.create_volume(VolumeId(0));
    f.create_file(VolumeId(0), FileId(1));
    f.write(VolumeId(0), FileId(1), 0, 0xA);
    f.run_cp();
    f.write(VolumeId(0), FileId(1), 0, 0xB); // acknowledged, not committed
    assert_eq!(f.read(VolumeId(0), FileId(1), 0), Some(0xB));
    assert_eq!(
        f.read_persisted(VolumeId(0), FileId(1), 0),
        Some(0xA),
        "the durable view lags until the next CP"
    );
}
