//! End-to-end integration: the full stack (blockdev → metafile →
//! waffinity → alligator → wafl) exercised through the public
//! [`Filesystem`] API.

use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder};

fn small_fs(exec: ExecMode) -> Filesystem {
    let cfg = FsConfig {
        vvbn_per_volume: 1 << 16,
        ..FsConfig::default()
    };
    Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(128)
            .raid_group(3, 1, 16 * 1024)
            .raid_group(2, 1, 16 * 1024)
            .build(),
        DriveKind::Ssd,
        exec,
    )
}

#[test]
fn multi_volume_multi_cp_integrity() {
    let fs = small_fs(ExecMode::Inline);
    for v in 0..4 {
        fs.create_volume(VolumeId(v));
        for f in 0..5u64 {
            fs.create_file(VolumeId(v), FileId(f));
        }
    }
    for generation in 1..=5u64 {
        for v in 0..4 {
            for f in 0..5u64 {
                for fbn in 0..20 {
                    fs.write(
                        VolumeId(v),
                        FileId(f),
                        fbn,
                        stamp(v as u64 * 100 + f, fbn, generation),
                    );
                }
            }
        }
        let r = fs.run_cp();
        assert_eq!(r.inodes_cleaned, 20);
        assert_eq!(r.buffers_cleaned, 400);
    }
    for v in 0..4 {
        for f in 0..5u64 {
            for fbn in 0..20 {
                assert_eq!(
                    fs.read_persisted(VolumeId(v), FileId(f), fbn),
                    Some(stamp(v as u64 * 100 + f, fbn, 5))
                );
            }
        }
    }
    fs.verify_integrity().unwrap();
    assert_eq!(fs.cp_count(), 5);
}

#[test]
fn space_is_conserved_across_overwrite_cycles() {
    // Repeated overwrites of the same logical blocks must not leak
    // physical space: frees keep pace with allocations (DESIGN.md §8.2).
    let fs = small_fs(ExecMode::Inline);
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(1));
    let mut free_after = Vec::new();
    for generation in 1..=10u64 {
        for fbn in 0..200 {
            fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, generation));
        }
        fs.run_cp();
        free_after.push(fs.allocator().infra().aggmap().free_count());
    }
    // After the steady state is reached, free space stays flat (modulo
    // metafile-block churn bounded by a few blocks per CP).
    let late = &free_after[4..];
    let min = *late.iter().min().unwrap();
    let max = *late.iter().max().unwrap();
    assert!(
        max - min < 64,
        "free space drifts under overwrite churn: {free_after:?}"
    );
    fs.verify_integrity().unwrap();
}

#[test]
fn sequential_files_land_contiguously_per_drive() {
    // §IV-C objective 2: consecutive blocks of a file written by one
    // cleaner land on consecutive VBNs of one drive.
    let mut cfg = FsConfig::default();
    cfg.cleaner.threads = 1; // single cleaner → strictest contiguity
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(512)
            .raid_group(4, 1, 64 * 1024)
            .build(),
        DriveKind::Ssd,
        ExecMode::Inline,
    );
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(1));
    for fbn in 0..64 {
        fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    fs.run_cp();
    let vol = fs.volume(VolumeId(0)).unwrap();
    let inode = vol.inode(FileId(1)).unwrap();
    let inode = inode.lock();
    let mut runs = 1u32;
    let mut prev: Option<u64> = None;
    for fbn in 0..64 {
        let ptr = inode.lookup(fbn).expect("block committed");
        if let Some(p) = prev {
            if ptr.pvbn.0 != p + 1 {
                runs += 1;
            }
        }
        prev = Some(ptr.pvbn.0);
    }
    assert!(
        runs <= 2,
        "64 sequential blocks should form at most 2 contiguous runs, got {runs}"
    );
}

#[test]
fn full_stripe_ratio_high_for_sequential_load() {
    let fs = small_fs(ExecMode::Inline);
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(1));
    for fbn in 0..2048 {
        fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    fs.run_cp();
    let ratio = fs.io().full_stripe_ratio().unwrap();
    assert!(
        ratio > 0.7,
        "sequential CP should be mostly full stripes: {ratio}"
    );
    fs.io().scrub().unwrap();
}

#[test]
fn pool_mode_matches_inline_results() {
    // The Waffinity-pool execution must produce the same logical file
    // contents as inline execution (physical placement may differ).
    let run = |exec: ExecMode| {
        let fs = small_fs(exec);
        fs.create_volume(VolumeId(0));
        fs.create_file(VolumeId(0), FileId(1));
        for g in 1..=3u64 {
            for fbn in 0..100 {
                fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, g));
            }
            fs.run_cp();
        }
        (0..100)
            .map(|fbn| fs.read_persisted(VolumeId(0), FileId(1), fbn).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(ExecMode::Inline), run(ExecMode::Pool(3)));
}

#[test]
fn empty_cp_is_a_noop() {
    let fs = small_fs(ExecMode::Inline);
    fs.create_volume(VolumeId(0));
    let r = fs.run_cp();
    assert_eq!(r.buffers_cleaned, 0);
    assert_eq!(r.inodes_cleaned, 0);
    fs.verify_integrity().unwrap();
}

#[test]
fn serial_infra_config_still_correct() {
    // The Figure 4 baseline configuration must be functionally identical,
    // only slower.
    let mut cfg = FsConfig::default();
    cfg.alloc = cfg.alloc.serial_infra();
    cfg.cleaner.threads = 1;
    let fs = Filesystem::new(
        cfg,
        GeometryBuilder::new()
            .aa_stripes(128)
            .raid_group(3, 1, 8192)
            .build(),
        DriveKind::Ssd,
        ExecMode::Pool(2),
    );
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(1));
    for fbn in 0..300 {
        fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    fs.run_cp();
    for fbn in 0..300 {
        assert_eq!(
            fs.read_persisted(VolumeId(0), FileId(1), fbn),
            Some(stamp(1, fbn, 1))
        );
    }
    fs.verify_integrity().unwrap();
}

#[test]
fn hdd_media_works_end_to_end() {
    let fs = Filesystem::new(
        FsConfig::default(),
        GeometryBuilder::new()
            .aa_stripes(128)
            .raid_group(3, 1, 8192)
            .build(),
        DriveKind::Hdd,
        ExecMode::Inline,
    );
    fs.create_volume(VolumeId(0));
    fs.create_file(VolumeId(0), FileId(1));
    for fbn in 0..64 {
        fs.write(VolumeId(0), FileId(1), fbn, stamp(1, fbn, 1));
    }
    fs.run_cp();
    fs.verify_integrity().unwrap();
}
