//! Figure-shape regression tests: quick simulator runs asserting the
//! qualitative claims of every evaluation artifact (§V). The full-length
//! reproductions live in the `wafl-bench` `fig*` binaries; these tests
//! keep the shapes from regressing.

use wafl_simsrv::scenario::{
    batching_comparison, chunk_sweep, cleaner_thread_sweep, infra_comparison, knee_sweep,
    permutation_sweep,
};
use wafl_simsrv::{CleanerSetting, SimConfig, Simulator, WorkloadKind};

fn quick(workload: WorkloadKind) -> SimConfig {
    let mut c = SimConfig::paper_platform(workload);
    c.duration_ns = 400_000_000;
    c.warmup_ns = 100_000_000;
    c
}

#[test]
fn fig4_shape_sequential_write() {
    let rows = permutation_sweep(
        &quick(WorkloadKind::sequential_write()),
        CleanerSetting::dynamic_default(8),
    );
    let base = rows[0].result.throughput_ops;
    let infra_only = rows[1].result.throughput_ops / base;
    let cleaners_only = rows[2].result.throughput_ops / base;
    let both = rows[3].result.throughput_ops / base;
    // Paper: +7% / +82% / +274%.
    assert!(
        infra_only < 1.25,
        "infra-only is a small gain: {infra_only:.2}"
    );
    assert!(
        (1.5..2.6).contains(&cleaners_only),
        "cleaners-only roughly doubles: {cleaners_only:.2}"
    );
    assert!(both > 3.0, "full parallelization ≳3×: {both:.2}");
    assert!(both > cleaners_only + 0.5);
    // Write allocation consumes several cores at full parallelization.
    let full = &rows[3].result;
    let wa = full.write_alloc_cores();
    assert!(
        (4.0..9.0).contains(&wa),
        "≈6 write-allocation cores: {wa:.2}"
    );
    assert!(full.total_cores() > 17.0, "system saturates");
}

#[test]
fn fig5_shape_near_linear_then_saturation() {
    let rows = cleaner_thread_sweep(&quick(WorkloadKind::sequential_write()), &[1, 2, 4, 6]);
    let t: Vec<f64> = rows.iter().map(|(_, r)| r.throughput_ops).collect();
    assert!(
        t[1] > t[0] * 1.7,
        "2 cleaners ≈ 2×: {:.0} vs {:.0}",
        t[1],
        t[0]
    );
    assert!(t[2] > t[1] * 1.5, "4 cleaners keep scaling");
    // Saturation: 6 cleaners no better than 4 by much (CPU bound).
    assert!(t[3] < t[2] * 1.15, "saturates near 4 cleaners");
}

#[test]
fn fig6_shape_infra_cores_and_throughput() {
    let (serial, parallel) = infra_comparison(&quick(WorkloadKind::sequential_write()), 4);
    let s_cores = serial.usage.infra_cores(serial.measured_ns);
    let p_cores = parallel.usage.infra_cores(parallel.measured_ns);
    // Paper: 0.94 → 2.35 cores, +106% throughput.
    assert!(
        s_cores <= 1.05,
        "serialized infra is capped at one core: {s_cores:.2}"
    );
    assert!(
        p_cores > 1.5,
        "parallel infra exceeds one core: {p_cores:.2}"
    );
    let gain = parallel.throughput_ops / serial.throughput_ops;
    assert!((1.6..2.7).contains(&gain), "≈2× throughput: {gain:.2}");
}

#[test]
fn fig7_shape_random_write_inversion() {
    let rows = permutation_sweep(
        &quick(WorkloadKind::random_write()),
        CleanerSetting::dynamic_default(8),
    );
    let base = rows[0].result.throughput_ops;
    let infra_only = rows[1].result.throughput_ops / base;
    let cleaners_only = rows[2].result.throughput_ops / base;
    let both = rows[3].result.throughput_ops / base;
    // Paper: random write inverts — infra-only (+25%) > cleaners-only
    // (+14%); both +50%.
    assert!(
        infra_only > cleaners_only,
        "random write is infra-bound: infra {infra_only:.2} vs cleaners {cleaners_only:.2}"
    );
    assert!((1.2..2.2).contains(&both), "both ≈ +50..100%: {both:.2}");
    // And the gain structure differs from sequential write: cleaners-only
    // matters much less here.
    assert!(cleaners_only < 1.25);
}

#[test]
fn fig7_mechanism_random_frees_touch_many_metafile_blocks() {
    let seq = Simulator::new(quick(WorkloadKind::sequential_write())).run();
    let rand = Simulator::new(quick(WorkloadKind::random_write())).run();
    let seq_per_stage = seq.free_mf_blocks as f64 / seq.refills.max(1) as f64;
    let _ = seq_per_stage;
    // Normalize by blocks written: metafile blocks per thousand frees.
    let seq_rate = seq.free_mf_blocks as f64 / seq.blocks_written.max(1) as f64;
    let rand_rate = rand.free_mf_blocks as f64 / rand.blocks_written.max(1) as f64;
    assert!(
        rand_rate > seq_rate * 20.0,
        "random frees dirty ≫ more metafile blocks: seq {seq_rate:.4} vs rand {rand_rate:.4}"
    );
}

#[test]
fn fig8_shape_two_cleaners_beat_one_and_dynamic_matches_best() {
    let mut cfg = quick(WorkloadKind::oltp());
    cfg.costs.read_media_latency = 900_000;
    let settings = vec![
        ("1".to_string(), CleanerSetting::Fixed(1)),
        ("2".to_string(), CleanerSetting::Fixed(2)),
        ("4".to_string(), CleanerSetting::Fixed(4)),
        ("dyn".to_string(), CleanerSetting::dynamic_default(4)),
    ];
    let rows = knee_sweep(&cfg, &settings, &[4, 8, 16, 32, 64]);
    let one = rows[0].peak_throughput;
    let two = rows[1].peak_throughput;
    let four = rows[2].peak_throughput;
    let dynamic = rows[3].peak_throughput;
    assert!(
        two > one * 1.03,
        "second cleaner lifts peak: {one:.0} → {two:.0}"
    );
    assert!(
        four <= two * 1.02,
        "beyond two threads stops helping: {two:.0} vs {four:.0}"
    );
    assert!(
        dynamic > two * 0.97,
        "dynamic ≈ best static: {dynamic:.0} vs {two:.0}"
    );
}

#[test]
fn fig9_shape_latency_grows_past_knee_and_dynamic_tracks_best() {
    let cfg = quick(WorkloadKind::sequential_write());
    let settings = vec![
        ("1".to_string(), CleanerSetting::Fixed(1)),
        ("4".to_string(), CleanerSetting::Fixed(4)),
        ("dyn".to_string(), CleanerSetting::dynamic_default(4)),
    ];
    let rows = knee_sweep(&cfg, &settings, &[4, 8, 16, 32]);
    for r in &rows {
        let lat: Vec<u64> = r.curve.iter().map(|p| p.latency_ns).collect();
        assert!(
            lat.last().unwrap() > lat.first().unwrap(),
            "latency grows with load for setting {}",
            r.setting
        );
    }
    let peak1 = rows[0].peak_throughput;
    let peak4 = rows[1].peak_throughput;
    let peak_dyn = rows[2].peak_throughput;
    assert!(peak4 > peak1 * 2.0, "4 cleaners ≫ 1 at peak");
    assert!(peak_dyn > peak4 * 0.9, "dynamic near the best static peak");
}

#[test]
fn batching_table_shape() {
    let mut cfg = quick(WorkloadKind::nfs_mix());
    cfg.costs.read_media_latency = 900_000;
    let (on, off) = batching_comparison(&cfg);
    assert!(
        on.cleaner_messages < off.cleaner_messages,
        "batching reduces messages"
    );
    assert!(
        on.throughput_ops > off.throughput_ops,
        "…and that translates to throughput: {} vs {}",
        on.throughput_ops,
        off.throughput_ops
    );
    assert!(on.latency.mean_ns <= off.latency.mean_ns);
}

#[test]
fn chunk_ablation_shape() {
    let rows = chunk_sweep(&quick(WorkloadKind::sequential_write()), &[1, 64]);
    let t1 = rows[0].1.throughput_ops;
    let t64 = rows[1].1.throughput_ops;
    assert!(
        t64 > t1 * 2.0,
        "per-VBN allocation (chunk 1) collapses throughput: {t1:.0} vs {t64:.0}"
    );
}
