//! Property-based tests (proptest) over the core data structures and the
//! full stack: random operation sequences must preserve the DESIGN.md §8
//! invariants.

use proptest::prelude::*;
use std::sync::Arc;
use wafl::{ExecMode, FileId, Filesystem, FsConfig, VolumeId};
use wafl_blockdev::{stamp, DriveKind, GeometryBuilder, Vbn};
use wafl_metafile::{ActiveMap, AggregateMap, LooseCounter};

// ---------------------------------------------------------------------
// ActiveMap: reservation/commit/free conservation under random schedules
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum MapOp {
    Reserve(u64),
    Release(usize),
    CommitFreeLater(usize),
    FreeCommitted(usize),
}

fn map_ops() -> impl Strategy<Value = Vec<MapOp>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..512).prop_map(MapOp::Reserve),
            (0usize..64).prop_map(MapOp::Release),
            (0usize..64).prop_map(MapOp::CommitFreeLater),
            (0usize..64).prop_map(MapOp::FreeCommitted),
        ],
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn activemap_free_count_is_exact_under_any_schedule(ops in map_ops()) {
        let map = ActiveMap::new(512);
        let mut reserved: Vec<u64> = Vec::new();
        let mut committed: Vec<u64> = Vec::new();
        for op in ops {
            match op {
                MapOp::Reserve(idx) => {
                    if map.reserve(idx).is_ok() {
                        reserved.push(idx);
                    }
                }
                MapOp::Release(i) => {
                    if !reserved.is_empty() {
                        let idx = reserved.swap_remove(i % reserved.len());
                        map.release(idx).unwrap();
                    }
                }
                MapOp::CommitFreeLater(i) => {
                    if !reserved.is_empty() {
                        let idx = reserved.swap_remove(i % reserved.len());
                        map.commit_used(idx).unwrap();
                        committed.push(idx);
                    }
                }
                MapOp::FreeCommitted(i) => {
                    if !committed.is_empty() {
                        let idx = committed.swap_remove(i % committed.len());
                        map.free(idx).unwrap();
                    }
                }
            }
            // The running free count is always exact.
            prop_assert_eq!(map.free_count(), map.recount_free());
        }
        // Conservation: used bits == reserved + committed outstanding.
        let outstanding = (reserved.len() + committed.len()) as u64;
        prop_assert_eq!(map.free_count(), 512 - outstanding);
    }

    #[test]
    fn reserve_scan_yields_sorted_unique_free_blocks(
        start in 0u64..256,
        len in 1u64..256,
        max in 1usize..100,
        presets in prop::collection::btree_set(0u64..256, 0..64),
    ) {
        let map = ActiveMap::new(256);
        for &p in &presets {
            map.reserve(p).unwrap();
        }
        let got = map.reserve_scan(start, start + len, max);
        prop_assert!(got.len() <= max);
        for w in got.windows(2) {
            prop_assert!(w[0] < w[1], "ascending, unique");
        }
        for &idx in &got {
            prop_assert!(idx >= start && idx < (start + len).min(256));
            prop_assert!(!presets.contains(&idx), "never returns a used block");
            prop_assert!(map.is_used(idx), "returned blocks are now reserved");
        }
    }

    #[test]
    fn loose_counter_reconciles_exactly(
        deltas in prop::collection::vec(-100i64..100, 1..500),
        threshold in 0i64..64,
    ) {
        let c = LooseCounter::new(0);
        {
            let mut t = c.token(threshold);
            for &d in &deltas {
                t.add(d);
            }
        } // drop flushes
        prop_assert_eq!(c.value_loose(), deltas.iter().sum::<i64>());
    }
}

// ---------------------------------------------------------------------
// AggregateMap + allocator: random reserve/commit/free workloads
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn aggmap_invariants_under_random_bucket_traffic(
        chunks in prop::collection::vec((0u32..2, 0u32..3, 1usize..48), 1..40),
    ) {
        let geo = Arc::new(
            GeometryBuilder::new()
                .aa_stripes(32)
                .raid_group(3, 1, 512)
                .raid_group(2, 1, 512)
                .build(),
        );
        let am = AggregateMap::new(Arc::clone(&geo));
        let mut live: Vec<Vbn> = Vec::new();
        for (rg, drive, n) in chunks {
            let rg = wafl_blockdev::RaidGroupId(rg % 2);
            let width = geo.raid_group(rg).width();
            let drive = drive % width;
            if let Some(aa) = am.select_aa(rg) {
                let dbns = geo.aa_dbn_range(aa);
                let got = am.reserve_in_aa(aa, drive, dbns.start, n);
                for (i, v) in got.into_iter().enumerate() {
                    if i % 3 == 0 {
                        am.release(v).unwrap();
                    } else {
                        am.commit_used(v).unwrap();
                        live.push(v);
                    }
                }
            }
            // Periodically free some committed blocks.
            while live.len() > 64 {
                let v = live.swap_remove(live.len() / 2);
                am.free(v).unwrap();
            }
        }
        am.verify().unwrap();
    }
}

// ---------------------------------------------------------------------
// Full stack: arbitrary write/overwrite/CP/crash schedules
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum FsOp {
    Write { file: u8, fbn: u8 },
    RunCp,
    Crash,
}

fn fs_ops() -> impl Strategy<Value = Vec<FsOp>> {
    prop::collection::vec(
        prop_oneof![
            6 => (0u8..4, 0u8..32).prop_map(|(file, fbn)| FsOp::Write { file, fbn }),
            1 => Just(FsOp::RunCp),
            1 => Just(FsOp::Crash),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn filesystem_matches_oracle_under_random_schedules(ops in fs_ops()) {
        let mut fs = Filesystem::new(
            FsConfig::default(),
            GeometryBuilder::new()
                .aa_stripes(64)
                .raid_group(3, 1, 4096)
                .build(),
            DriveKind::Ssd,
            ExecMode::Inline,
        );
        fs.create_volume(VolumeId(0));
        for f in 0..4u64 {
            fs.create_file(VolumeId(0), FileId(f));
        }
        // Oracle: a plain map of acknowledged contents.
        let mut oracle = std::collections::HashMap::new();
        let mut version = 0u64;
        for op in ops {
            match op {
                FsOp::Write { file, fbn } => {
                    version += 1;
                    let s = stamp(file as u64, fbn as u64, version);
                    fs.write(VolumeId(0), FileId(file as u64), fbn as u64, s);
                    oracle.insert((file, fbn), s);
                }
                FsOp::RunCp => {
                    fs.run_cp();
                }
                FsOp::Crash => {
                    fs = fs.crash_and_recover(ExecMode::Inline);
                }
            }
            // Acknowledged data is always visible, through CPs and
            // crashes alike.
            for (&(file, fbn), &expect) in &oracle {
                prop_assert_eq!(
                    fs.read(VolumeId(0), FileId(file as u64), fbn as u64),
                    Some(expect)
                );
            }
        }
        fs.run_cp();
        fs.verify_integrity().unwrap();
        for (&(file, fbn), &expect) in &oracle {
            prop_assert_eq!(
                fs.read_persisted(VolumeId(0), FileId(file as u64), fbn as u64),
                Some(expect)
            );
        }
    }
}
